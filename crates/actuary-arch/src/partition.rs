//! Partitioning a monolithic design into chiplets.
//!
//! The paper frames "how many chiplets to partition" as one of the central
//! chiplet-architecture decisions (§1, §4.1). This module provides:
//!
//! * [`equal_chiplets`] — the paper's Figure 4 workload: divide a monolithic
//!   module area into `n` equal chiplets (distinct designs, no reuse);
//! * [`enumerate_partitions`] — exhaustive set-partition enumeration of a
//!   concrete module list into at most `k` chiplets (exact for small module
//!   counts);
//! * [`greedy_balance`] — an LPT (longest processing time) heuristic for
//!   larger module lists;
//! * [`best_partition`] — exhaustive search driven by a caller-supplied
//!   cost function.

use actuary_tech::NodeId;
use actuary_units::Area;

use crate::chip::Chip;
use crate::error::ArchError;
use crate::module::Module;

/// Splits a monolithic design of `total_module_area` into `n` equal,
/// *distinct* chiplets (the Figure 4 workload: "we divide a monolithic chip
/// into different numbers of chiplets … no reuse is utilized").
///
/// Returns `n` chiplets named `{prefix}-part{i}`, each carrying one module
/// named `{prefix}-slice{i}` of `total/n` area. Pass `n = 1` to get the
/// monolithic die (built with [`Chip::monolithic`], no D2D).
///
/// # Errors
///
/// Returns [`ArchError::InvalidPartition`] if `n` is zero.
///
/// # Examples
///
/// ```
/// use actuary_arch::partition::equal_chiplets;
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chiplets = equal_chiplets("sys", "5nm", Area::from_mm2(800.0)?, 2)?;
/// assert_eq!(chiplets.len(), 2);
/// assert_eq!(chiplets[0].module_area().mm2(), 400.0);
/// # Ok(())
/// # }
/// ```
pub fn equal_chiplets(
    prefix: &str,
    node: impl Into<NodeId>,
    total_module_area: Area,
    n: u32,
) -> Result<Vec<Chip>, ArchError> {
    if n == 0 {
        return Err(ArchError::InvalidPartition {
            reason: "cannot partition into zero chiplets".to_string(),
        });
    }
    let node = node.into();
    let slice = total_module_area / n as f64;
    let mut chips = Vec::with_capacity(n as usize);
    for i in 0..n {
        let module = Module::new(format!("{prefix}-slice{i}"), node.clone(), slice);
        let chip = if n == 1 {
            Chip::monolithic(format!("{prefix}-part{i}"), node.clone(), vec![module])
        } else {
            Chip::chiplet(format!("{prefix}-part{i}"), node.clone(), vec![module])
        };
        chips.push(chip);
    }
    Ok(chips)
}

/// A partition of module indices into non-empty groups.
pub type Partition = Vec<Vec<usize>>;

/// Enumerates every partition of `n_modules` modules into at most
/// `max_groups` non-empty groups (restricted-growth-string enumeration).
///
/// The count is the sum of Stirling numbers of the second kind; it grows
/// fast, so the function rejects `n_modules > 12`.
///
/// # Errors
///
/// Returns [`ArchError::InvalidPartition`] if `max_groups` is zero or
/// `n_modules` exceeds 12.
///
/// # Examples
///
/// ```
/// use actuary_arch::partition::enumerate_partitions;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 3 modules into at most 2 groups: {abc}, {ab|c}, {ac|b}, {a|bc}.
/// let parts = enumerate_partitions(3, 2)?;
/// assert_eq!(parts.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn enumerate_partitions(
    n_modules: usize,
    max_groups: usize,
) -> Result<Vec<Partition>, ArchError> {
    if max_groups == 0 {
        return Err(ArchError::InvalidPartition {
            reason: "max_groups must be positive".to_string(),
        });
    }
    if n_modules == 0 {
        return Ok(vec![]);
    }
    if n_modules > 12 {
        return Err(ArchError::InvalidPartition {
            reason: format!(
                "exhaustive partition enumeration limited to 12 modules, got {n_modules} \
                 (use greedy_balance instead)"
            ),
        });
    }
    // Restricted growth strings: a[0] = 0; a[i] <= max(a[0..i]) + 1.
    let mut result = Vec::new();
    let mut assignment = vec![0usize; n_modules];
    fn recurse(
        assignment: &mut Vec<usize>,
        i: usize,
        current_max: usize,
        max_groups: usize,
        result: &mut Vec<Partition>,
    ) {
        let n = assignment.len();
        if i == n {
            let groups = current_max + 1;
            let mut partition: Partition = vec![Vec::new(); groups];
            for (idx, &g) in assignment.iter().enumerate() {
                partition[g].push(idx);
            }
            result.push(partition);
            return;
        }
        let limit = (current_max + 1).min(max_groups - 1);
        for g in 0..=limit {
            assignment[i] = g;
            recurse(assignment, i + 1, current_max.max(g), max_groups, result);
        }
    }
    recurse(&mut assignment, 1, 0, max_groups, &mut result);
    Ok(result)
}

/// Balances modules into exactly `k` groups with the LPT heuristic: sort by
/// area descending, always add to the lightest group. Good enough when
/// yield (superlinear in area) drives the cost.
///
/// # Errors
///
/// Returns [`ArchError::InvalidPartition`] if `k` is zero or exceeds the
/// module count.
pub fn greedy_balance(modules: &[Module], k: usize) -> Result<Partition, ArchError> {
    if k == 0 {
        return Err(ArchError::InvalidPartition {
            reason: "cannot balance into zero groups".to_string(),
        });
    }
    if k > modules.len() {
        return Err(ArchError::InvalidPartition {
            reason: format!("{k} groups requested for {} modules", modules.len()),
        });
    }
    let mut order: Vec<usize> = (0..modules.len()).collect();
    order.sort_by(|&a, &b| {
        modules[b]
            .area()
            .partial_cmp(&modules[a].area())
            .expect("areas are finite")
    });
    let mut groups: Partition = vec![Vec::new(); k];
    let mut loads = vec![0.0f64; k];
    for idx in order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
            .map(|(i, _)| i)
            .expect("k >= 1");
        groups[lightest].push(idx);
        loads[lightest] += modules[idx].area().mm2();
    }
    Ok(groups)
}

/// Builds the chiplets corresponding to a partition of `modules`: group `g`
/// becomes chiplet `{prefix}-part{g}` carrying its modules. A single-group
/// partition yields a monolithic die.
///
/// # Errors
///
/// Returns [`ArchError::InvalidPartition`] if the partition references a
/// module index out of range, repeats an index, or has an empty group.
pub fn chips_for_partition(
    prefix: &str,
    node: impl Into<NodeId>,
    modules: &[Module],
    partition: &Partition,
) -> Result<Vec<Chip>, ArchError> {
    let node = node.into();
    let mut seen = vec![false; modules.len()];
    for group in partition {
        if group.is_empty() {
            return Err(ArchError::InvalidPartition {
                reason: "partition contains an empty group".to_string(),
            });
        }
        for &idx in group {
            if idx >= modules.len() {
                return Err(ArchError::InvalidPartition {
                    reason: format!("module index {idx} out of range"),
                });
            }
            if seen[idx] {
                return Err(ArchError::InvalidPartition {
                    reason: format!("module index {idx} appears in two groups"),
                });
            }
            seen[idx] = true;
        }
    }
    let monolithic = partition.len() == 1;
    let mut chips = Vec::with_capacity(partition.len());
    for (g, group) in partition.iter().enumerate() {
        let group_modules: Vec<Module> = group.iter().map(|&i| modules[i].clone()).collect();
        let name = format!("{prefix}-part{g}");
        let chip = if monolithic {
            Chip::monolithic(name, node.clone(), group_modules)
        } else {
            Chip::chiplet(name, node.clone(), group_modules)
        };
        chips.push(chip);
    }
    Ok(chips)
}

/// Exhaustively searches every partition of `modules` into at most
/// `max_groups` chiplets and returns the one minimizing `cost_fn`, together
/// with its cost.
///
/// # Errors
///
/// Propagates enumeration errors and any error from `cost_fn`; errors if no
/// partition exists.
pub fn best_partition<F>(
    modules: &[Module],
    max_groups: usize,
    mut cost_fn: F,
) -> Result<(Partition, f64), ArchError>
where
    F: FnMut(&Partition) -> Result<f64, ArchError>,
{
    let partitions = enumerate_partitions(modules.len(), max_groups)?;
    if partitions.is_empty() {
        return Err(ArchError::InvalidPartition {
            reason: "no partitions to search".to_string(),
        });
    }
    let mut best: Option<(Partition, f64)> = None;
    for p in partitions {
        let cost = cost_fn(&p)?;
        match &best {
            Some((_, c)) if *c <= cost => {}
            _ => best = Some((p, cost)),
        }
    }
    Ok(best.expect("at least one partition was evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    fn modules(areas: &[f64]) -> Vec<Module> {
        areas
            .iter()
            .enumerate()
            .map(|(i, &a)| Module::new(format!("m{i}"), "7nm", area(a)))
            .collect()
    }

    #[test]
    fn equal_chiplets_splits_area() {
        let chips = equal_chiplets("sys", "5nm", area(800.0), 4).unwrap();
        assert_eq!(chips.len(), 4);
        for c in &chips {
            assert_eq!(c.module_area().mm2(), 200.0);
            assert!(c.is_chiplet());
        }
        // Distinct names → distinct NRE designs, as Figure 4 assumes.
        assert_ne!(chips[0].name(), chips[1].name());
    }

    #[test]
    fn equal_chiplets_one_is_monolithic() {
        let chips = equal_chiplets("sys", "5nm", area(800.0), 1).unwrap();
        assert_eq!(chips.len(), 1);
        assert!(!chips[0].is_chiplet());
        assert!(equal_chiplets("sys", "5nm", area(800.0), 0).is_err());
    }

    #[test]
    fn partition_counts_match_stirling_sums() {
        // B(n) for max_groups = n: Bell numbers 1, 2, 5, 15, 52.
        for (n, bell) in [(1, 1), (2, 2), (3, 5), (4, 15), (5, 52)] {
            let parts = enumerate_partitions(n, n).unwrap();
            assert_eq!(parts.len(), bell, "bell({n})");
        }
        // S(4,1) + S(4,2) = 1 + 7 = 8 partitions into at most 2 groups.
        assert_eq!(enumerate_partitions(4, 2).unwrap().len(), 8);
    }

    #[test]
    fn partitions_are_valid_set_partitions() {
        let parts = enumerate_partitions(5, 3).unwrap();
        for p in &parts {
            let mut seen = [false; 5];
            assert!(p.len() <= 3);
            for group in p {
                assert!(!group.is_empty());
                for &i in group {
                    assert!(!seen[i], "duplicate index {i}");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "all modules covered");
        }
    }

    #[test]
    fn enumeration_limits() {
        assert!(enumerate_partitions(13, 2).is_err());
        assert!(enumerate_partitions(3, 0).is_err());
        assert!(enumerate_partitions(0, 2).unwrap().is_empty());
    }

    #[test]
    fn greedy_balance_is_reasonable() {
        let ms = modules(&[100.0, 90.0, 50.0, 40.0, 30.0, 10.0]);
        let partition = greedy_balance(&ms, 2).unwrap();
        assert_eq!(partition.len(), 2);
        let load = |g: &Vec<usize>| -> f64 { g.iter().map(|&i| ms[i].area().mm2()).sum() };
        let (a, b) = (load(&partition[0]), load(&partition[1]));
        // LPT on this instance is near-perfect: 160 vs 160.
        assert!((a - b).abs() <= 20.0, "loads {a} vs {b}");
        assert!(greedy_balance(&ms, 0).is_err());
        assert!(greedy_balance(&ms, 7).is_err());
    }

    #[test]
    fn chips_for_partition_validates() {
        let ms = modules(&[10.0, 20.0, 30.0]);
        // Out of range.
        assert!(chips_for_partition("p", "7nm", &ms, &vec![vec![0, 5]]).is_err());
        // Duplicate.
        assert!(chips_for_partition("p", "7nm", &ms, &vec![vec![0, 0], vec![1, 2]]).is_err());
        // Empty group.
        assert!(chips_for_partition("p", "7nm", &ms, &vec![vec![0, 1, 2], vec![]]).is_err());
        // Valid two-group partition.
        let chips = chips_for_partition("p", "7nm", &ms, &vec![vec![0, 2], vec![1]]).unwrap();
        assert_eq!(chips.len(), 2);
        assert_eq!(chips[0].module_area().mm2(), 40.0);
        assert_eq!(chips[1].module_area().mm2(), 20.0);
        assert!(chips[0].is_chiplet());
        // Single group → monolithic.
        let mono = chips_for_partition("p", "7nm", &ms, &vec![vec![0, 1, 2]]).unwrap();
        assert!(!mono[0].is_chiplet());
    }

    #[test]
    fn best_partition_finds_minimum() {
        let ms = modules(&[100.0, 90.0, 10.0]);
        // Cost: squared imbalance across exactly two groups — the best
        // 2-group split is {100 | 90+10}; other group counts are penalized.
        let (best, cost) = best_partition(&ms, 2, |p| {
            if p.len() != 2 {
                return Ok(f64::MAX);
            }
            let loads: Vec<f64> = p
                .iter()
                .map(|g| g.iter().map(|&i| ms[i].area().mm2()).sum::<f64>())
                .collect();
            let mean = loads.iter().sum::<f64>() / loads.len() as f64;
            Ok(loads.iter().map(|l| (l - mean).powi(2)).sum())
        })
        .unwrap();
        assert_eq!(cost, 0.0);
        assert_eq!(best.len(), 2);
        let g0: f64 = best[0].iter().map(|&i| ms[i].area().mm2()).sum();
        assert!((g0 - 100.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn greedy_covers_all_modules(
            sizes in proptest::collection::vec(1.0f64..200.0, 2..10),
            k in 1usize..4,
        ) {
            prop_assume!(k <= sizes.len());
            let ms = modules(&sizes);
            let partition = greedy_balance(&ms, k).unwrap();
            let covered: usize = partition.iter().map(|g| g.len()).sum();
            prop_assert_eq!(covered, ms.len());
            let total: f64 = partition
                .iter()
                .flat_map(|g| g.iter().map(|&i| ms[i].area().mm2()))
                .sum();
            let expected: f64 = sizes.iter().sum();
            prop_assert!((total - expected).abs() < 1e-6);
        }

        #[test]
        fn equal_chiplets_conserve_area(total in 50.0f64..900.0, n in 1u32..8) {
            let chips = equal_chiplets("x", "7nm", area(total), n).unwrap();
            let sum: f64 = chips.iter().map(|c| c.module_area().mm2()).sum();
            prop_assert!((sum - total).abs() < 1e-9);
        }
    }
}
