//! The chiplet-reuse schemes of the paper's §5: SCMS, OCME and FSMC.
//!
//! Each scheme is a portfolio generator: it produces the multi-chip
//! [`Portfolio`] the paper evaluates plus the monolithic-SoC baseline
//! portfolio it is compared against.
//!
//! * [`ScmsSpec`] — *Single Chiplet Multiple Systems* (§5.1, Figure 8): one
//!   chiplet design builds 1X/2X/4X systems.
//! * [`OcmeSpec`] — *One Center Multiple Extensions* (§5.2, Figure 9): a
//!   reused center die plus extension dies with the same footprint,
//!   optionally heterogeneous (center at a mature node).
//! * [`FsmcSpec`] — *A few Sockets Multiple Collocations* (§5.3,
//!   Figure 10): `n` chiplet types in a `k`-socket package build every
//!   multiset collocation.

use serde::{Deserialize, Serialize};

use actuary_tech::{IntegrationKind, NodeId};
use actuary_units::{Area, Quantity};

use crate::chip::Chip;
use crate::error::ArchError;
use crate::module::Module;
use crate::portfolio::Portfolio;
use crate::system::System;

/// Binomial coefficient `C(n, k)` with saturating arithmetic.
///
/// # Examples
///
/// ```
/// use actuary_arch::reuse::binomial;
///
/// assert_eq!(binomial(9, 4), 126);
/// assert_eq!(binomial(4, 0), 1);
/// assert_eq!(binomial(3, 5), 0);
/// ```
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

/// Number of multisets of size `size` drawn from `types` chiplet types:
/// `C(types + size − 1, size)`.
pub fn multiset_count(types: u32, size: u32) -> u64 {
    binomial((types + size - 1) as u64, size as u64)
}

/// The paper's FSMC system-count formula: `Σᵢ₌₁ᵏ C(n+i−1, i)` distinct
/// systems from `n` chiplet types and a `k`-socket package.
///
/// Note: the paper's prose quotes "up to 119" for `n = 6, k = 4`, while the
/// printed formula evaluates to 209; we implement the formula as printed and
/// record the discrepancy in `EXPERIMENTS.md`.
pub fn fsmc_system_count(types: u32, sockets: u32) -> u64 {
    (1..=sockets).map(|i| multiset_count(types, i)).sum()
}

/// Enumerates every multiset of `size` items over `types` types, as count
/// vectors of length `types` summing to `size`, in lexicographic order.
///
/// # Examples
///
/// ```
/// use actuary_arch::reuse::multisets;
///
/// let ms = multisets(2, 2);
/// assert_eq!(ms, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);
/// ```
pub fn multisets(types: u32, size: u32) -> Vec<Vec<u32>> {
    fn recurse(types: usize, remaining: u32, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if prefix.len() == types - 1 {
            let mut full = prefix.clone();
            full.push(remaining);
            out.push(full);
            return;
        }
        for take in 0..=remaining {
            prefix.push(take);
            recurse(types, remaining - take, prefix, out);
            prefix.pop();
        }
    }
    if types == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    recurse(types as usize, size, &mut Vec::new(), &mut out);
    out
}

/// *Single Chiplet Multiple Systems* (§5.1): one chiplet design builds a
/// family of systems with different chiplet counts (the paper's 1X/2X/4X
/// example: a 7 nm chiplet of 200 mm² module area, 500 k units per system).
///
/// # Examples
///
/// ```
/// use actuary_arch::reuse::ScmsSpec;
/// use actuary_model::AssemblyFlow;
/// use actuary_tech::{IntegrationKind, TechLibrary};
/// use actuary_units::{Area, Quantity};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TechLibrary::paper_defaults()?;
/// let spec = ScmsSpec::paper_example()?;
/// let cost = spec.portfolio()?.cost(&lib, AssemblyFlow::ChipLast)?;
/// assert_eq!(cost.systems().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScmsSpec {
    /// Module area carried by the single chiplet design.
    pub chiplet_module_area: Area,
    /// Process node of the chiplet.
    pub node: NodeId,
    /// Chiplet counts of the member systems (the paper uses `[1, 2, 4]`).
    pub multiplicities: Vec<u32>,
    /// Integration scheme of the multi-chip systems.
    pub integration: IntegrationKind,
    /// Production quantity of each member system.
    pub quantity_each: Quantity,
    /// Whether all systems share one package design (§5.1's trade-off).
    pub package_reuse: bool,
}

impl ScmsSpec {
    /// The paper's Figure 8 configuration: 7 nm, 200 mm² module area,
    /// systems 1X/2X/4X on MCM, 500 k units each, no package reuse.
    ///
    /// # Errors
    ///
    /// Never fails with the shipped constants.
    pub fn paper_example() -> Result<Self, ArchError> {
        Ok(ScmsSpec {
            chiplet_module_area: Area::from_mm2(200.0)?,
            node: NodeId::new("7nm"),
            multiplicities: vec![1, 2, 4],
            integration: IntegrationKind::Mcm,
            quantity_each: Quantity::new(500_000),
            package_reuse: false,
        })
    }

    /// The single shared chiplet design.
    pub fn chiplet(&self) -> Chip {
        Chip::chiplet(
            "scms-chiplet",
            self.node.clone(),
            vec![Module::new(
                "scms-module",
                self.node.clone(),
                self.chiplet_module_area,
            )],
        )
    }

    /// Builds the multi-chip portfolio (`1X`, `2X`, `4X`, …).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] for an empty or zero
    /// multiplicity list.
    pub fn portfolio(&self) -> Result<Portfolio, ArchError> {
        if self.multiplicities.is_empty() {
            return Err(ArchError::InvalidArchitecture {
                reason: "SCMS needs at least one system multiplicity".to_string(),
            });
        }
        let chiplet = self.chiplet();
        let mut systems = Vec::with_capacity(self.multiplicities.len());
        for &m in &self.multiplicities {
            let mut builder = System::builder(format!("{m}X"), self.integration)
                .chip(chiplet.clone(), m)
                .quantity(self.quantity_each);
            if self.package_reuse {
                builder = builder.package_design("scms-pkg");
            }
            systems.push(builder.build()?);
        }
        Ok(Portfolio::new(systems))
    }

    /// Builds the monolithic-SoC baseline: one distinct SoC die per system,
    /// each instantiating the shared module `m` times (module reuse only —
    /// "this approach still requires repeating system verification and chip
    /// physics design", §1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScmsSpec::portfolio`].
    pub fn soc_portfolio(&self) -> Result<Portfolio, ArchError> {
        if self.multiplicities.is_empty() {
            return Err(ArchError::InvalidArchitecture {
                reason: "SCMS needs at least one system multiplicity".to_string(),
            });
        }
        let mut systems = Vec::with_capacity(self.multiplicities.len());
        for &m in &self.multiplicities {
            let modules = (0..m)
                .map(|_| Module::new("scms-module", self.node.clone(), self.chiplet_module_area))
                .collect();
            let die = Chip::monolithic(format!("scms-soc-{m}x"), self.node.clone(), modules);
            systems.push(
                System::builder(format!("{m}X-soc"), IntegrationKind::Soc)
                    .chip(die, 1)
                    .quantity(self.quantity_each)
                    .build()?,
            );
        }
        Ok(Portfolio::new(systems))
    }
}

/// *One Center Multiple Extensions* (§5.2): a reused center die `C` with
/// extension dies `X`, `Y` of the same footprint placed around it (the
/// paper's 7 nm, 4-socket × 160 mm² example).
///
/// The optional heterogeneous variant designs the center die at a mature
/// node; the center's modules are treated as "unscalable" (same area at the
/// mature node), which is the case the paper says benefits from OCME.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcmeSpec {
    /// Module area per socket (center and extensions alike).
    pub socket_module_area: Area,
    /// Process node of the extension dies.
    pub node: NodeId,
    /// Node of the center die; `None` keeps it on `node` (homogeneous).
    pub center_node: Option<NodeId>,
    /// Integration scheme of the multi-chip systems.
    pub integration: IntegrationKind,
    /// Production quantity of each member system.
    pub quantity_each: Quantity,
    /// Whether all systems share one package design.
    pub package_reuse: bool,
}

impl OcmeSpec {
    /// The paper's Figure 9 configuration: 7 nm, 160 mm² sockets, MCM,
    /// 500 k units each, no package reuse, homogeneous center.
    ///
    /// # Errors
    ///
    /// Never fails with the shipped constants.
    pub fn paper_example() -> Result<Self, ArchError> {
        Ok(OcmeSpec {
            socket_module_area: Area::from_mm2(160.0)?,
            node: NodeId::new("7nm"),
            center_node: None,
            integration: IntegrationKind::Mcm,
            quantity_each: Quantity::new(500_000),
            package_reuse: false,
        })
    }

    /// The center chip `C` (at the heterogeneous node if configured).
    pub fn center_chip(&self) -> Chip {
        let node = self
            .center_node
            .clone()
            .unwrap_or_else(|| self.node.clone());
        Chip::chiplet(
            "ocme-center",
            node.clone(),
            vec![Module::new("ocme-center-m", node, self.socket_module_area)],
        )
    }

    /// An extension chip (`X` or `Y`).
    pub fn extension_chip(&self, label: &str) -> Chip {
        Chip::chiplet(
            format!("ocme-ext-{label}"),
            self.node.clone(),
            vec![Module::new(
                format!("ocme-ext-{label}-m"),
                self.node.clone(),
                self.socket_module_area,
            )],
        )
    }

    /// Builds the paper's four systems: `C`, `C+1X`, `C+1X+1Y`, `C+2X+2Y`.
    ///
    /// # Errors
    ///
    /// Propagates system-construction errors.
    pub fn portfolio(&self) -> Result<Portfolio, ArchError> {
        let center = self.center_chip();
        let x = self.extension_chip("X");
        let y = self.extension_chip("Y");
        // (name, #X, #Y)
        let configs: [(&str, u32, u32); 4] = [
            ("C", 0, 0),
            ("C+1X", 1, 0),
            ("C+1X+1Y", 1, 1),
            ("C+2X+2Y", 2, 2),
        ];
        let mut systems = Vec::with_capacity(configs.len());
        for (name, nx, ny) in configs {
            let mut builder = System::builder(name, self.integration)
                .chip(center.clone(), 1)
                .quantity(self.quantity_each);
            if nx > 0 {
                builder = builder.chip(x.clone(), nx);
            }
            if ny > 0 {
                builder = builder.chip(y.clone(), ny);
            }
            if self.package_reuse {
                builder = builder.package_design("ocme-pkg");
            }
            systems.push(builder.build()?);
        }
        Ok(Portfolio::new(systems))
    }

    /// Builds the monolithic-SoC baseline: one distinct SoC per system
    /// carrying the same module mix at the extension node (module reuse
    /// only).
    ///
    /// # Errors
    ///
    /// Propagates system-construction errors.
    pub fn soc_portfolio(&self) -> Result<Portfolio, ArchError> {
        let configs: [(&str, u32, u32); 4] = [
            ("C", 0, 0),
            ("C+1X", 1, 0),
            ("C+1X+1Y", 1, 1),
            ("C+2X+2Y", 2, 2),
        ];
        let mut systems = Vec::with_capacity(configs.len());
        for (name, nx, ny) in configs {
            let mut modules = vec![Module::new(
                "ocme-center-m",
                self.node.clone(),
                self.socket_module_area,
            )];
            for _ in 0..nx {
                modules.push(Module::new(
                    "ocme-ext-X-m",
                    self.node.clone(),
                    self.socket_module_area,
                ));
            }
            for _ in 0..ny {
                modules.push(Module::new(
                    "ocme-ext-Y-m",
                    self.node.clone(),
                    self.socket_module_area,
                ));
            }
            let die = Chip::monolithic(format!("ocme-soc-{name}"), self.node.clone(), modules);
            systems.push(
                System::builder(format!("{name}-soc"), IntegrationKind::Soc)
                    .chip(die, 1)
                    .quantity(self.quantity_each)
                    .build()?,
            );
        }
        Ok(Portfolio::new(systems))
    }
}

/// *A few Sockets Multiple Collocations* (§5.3): `n` chiplet types with the
/// same footprint and a `k`-socket package build every multiset collocation
/// of 1 to `k` chiplets (Figure 10 evaluates `(k, n)` from `(2, 2)` to
/// `(4, 6)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsmcSpec {
    /// Number of package sockets `k`.
    pub sockets: u32,
    /// Number of distinct chiplet types `n`.
    pub chiplet_types: u32,
    /// Module area per socket.
    pub socket_module_area: Area,
    /// Process node of every chiplet type.
    pub node: NodeId,
    /// Integration scheme of the multi-chip systems.
    pub integration: IntegrationKind,
    /// Production quantity of each collocation.
    pub quantity_each: Quantity,
}

impl FsmcSpec {
    /// A Figure 10 configuration: `k` sockets, `n` chiplet types, 7 nm,
    /// 160 mm² sockets, 500 k units per collocation.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] if `sockets` or
    /// `chiplet_types` is zero.
    pub fn paper_example(sockets: u32, chiplet_types: u32) -> Result<Self, ArchError> {
        if sockets == 0 || chiplet_types == 0 {
            return Err(ArchError::InvalidArchitecture {
                reason: "FSMC needs at least one socket and one chiplet type".to_string(),
            });
        }
        Ok(FsmcSpec {
            sockets,
            chiplet_types,
            socket_module_area: Area::from_mm2(160.0)?,
            node: NodeId::new("7nm"),
            integration: IntegrationKind::Mcm,
            quantity_each: Quantity::new(500_000),
        })
    }

    /// Number of distinct systems the scheme can build (`Σᵢ C(n+i−1, i)`).
    pub fn system_count(&self) -> u64 {
        fsmc_system_count(self.chiplet_types, self.sockets)
    }

    /// The chiplet design for type `t` (0-based; labelled `A`, `B`, …).
    pub fn chiplet(&self, t: u32) -> Chip {
        let label = type_label(t);
        Chip::chiplet(
            format!("fsmc-chip-{label}"),
            self.node.clone(),
            vec![Module::new(
                format!("fsmc-mod-{label}"),
                self.node.clone(),
                self.socket_module_area,
            )],
        )
    }

    /// Builds every collocation as a portfolio; all systems share the
    /// `k`-socket package design (the premise of the scheme).
    ///
    /// # Errors
    ///
    /// Propagates system-construction errors.
    pub fn portfolio(&self) -> Result<Portfolio, ArchError> {
        let chiplets: Vec<Chip> = (0..self.chiplet_types).map(|t| self.chiplet(t)).collect();
        let mut systems = Vec::new();
        for size in 1..=self.sockets {
            for counts in multisets(self.chiplet_types, size) {
                let name = collocation_name(&counts);
                let mut builder = System::builder(&name, self.integration)
                    .quantity(self.quantity_each)
                    .package_design("fsmc-pkg");
                for (t, &count) in counts.iter().enumerate() {
                    if count > 0 {
                        builder = builder.chip(chiplets[t].clone(), count);
                    }
                }
                systems.push(builder.build()?);
            }
        }
        Ok(Portfolio::new(systems))
    }

    /// Builds the monolithic-SoC baseline: one distinct SoC per collocation
    /// with the same module mix (module reuse only).
    ///
    /// # Errors
    ///
    /// Propagates system-construction errors.
    pub fn soc_portfolio(&self) -> Result<Portfolio, ArchError> {
        let mut systems = Vec::new();
        for size in 1..=self.sockets {
            for counts in multisets(self.chiplet_types, size) {
                let name = collocation_name(&counts);
                let mut modules = Vec::new();
                for (t, &count) in counts.iter().enumerate() {
                    for _ in 0..count {
                        modules.push(Module::new(
                            format!("fsmc-mod-{}", type_label(t as u32)),
                            self.node.clone(),
                            self.socket_module_area,
                        ));
                    }
                }
                let die = Chip::monolithic(format!("fsmc-soc-{name}"), self.node.clone(), modules);
                systems.push(
                    System::builder(format!("{name}-soc"), IntegrationKind::Soc)
                        .chip(die, 1)
                        .quantity(self.quantity_each)
                        .build()?,
                );
            }
        }
        Ok(Portfolio::new(systems))
    }
}

/// Letter label for a chiplet type index: `A`, `B`, …, `Z`, `T26`, ….
fn type_label(t: u32) -> String {
    if t < 26 {
        char::from(b'A' + t as u8).to_string()
    } else {
        format!("T{t}")
    }
}

/// Human-readable collocation name for a count vector, e.g. `[2,0,1]` →
/// `"2A+1C"`.
fn collocation_name(counts: &[u32]) -> String {
    let parts: Vec<String> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(t, &c)| format!("{c}{}", type_label(t as u32)))
        .collect();
    parts.join("+")
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_model::AssemblyFlow;
    use actuary_tech::TechLibrary;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(9, 4), 126);
        assert_eq!(binomial(6, 1), 6);
        assert_eq!(binomial(2, 3), 0);
    }

    #[test]
    fn multiset_counts_match_enumeration() {
        for types in 1..=5u32 {
            for size in 1..=4u32 {
                let expected = multiset_count(types, size) as usize;
                assert_eq!(
                    multisets(types, size).len(),
                    expected,
                    "types={types} size={size}"
                );
            }
        }
    }

    #[test]
    fn fsmc_formula_values() {
        // Figure 10's five situations.
        assert_eq!(fsmc_system_count(2, 2), 2 + 3);
        assert_eq!(fsmc_system_count(4, 2), 4 + 10);
        assert_eq!(fsmc_system_count(4, 3), 4 + 10 + 20);
        assert_eq!(fsmc_system_count(4, 4), 4 + 10 + 20 + 35);
        // The paper's n=6, k=4 example: formula gives 209 (prose says 119).
        assert_eq!(fsmc_system_count(6, 4), 6 + 21 + 56 + 126);
    }

    #[test]
    fn scms_portfolio_shape() {
        let spec = ScmsSpec::paper_example().unwrap();
        let p = spec.portfolio().unwrap();
        assert_eq!(p.len(), 3);
        let names: Vec<&str> = p.systems().iter().map(|s| s.name()).collect();
        assert_eq!(names, ["1X", "2X", "4X"]);
        assert_eq!(p.systems()[2].chip_count(), 4);
        // One chiplet design across the whole portfolio.
        let cost = p.cost(&lib(), AssemblyFlow::ChipLast).unwrap();
        let chip_entities = cost
            .entities()
            .iter()
            .filter(|e| e.kind() == crate::portfolio::NreEntityKind::Chip)
            .count();
        assert_eq!(chip_entities, 1);
    }

    #[test]
    fn scms_chip_nre_saving_vs_soc() {
        // §5.1: "due to chiplet reuse, there is vast chip NRE cost-saving
        // (nearly three quarters for 4X system) compared with monolithic".
        let lib = lib();
        let spec = ScmsSpec::paper_example().unwrap();
        let mcm = spec
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        let soc = spec
            .soc_portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        let mcm_chip_nre = mcm.nre_total().chips;
        let soc_chip_nre = soc.nre_total().chips;
        assert!(
            mcm_chip_nre.usd() < 0.5 * soc_chip_nre.usd(),
            "chiplet reuse must save most of the chip NRE: {mcm_chip_nre} vs {soc_chip_nre}"
        );
        // Module NRE identical: same module designed once in both worlds.
        assert!((mcm.nre_total().modules.usd() - soc.nre_total().modules.usd()).abs() < 1.0);
    }

    #[test]
    fn scms_package_reuse_tradeoff() {
        // §5.1: package reuse cuts the 4X package NRE but raises the 1X
        // total by >20 % (for MCM the paper's bound; we assert direction).
        let lib = lib();
        let mut spec = ScmsSpec::paper_example().unwrap();
        let without = spec
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        spec.package_reuse = true;
        let with = spec
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        assert!(with.nre_total().packages < without.nre_total().packages);
        let one_x_without = without.system("1X").unwrap().re().total();
        let one_x_with = with.system("1X").unwrap().re().total();
        assert!(
            one_x_with > one_x_without,
            "the 1X system must pay RE for the oversized package"
        );
        let four_x_without = without.system("4X").unwrap().re().total();
        let four_x_with = with.system("4X").unwrap().re().total();
        assert!((four_x_with.usd() - four_x_without.usd()).abs() < 1e-9);
    }

    #[test]
    fn ocme_portfolio_shape() {
        let spec = OcmeSpec::paper_example().unwrap();
        let p = spec.portfolio().unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.systems()[0].chip_count(), 1); // C
        assert_eq!(p.systems()[3].chip_count(), 5); // C+2X+2Y
        let cost = p.cost(&lib(), AssemblyFlow::ChipLast).unwrap();
        // Three chip designs: center, X, Y.
        let chips = cost
            .entities()
            .iter()
            .filter(|e| e.kind() == crate::portfolio::NreEntityKind::Chip)
            .count();
        assert_eq!(chips, 3);
    }

    #[test]
    fn ocme_heterogeneous_center_is_cheaper() {
        // §5.2: "With heterogeneous integration the total costs are further
        // reduced" for unscalable center modules.
        let lib = lib();
        let mut spec = OcmeSpec::paper_example().unwrap();
        spec.package_reuse = true;
        let homo = spec
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        spec.center_node = Some(NodeId::new("14nm"));
        let hetero = spec
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        assert!(
            hetero.program_total() < homo.program_total(),
            "mature-node center must cut total cost: {} vs {}",
            hetero.program_total(),
            homo.program_total()
        );
        // The single-C system benefits the most (paper: "almost half").
        let c_homo = homo.system("C").unwrap().per_unit_total();
        let c_hetero = hetero.system("C").unwrap().per_unit_total();
        assert!(c_hetero < c_homo);
    }

    #[test]
    fn fsmc_portfolio_enumerates_all_collocations() {
        let spec = FsmcSpec::paper_example(2, 2).unwrap();
        let p = spec.portfolio().unwrap();
        assert_eq!(p.len() as u64, spec.system_count());
        assert_eq!(p.len(), 5); // sizes 1 and 2 over 2 types: 2 + 3.
        let names: Vec<&str> = p.systems().iter().map(|s| s.name()).collect();
        assert!(names.contains(&"1A"));
        assert!(names.contains(&"1A+1B"));
        assert!(names.contains(&"2B"));
    }

    #[test]
    fn fsmc_more_reuse_lowers_average_cost() {
        // §5.3 / Figure 10: "the more chiplets are reused, the more benefits
        // from NRE cost amortization".
        let lib = lib();
        let low = FsmcSpec::paper_example(2, 2).unwrap();
        let high = FsmcSpec::paper_example(4, 4).unwrap();
        let low_cost = low
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        let high_cost = high
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        // Average per-unit NRE share must shrink with more collocations.
        let avg_nre = |c: &crate::portfolio::PortfolioCost| {
            let total: f64 = c
                .systems()
                .iter()
                .map(|s| s.nre_per_unit().total().usd())
                .sum();
            total / c.systems().len() as f64
        };
        assert!(
            avg_nre(&high_cost) < avg_nre(&low_cost),
            "more reuse must amortize NRE further: {} vs {}",
            avg_nre(&high_cost),
            avg_nre(&low_cost)
        );
    }

    #[test]
    fn fsmc_beats_soc_on_average_at_scale() {
        let lib = lib();
        let spec = FsmcSpec::paper_example(3, 4).unwrap();
        let mcm = spec
            .portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        let soc = spec
            .soc_portfolio()
            .unwrap()
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        assert!(
            mcm.average_per_unit() < soc.average_per_unit(),
            "full reuse must beat per-system SoCs: {} vs {}",
            mcm.average_per_unit(),
            soc.average_per_unit()
        );
    }

    #[test]
    fn labels() {
        assert_eq!(type_label(0), "A");
        assert_eq!(type_label(25), "Z");
        assert_eq!(type_label(26), "T26");
        assert_eq!(collocation_name(&[2, 0, 1]), "2A+1C");
        assert_eq!(collocation_name(&[0, 1]), "1B");
    }

    #[test]
    fn fsmc_rejects_degenerate_specs() {
        assert!(FsmcSpec::paper_example(0, 2).is_err());
        assert!(FsmcSpec::paper_example(2, 0).is_err());
    }
}
