use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_tech::{NodeId, TechLibrary};
use actuary_units::Area;

use crate::error::ArchError;
use crate::module::Module;

/// A chip: either a monolithic SoC die formed directly from modules, or a
/// chiplet formed from modules plus the node's D2D interface (Eq. (3)).
///
/// Chips are identified by name for NRE sharing — building the same chiplet
/// into many systems pays its chip-level NRE only once (Eq. (8)).
///
/// # Examples
///
/// ```
/// use actuary_arch::{Chip, Module};
/// use actuary_tech::TechLibrary;
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TechLibrary::paper_defaults()?;
/// let m = Module::new("cores", "7nm", Area::from_mm2(90.0)?);
/// let chiplet = Chip::chiplet("ccd", "7nm", vec![m.clone()]);
/// // 10 % D2D overhead: 90 mm² of modules → 100 mm² die.
/// assert!((chiplet.die_area(&lib)?.mm2() - 100.0).abs() < 1e-9);
/// let soc = Chip::monolithic("soc", "7nm", vec![m]);
/// assert_eq!(soc.die_area(&lib)?.mm2(), 90.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chip {
    name: String,
    node: NodeId,
    modules: Vec<Module>,
    is_chiplet: bool,
}

impl Chip {
    /// Creates a chiplet: modules plus the node's D2D interface. The die
    /// area is inflated by the node's D2D area fraction.
    pub fn chiplet(name: impl Into<String>, node: impl Into<NodeId>, modules: Vec<Module>) -> Self {
        Chip {
            name: name.into(),
            node: node.into(),
            modules,
            is_chiplet: true,
        }
    }

    /// Creates a monolithic SoC die: modules only, no D2D interface.
    pub fn monolithic(
        name: impl Into<String>,
        node: impl Into<NodeId>,
        modules: Vec<Module>,
    ) -> Self {
        Chip {
            name: name.into(),
            node: node.into(),
            modules,
            is_chiplet: false,
        }
    }

    /// The chip's design name (the NRE-sharing identity).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process node the chip is manufactured on.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// The modules the chip carries.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Whether the chip is a chiplet (carries a D2D interface).
    pub fn is_chiplet(&self) -> bool {
        self.is_chiplet
    }

    /// Total functional module area (excluding D2D).
    pub fn module_area(&self) -> Area {
        self.modules.iter().map(|m| m.area()).sum()
    }

    /// Die area: module area, inflated by the node's D2D fraction when the
    /// chip is a chiplet.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Tech`] if the node is not in the library, or
    /// [`ArchError::InvalidArchitecture`] if a module targets a different
    /// node than the chip.
    pub fn die_area(&self, lib: &TechLibrary) -> Result<Area, ArchError> {
        for m in &self.modules {
            if m.node() != &self.node {
                return Err(ArchError::InvalidArchitecture {
                    reason: format!(
                        "chip {} is on {} but module {} is designed at {}",
                        self.name,
                        self.node,
                        m.name(),
                        m.node()
                    ),
                });
            }
        }
        let node = lib.node(self.node.as_str())?;
        let module_area = self.module_area();
        if self.is_chiplet {
            Ok(node.d2d().inflate_module_area(module_area)?)
        } else {
            Ok(module_area)
        }
    }

    /// The D2D interface area on this chip (zero for monolithic dies).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Chip::die_area`].
    pub fn d2d_area(&self, lib: &TechLibrary) -> Result<Area, ArchError> {
        let die = self.die_area(lib)?;
        Ok(die.saturating_sub(self.module_area()))
    }
}

impl fmt::Display for Chip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} @ {}, {} modules)",
            self.name,
            if self.is_chiplet {
                "chiplet"
            } else {
                "SoC die"
            },
            self.node,
            self.modules.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    #[test]
    fn chiplet_inflates_by_d2d() {
        let lib = lib();
        let c = Chip::chiplet(
            "x",
            "5nm",
            vec![
                Module::new("a", "5nm", area(45.0)),
                Module::new("b", "5nm", area(45.0)),
            ],
        );
        assert_eq!(c.module_area().mm2(), 90.0);
        assert!((c.die_area(&lib).unwrap().mm2() - 100.0).abs() < 1e-9);
        assert!((c.d2d_area(&lib).unwrap().mm2() - 10.0).abs() < 1e-9);
        assert!(c.is_chiplet());
    }

    #[test]
    fn monolithic_has_no_d2d() {
        let lib = lib();
        let c = Chip::monolithic("soc", "5nm", vec![Module::new("a", "5nm", area(90.0))]);
        assert_eq!(c.die_area(&lib).unwrap().mm2(), 90.0);
        assert_eq!(c.d2d_area(&lib).unwrap(), Area::ZERO);
        assert!(!c.is_chiplet());
    }

    #[test]
    fn node_mismatch_is_rejected() {
        let lib = lib();
        let c = Chip::chiplet("x", "5nm", vec![Module::new("a", "7nm", area(50.0))]);
        let err = c.die_area(&lib).unwrap_err();
        assert!(matches!(err, ArchError::InvalidArchitecture { .. }));
        assert!(err.to_string().contains("7nm"), "{err}");
    }

    #[test]
    fn unknown_node_errors() {
        let lib = lib();
        let c = Chip::chiplet("x", "9nm", vec![Module::new("a", "9nm", area(50.0))]);
        assert!(matches!(c.die_area(&lib), Err(ArchError::Tech(_))));
    }

    #[test]
    fn empty_chip_has_zero_area() {
        let lib = lib();
        let c = Chip::monolithic("empty", "7nm", vec![]);
        assert_eq!(c.die_area(&lib).unwrap(), Area::ZERO);
    }

    #[test]
    fn display() {
        let c = Chip::chiplet("ccd", "7nm", vec![Module::new("cores", "7nm", area(66.0))]);
        assert_eq!(c.to_string(), "ccd (chiplet @ 7nm, 1 modules)");
    }
}
