use std::error::Error;
use std::fmt;

use actuary_model::ModelError;
use actuary_tech::TechError;
use actuary_units::UnitError;
use actuary_yield::YieldError;

/// Error produced by architecture construction and portfolio costing.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// A system or portfolio was structurally invalid (no chips, SoC with
    /// several dies, inconsistent shared package definitions, …).
    InvalidArchitecture {
        /// What was wrong.
        reason: String,
    },
    /// A partitioning request was infeasible (zero chiplets, more chiplets
    /// than modules, …).
    InvalidPartition {
        /// What was wrong.
        reason: String,
    },
    /// An underlying cost-engine call failed.
    Model(ModelError),
    /// An underlying technology lookup failed.
    Tech(TechError),
    /// An underlying yield/wafer computation failed.
    Yield(YieldError),
    /// An underlying unit value was invalid.
    Unit(UnitError),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidArchitecture { reason } => {
                write!(f, "invalid architecture: {reason}")
            }
            ArchError::InvalidPartition { reason } => write!(f, "invalid partition: {reason}"),
            ArchError::Model(e) => write!(f, "{e}"),
            ArchError::Tech(e) => write!(f, "{e}"),
            ArchError::Yield(e) => write!(f, "{e}"),
            ArchError::Unit(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ArchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchError::Model(e) => Some(e),
            ArchError::Tech(e) => Some(e),
            ArchError::Yield(e) => Some(e),
            ArchError::Unit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ArchError {
    fn from(e: ModelError) -> Self {
        ArchError::Model(e)
    }
}

impl From<TechError> for ArchError {
    fn from(e: TechError) -> Self {
        ArchError::Tech(e)
    }
}

impl From<YieldError> for ArchError {
    fn from(e: YieldError) -> Self {
        ArchError::Yield(e)
    }
}

impl From<UnitError> for ArchError {
    fn from(e: UnitError) -> Self {
        ArchError::Unit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = ArchError::InvalidArchitecture {
            reason: "no chips".into(),
        };
        assert!(e.to_string().contains("no chips"));
        let e = ArchError::InvalidPartition {
            reason: "zero chiplets".into(),
        };
        assert!(e.to_string().contains("zero chiplets"));
    }

    #[test]
    fn sources_chain() {
        let e = ArchError::from(UnitError::DivisionByZero { context: "t" });
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ArchError>();
    }
}
