use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_model::{
    chip_level_nre, d2d_nre, module_design_cost, package_nre_for_silicon, AssemblyFlow,
    NreBreakdown, ReCostBreakdown,
};
use actuary_tech::TechLibrary;
use actuary_units::{Area, Money, Quantity};

use crate::error::ArchError;
use crate::system::System;

/// What kind of design artifact an NRE entity is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NreEntityKind {
    /// A module design (`K_m·S_m`), shared by every chip embedding it.
    Module,
    /// A chip design (`K_c·S_c + C`), shared by every system placing it.
    Chip,
    /// A package design (`K_p·S_p + C_p`), shared under package reuse.
    Package,
    /// A D2D interface design (`C_D2D`), shared per process node.
    D2d,
}

impl fmt::Display for NreEntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NreEntityKind::Module => f.write_str("module"),
            NreEntityKind::Chip => f.write_str("chip"),
            NreEntityKind::Package => f.write_str("package"),
            NreEntityKind::D2d => f.write_str("d2d"),
        }
    }
}

/// One shared NRE artifact: its total cost and the per-unit share allocated
/// to each system (proportional to usage × quantity, the paper's
/// "amortized to each system depending on the number of modules and chips
/// included", §4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NreEntity {
    kind: NreEntityKind,
    name: String,
    cost: Money,
    allocations: BTreeMap<String, Money>,
}

impl NreEntity {
    /// The artifact kind.
    pub fn kind(&self) -> NreEntityKind {
        self.kind
    }

    /// The artifact's identity (module `name@node`, chip name, package
    /// design name, or `d2d@node`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total NRE cost of the artifact (paid once for the portfolio).
    pub fn cost(&self) -> Money {
        self.cost
    }

    /// Per-unit cost allocated to the named system (zero if the system does
    /// not use the artifact).
    pub fn allocation_for(&self, system: &str) -> Money {
        self.allocations.get(system).copied().unwrap_or(Money::ZERO)
    }

    /// All per-unit allocations, keyed by system name.
    pub fn allocations(&self) -> &BTreeMap<String, Money> {
        &self.allocations
    }
}

/// Per-system cost result: RE breakdown plus the per-unit amortized NRE
/// shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemCost {
    name: String,
    quantity: Quantity,
    re: ReCostBreakdown,
    nre_per_unit: NreBreakdown,
}

impl SystemCost {
    /// The system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The production quantity.
    pub fn quantity(&self) -> Quantity {
        self.quantity
    }

    /// Per-unit RE breakdown.
    pub fn re(&self) -> &ReCostBreakdown {
        &self.re
    }

    /// Per-unit amortized NRE breakdown.
    pub fn nre_per_unit(&self) -> &NreBreakdown {
        &self.nre_per_unit
    }

    /// Per-unit total cost (RE + amortized NRE).
    pub fn per_unit_total(&self) -> Money {
        self.re.total() + self.nre_per_unit.total()
    }

    /// Fraction of the per-unit cost that is RE.
    pub fn re_share(&self) -> f64 {
        let total = self.per_unit_total();
        if total.is_zero() {
            0.0
        } else {
            self.re.total() / total
        }
    }
}

impl fmt::Display for SystemCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} / unit (RE {}, NRE {})",
            self.name,
            self.per_unit_total(),
            self.re.total(),
            self.nre_per_unit.total()
        )
    }
}

/// The full cost result of a [`Portfolio`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioCost {
    systems: Vec<SystemCost>,
    entities: Vec<NreEntity>,
    nre_total: NreBreakdown,
}

impl PortfolioCost {
    /// Per-system results, in the portfolio's system order.
    pub fn systems(&self) -> &[SystemCost] {
        &self.systems
    }

    /// Looks up a system result by name.
    pub fn system(&self, name: &str) -> Option<&SystemCost> {
        self.systems.iter().find(|s| s.name() == name)
    }

    /// Every NRE artifact with its allocations.
    pub fn entities(&self) -> &[NreEntity] {
        &self.entities
    }

    /// Portfolio-wide NRE totals by component.
    pub fn nre_total(&self) -> &NreBreakdown {
        &self.nre_total
    }

    /// Whole-program cost: `Σ quantity × RE + total NRE`.
    pub fn program_total(&self) -> Money {
        let re: Money = self
            .systems
            .iter()
            .map(|s| s.re().total() * s.quantity().as_f64())
            .sum();
        re + self.nre_total.total()
    }

    /// Unweighted mean of the per-unit totals across systems — the metric of
    /// the paper's Figure 10 ("compared by average normalized cost").
    pub fn average_per_unit(&self) -> Money {
        if self.systems.is_empty() {
            return Money::ZERO;
        }
        let sum: Money = self.systems.iter().map(|s| s.per_unit_total()).sum();
        sum / self.systems.len() as f64
    }
}

impl fmt::Display for PortfolioCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "portfolio of {} systems:", self.systems.len())?;
        for s in &self.systems {
            writeln!(f, "  {s}")?;
        }
        write!(f, "  total NRE: {}", self.nre_total.total())
    }
}

/// One shared NRE artifact before amortization: total cost plus the usage
/// weight each system contributes (`uses × quantity` is the allocation
/// weight of Eq. (7)/(8)).
#[derive(Debug, Clone, PartialEq)]
struct EntityDraft {
    kind: NreEntityKind,
    name: String,
    cost: Money,
    uses: BTreeMap<String, f64>,
}

/// The quantity-independent part of a [`Portfolio::cost`] evaluation:
/// per-system RE breakdowns plus every shared NRE artifact's total cost and
/// usage weights.
///
/// Computing the core is the expensive step (yield models, wafer gridding,
/// package sizing); spreading it over production quantities is cheap
/// arithmetic. Exploration engines therefore cache cores keyed on geometry
/// and re-amortize one core per quantity (and per reuse scheme), which is
/// where the quantity axis of a grid stops costing anything.
///
/// [`PortfolioCore::amortize`] reproduces [`Portfolio::cost`] exactly —
/// `cost` is implemented as `core` followed by `amortize`, so the two paths
/// cannot drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioCore {
    names: Vec<String>,
    quantities: Vec<Quantity>,
    re: Vec<ReCostBreakdown>,
    drafts: Vec<EntityDraft>,
}

impl PortfolioCore {
    /// The member system names, in portfolio order.
    pub fn system_names(&self) -> &[String] {
        &self.names
    }

    /// Number of member systems.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the core has no systems (never true: empty portfolios fail
    /// [`Portfolio::core`]).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Amortizes the NRE over the quantities the systems were built with —
    /// together with [`Portfolio::core`] this *is* [`Portfolio::cost`].
    pub fn amortize(&self) -> PortfolioCost {
        self.amortize_impl(&self.quantities)
    }

    /// Amortizes the NRE with every system at the same production
    /// `quantity` — the per-quantity pass of a cached exploration grid.
    pub fn amortize_at(&self, quantity: Quantity) -> PortfolioCost {
        self.amortize_impl(&vec![quantity; self.names.len()])
    }

    /// Amortizes the NRE over caller-supplied per-system quantities (in
    /// portfolio order).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] if `quantities` does not
    /// have one entry per system.
    pub fn amortize_with(&self, quantities: &[Quantity]) -> Result<PortfolioCost, ArchError> {
        if quantities.len() != self.names.len() {
            return Err(ArchError::InvalidArchitecture {
                reason: format!(
                    "portfolio has {} systems but {} quantities were supplied",
                    self.names.len(),
                    quantities.len()
                ),
            });
        }
        Ok(self.amortize_impl(quantities))
    }

    fn amortize_impl(&self, quantities: &[Quantity]) -> PortfolioCost {
        let quantity_of: BTreeMap<&str, Quantity> = self
            .names
            .iter()
            .map(String::as_str)
            .zip(quantities.iter().copied())
            .collect();
        let mut entities = Vec::with_capacity(self.drafts.len());
        for draft in &self.drafts {
            let total_weight: f64 = draft
                .uses
                .iter()
                .map(|(sys, uses)| uses * quantity_of[sys.as_str()].as_f64())
                .sum();
            let mut allocations = BTreeMap::new();
            for (sys, uses) in &draft.uses {
                // share_j (total) = cost × (uses_j × q_j) / Σ; per unit
                // divide by q_j → cost × uses_j / Σ.
                let per_unit = if total_weight > 0.0 {
                    draft.cost * (uses / total_weight)
                } else {
                    Money::ZERO
                };
                allocations.insert(sys.clone(), per_unit);
            }
            entities.push(NreEntity {
                kind: draft.kind,
                name: draft.name.clone(),
                cost: draft.cost,
                allocations,
            });
        }

        let mut systems_out = Vec::with_capacity(self.names.len());
        for ((name, &quantity), re) in self.names.iter().zip(quantities).zip(&self.re) {
            let mut nre = NreBreakdown::default();
            for e in &entities {
                let share = e.allocation_for(name);
                match e.kind() {
                    NreEntityKind::Module => nre.modules += share,
                    NreEntityKind::Chip => nre.chips += share,
                    NreEntityKind::Package => nre.packages += share,
                    NreEntityKind::D2d => nre.d2d += share,
                }
            }
            systems_out.push(SystemCost {
                name: name.clone(),
                quantity,
                re: *re,
                nre_per_unit: nre,
            });
        }
        let mut nre_total = NreBreakdown::default();
        for e in &entities {
            match e.kind() {
                NreEntityKind::Module => nre_total.modules += e.cost(),
                NreEntityKind::Chip => nre_total.chips += e.cost(),
                NreEntityKind::Package => nre_total.packages += e.cost(),
                NreEntityKind::D2d => nre_total.d2d += e.cost(),
            }
        }

        PortfolioCost {
            systems: systems_out,
            entities,
            nre_total,
        }
    }
}

/// A group of systems sharing module, chip, package and D2D designs — the
/// `J` of the paper's Eq. (7)/(8).
///
/// # Examples
///
/// See the crate-level example; the reuse schemes in [`crate::reuse`] all
/// produce portfolios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Portfolio {
    systems: Vec<System>,
}

impl Portfolio {
    /// Creates a portfolio from systems.
    pub fn new(systems: Vec<System>) -> Self {
        Portfolio { systems }
    }

    /// The member systems.
    pub fn systems(&self) -> &[System] {
        &self.systems
    }

    /// Adds a system.
    pub fn push(&mut self, system: System) {
        self.systems.push(system);
    }

    /// Number of member systems.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// Whether the portfolio has no systems.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// Computes RE for every system and NRE with full sharing (Eq. (7)/(8)).
    ///
    /// Shared package designs are sized for their largest member system;
    /// smaller members pay the oversized package's RE (§5.1).
    ///
    /// Implemented as [`Portfolio::core`] followed by
    /// [`PortfolioCore::amortize`], so cached exploration engines that
    /// re-amortize one core per quantity produce byte-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] for duplicate system
    /// names, conflicting design definitions (same module/chip name with
    /// different geometry) or mixed-integration package-design groups;
    /// propagates technology and cost-engine errors.
    pub fn cost(&self, lib: &TechLibrary, flow: AssemblyFlow) -> Result<PortfolioCost, ArchError> {
        Ok(self.core(lib, flow)?.amortize())
    }

    /// Computes the quantity-independent [`PortfolioCore`]: validation,
    /// shared-package sizing, per-system RE and the NRE entity drafts —
    /// everything of [`Portfolio::cost`] except the amortization over
    /// production quantities.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Portfolio::cost`].
    pub fn core(&self, lib: &TechLibrary, flow: AssemblyFlow) -> Result<PortfolioCore, ArchError> {
        if self.systems.is_empty() {
            return Err(ArchError::InvalidArchitecture {
                reason: "portfolio has no systems".to_string(),
            });
        }
        // --- Uniqueness of system names. ---------------------------------
        {
            let mut seen = BTreeMap::new();
            for s in &self.systems {
                if seen.insert(s.name().to_string(), ()).is_some() {
                    return Err(ArchError::InvalidArchitecture {
                        reason: format!("duplicate system name {:?}", s.name()),
                    });
                }
            }
        }

        // --- Shared package designs: group, validate, size. ---------------
        let mut design_silicon: BTreeMap<String, Area> = BTreeMap::new();
        let mut design_kind: BTreeMap<String, actuary_tech::IntegrationKind> = BTreeMap::new();
        for s in &self.systems {
            if let Some(design) = s.package_design() {
                let silicon = s.total_silicon(lib)?;
                let entry = design_silicon
                    .entry(design.to_string())
                    .or_insert(Area::ZERO);
                *entry = entry.max(silicon);
                match design_kind.get(design) {
                    None => {
                        design_kind.insert(design.to_string(), s.integration());
                    }
                    Some(kind) if *kind != s.integration() => {
                        return Err(ArchError::InvalidArchitecture {
                            reason: format!(
                                "package design {design:?} is shared across different \
                                 integration kinds ({kind} and {})",
                                s.integration()
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }

        // --- Per-system RE. -------------------------------------------------
        let mut re_by_system: Vec<ReCostBreakdown> = Vec::with_capacity(self.systems.len());
        for s in &self.systems {
            let over = s
                .package_design()
                .map(|d| design_silicon[d])
                .filter(|a| !a.is_zero());
            re_by_system.push(s.re_cost(lib, flow, over)?);
        }

        // --- NRE entities with usage-weighted allocation. -------------------
        // usage[system -> uses]; weight = uses × quantity.
        let mut drafts: Vec<EntityDraft> = Vec::new();
        let mut index: BTreeMap<(NreEntityKind, String), usize> = BTreeMap::new();

        let add_use = |drafts: &mut Vec<EntityDraft>,
                       index: &mut BTreeMap<(NreEntityKind, String), usize>,
                       kind: NreEntityKind,
                       name: String,
                       cost: Money,
                       system: &str,
                       uses: f64|
         -> Result<(), ArchError> {
            let key = (kind, name.clone());
            let idx = match index.get(&key) {
                Some(&i) => {
                    // Same design must have consistent cost (geometry).
                    if (drafts[i].cost.usd() - cost.usd()).abs() > 1e-6 {
                        return Err(ArchError::InvalidArchitecture {
                            reason: format!(
                                "{kind} design {name:?} is defined with conflicting \
                                 geometry across systems"
                            ),
                        });
                    }
                    i
                }
                None => {
                    drafts.push(EntityDraft {
                        kind,
                        name: name.clone(),
                        cost,
                        uses: BTreeMap::new(),
                    });
                    index.insert(key, drafts.len() - 1);
                    drafts.len() - 1
                }
            };
            *drafts[idx].uses.entry(system.to_string()).or_insert(0.0) += uses;
            Ok(())
        };

        for s in &self.systems {
            // Module and chip designs.
            for (chip, count) in s.chips() {
                let node = lib.node(chip.node().as_str())?;
                let die_area = chip.die_area(lib)?;
                add_use(
                    &mut drafts,
                    &mut index,
                    NreEntityKind::Chip,
                    chip.name().to_string(),
                    chip_level_nre(node, die_area),
                    s.name(),
                    *count as f64,
                )?;
                for m in chip.modules() {
                    add_use(
                        &mut drafts,
                        &mut index,
                        NreEntityKind::Module,
                        format!("{}@{}", m.name(), m.node()),
                        module_design_cost(node, m.area()),
                        s.name(),
                        *count as f64,
                    )?;
                }
                // D2D interface design, once per node.
                if chip.is_chiplet() {
                    add_use(
                        &mut drafts,
                        &mut index,
                        NreEntityKind::D2d,
                        format!("d2d@{}", chip.node()),
                        d2d_nre(node),
                        s.name(),
                        *count as f64,
                    )?;
                }
            }
            // Package design.
            let packaging = lib.packaging(s.integration())?;
            let (pkg_name, silicon_basis) = match s.package_design() {
                Some(design) => (design.to_string(), design_silicon[design]),
                None => (format!("pkg:{}", s.name()), s.total_silicon(lib)?),
            };
            add_use(
                &mut drafts,
                &mut index,
                NreEntityKind::Package,
                pkg_name,
                package_nre_for_silicon(packaging, silicon_basis)?,
                s.name(),
                1.0,
            )?;
        }

        Ok(PortfolioCore {
            names: self.systems.iter().map(|s| s.name().to_string()).collect(),
            quantities: self.systems.iter().map(System::quantity).collect(),
            re: re_by_system,
            drafts,
        })
    }
}

impl FromIterator<System> for Portfolio {
    fn from_iter<T: IntoIterator<Item = System>>(iter: T) -> Self {
        Portfolio::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::Chip;
    use crate::module::Module;
    use actuary_tech::IntegrationKind;

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn chiplet(name: &str, module: &str, mm2: f64) -> Chip {
        Chip::chiplet(name, "7nm", vec![Module::new(module, "7nm", area(mm2))])
    }

    fn simple_system(name: &str, chip: Chip, n: u32, qty: u64) -> System {
        System::builder(name, IntegrationKind::Mcm)
            .chip(chip, n)
            .quantity(Quantity::new(qty))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_portfolio_errors() {
        let p = Portfolio::new(vec![]);
        assert!(p.cost(&lib(), AssemblyFlow::ChipLast).is_err());
        assert!(p.is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let c = chiplet("c", "m", 100.0);
        let p = Portfolio::new(vec![
            simple_system("s", c.clone(), 1, 1000),
            simple_system("s", c, 2, 1000),
        ]);
        let err = p.cost(&lib(), AssemblyFlow::ChipLast).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn shared_chiplet_nre_is_paid_once() {
        let lib = lib();
        let c = chiplet("shared", "m", 180.0);
        // Two systems using the same chiplet vs two distinct chiplets.
        let shared = Portfolio::new(vec![
            simple_system("a", c.clone(), 1, 500_000),
            simple_system("b", c.clone(), 2, 500_000),
        ]);
        let distinct = Portfolio::new(vec![
            simple_system("a", chiplet("c1", "m1", 180.0), 1, 500_000),
            simple_system("b", chiplet("c2", "m2", 180.0), 2, 500_000),
        ]);
        let shared_cost = shared.cost(&lib, AssemblyFlow::ChipLast).unwrap();
        let distinct_cost = distinct.cost(&lib, AssemblyFlow::ChipLast).unwrap();
        assert!(
            shared_cost.nre_total().chips < distinct_cost.nre_total().chips,
            "chip reuse must halve chip NRE"
        );
        assert!(
            shared_cost.nre_total().modules < distinct_cost.nre_total().modules,
            "module reuse must halve module NRE"
        );
        // Chip entity count: 1 shared vs 2 distinct.
        let shared_chips = shared_cost
            .entities()
            .iter()
            .filter(|e| e.kind() == NreEntityKind::Chip)
            .count();
        let distinct_chips = distinct_cost
            .entities()
            .iter()
            .filter(|e| e.kind() == NreEntityKind::Chip)
            .count();
        assert_eq!(shared_chips, 1);
        assert_eq!(distinct_chips, 2);
    }

    #[test]
    fn allocation_proportional_to_usage_and_quantity() {
        let lib = lib();
        let c = chiplet("shared", "m", 100.0);
        // System a uses 1 chip at 1M units; system b uses 3 chips at 1M.
        let p = Portfolio::new(vec![
            simple_system("a", c.clone(), 1, 1_000_000),
            simple_system("b", c, 3, 1_000_000),
        ]);
        let cost = p.cost(&lib, AssemblyFlow::ChipLast).unwrap();
        let chip_entity = cost
            .entities()
            .iter()
            .find(|e| e.kind() == NreEntityKind::Chip)
            .unwrap();
        let a = chip_entity.allocation_for("a").usd();
        let b = chip_entity.allocation_for("b").usd();
        assert!((b / a - 3.0).abs() < 1e-9, "b uses 3x the chips per unit");
        // Total allocated × quantity = entity cost.
        let recovered = a * 1.0e6 + b * 1.0e6;
        assert!((recovered - chip_entity.cost().usd()).abs() < 1.0);
    }

    #[test]
    fn conflicting_chip_geometry_rejected() {
        let lib = lib();
        let p = Portfolio::new(vec![
            simple_system("a", chiplet("c", "m", 100.0), 1, 1000),
            simple_system("b", chiplet("c", "m", 200.0), 1, 1000),
        ]);
        let err = p.cost(&lib, AssemblyFlow::ChipLast).unwrap_err();
        assert!(err.to_string().contains("conflicting"), "{err}");
    }

    #[test]
    fn package_reuse_shares_nre_but_costs_small_system_re() {
        let lib = lib();
        let c = chiplet("c", "m", 180.0);
        let build = |reuse: bool| {
            let mut small = System::builder("1x", IntegrationKind::Mcm)
                .chip(c.clone(), 1)
                .quantity(Quantity::new(500_000));
            let mut large = System::builder("4x", IntegrationKind::Mcm)
                .chip(c.clone(), 4)
                .quantity(Quantity::new(500_000));
            if reuse {
                small = small.package_design("shared-pkg");
                large = large.package_design("shared-pkg");
            }
            Portfolio::new(vec![small.build().unwrap(), large.build().unwrap()])
        };
        let no_reuse = build(false).cost(&lib, AssemblyFlow::ChipLast).unwrap();
        let reuse = build(true).cost(&lib, AssemblyFlow::ChipLast).unwrap();

        // Package NRE: one design instead of two.
        assert!(reuse.nre_total().packages < no_reuse.nre_total().packages);
        // The small system pays more RE on the oversized package.
        let small_re_no = no_reuse.system("1x").unwrap().re().raw_package;
        let small_re_yes = reuse.system("1x").unwrap().re().raw_package;
        assert!(small_re_yes > small_re_no);
        // The large system's RE is unchanged.
        let large_re_no = no_reuse.system("4x").unwrap().re().total();
        let large_re_yes = reuse.system("4x").unwrap().re().total();
        assert!((large_re_no.usd() - large_re_yes.usd()).abs() < 1e-9);
    }

    #[test]
    fn mixed_integration_package_design_rejected() {
        let lib = lib();
        let c = chiplet("c", "m", 100.0);
        let a = System::builder("a", IntegrationKind::Mcm)
            .chip(c.clone(), 1)
            .quantity(Quantity::new(1000))
            .package_design("pkg")
            .build()
            .unwrap();
        let b = System::builder("b", IntegrationKind::TwoPointFiveD)
            .chip(c, 2)
            .quantity(Quantity::new(1000))
            .package_design("pkg")
            .build()
            .unwrap();
        let err = Portfolio::new(vec![a, b])
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap_err();
        assert!(err.to_string().contains("integration"), "{err}");
    }

    #[test]
    fn d2d_nre_paid_once_per_node() {
        let lib = lib();
        let c7 = chiplet("c7", "m7", 100.0);
        let c7b = chiplet("c7b", "m7b", 120.0);
        let p = Portfolio::new(vec![
            simple_system("a", c7, 2, 1000),
            simple_system("b", c7b, 2, 1000),
        ]);
        let cost = p.cost(&lib, AssemblyFlow::ChipLast).unwrap();
        let d2d_entities: Vec<_> = cost
            .entities()
            .iter()
            .filter(|e| e.kind() == NreEntityKind::D2d)
            .collect();
        assert_eq!(d2d_entities.len(), 1, "one D2D design for 7nm");
        assert_eq!(cost.nre_total().d2d, d2d_nre(lib.node("7nm").unwrap()));
    }

    #[test]
    fn soc_systems_have_no_d2d_nre() {
        let lib = lib();
        let soc = Chip::monolithic("soc", "7nm", vec![Module::new("m", "7nm", area(400.0))]);
        let s = System::builder("solo", IntegrationKind::Soc)
            .chip(soc, 1)
            .quantity(Quantity::new(1_000_000))
            .build()
            .unwrap();
        let cost = Portfolio::new(vec![s])
            .cost(&lib, AssemblyFlow::ChipLast)
            .unwrap();
        assert_eq!(cost.nre_total().d2d, Money::ZERO);
        assert!(cost.nre_total().chips.usd() > 0.0);
        assert!(cost.nre_total().packages.usd() > 0.0);
    }

    #[test]
    fn per_unit_totals_and_program_total_consistent() {
        let lib = lib();
        let c = chiplet("c", "m", 150.0);
        let p = Portfolio::new(vec![
            simple_system("a", c.clone(), 1, 500_000),
            simple_system("b", c, 4, 2_000_000),
        ]);
        let cost = p.cost(&lib, AssemblyFlow::ChipLast).unwrap();
        // Reconstruct program total from per-system numbers.
        let per_system: f64 = cost
            .systems()
            .iter()
            .map(|s| s.per_unit_total().usd() * s.quantity().as_f64())
            .sum();
        assert!(
            (per_system - cost.program_total().usd()).abs() / cost.program_total().usd() < 1e-9,
            "allocations must exactly cover the NRE total"
        );
        assert!(cost.average_per_unit().usd() > 0.0);
    }

    #[test]
    fn core_amortize_reproduces_cost_exactly() {
        let lib = lib();
        let c = chiplet("shared", "m", 180.0);
        let p = Portfolio::new(vec![
            simple_system("a", c.clone(), 1, 500_000),
            simple_system("b", c, 4, 2_000_000),
        ]);
        let direct = p.cost(&lib, AssemblyFlow::ChipLast).unwrap();
        let core = p.core(&lib, AssemblyFlow::ChipLast).unwrap();
        assert_eq!(core.system_names(), ["a", "b"]);
        assert_eq!(core.len(), 2);
        assert!(!core.is_empty());
        assert_eq!(core.amortize(), direct);
        // amortize_with the same quantities is the same computation.
        let explicit = core
            .amortize_with(&[Quantity::new(500_000), Quantity::new(2_000_000)])
            .unwrap();
        assert_eq!(explicit, direct);
    }

    #[test]
    fn amortize_at_matches_a_rebuilt_portfolio() {
        // The cached-grid contract: one core re-amortized per quantity must
        // be byte-identical to rebuilding and costing the portfolio at that
        // quantity.
        let lib = lib();
        let build = |qty: u64| {
            Portfolio::new(vec![
                simple_system("a", chiplet("c", "m", 150.0), 1, qty),
                simple_system("b", chiplet("c", "m", 150.0), 3, qty),
            ])
        };
        let core = build(1).core(&lib, AssemblyFlow::ChipLast).unwrap();
        for qty in [1_000u64, 500_000, 10_000_000] {
            let cached = core.amortize_at(Quantity::new(qty));
            let rebuilt = build(qty).cost(&lib, AssemblyFlow::ChipLast).unwrap();
            assert_eq!(cached, rebuilt, "quantity {qty}");
        }
    }

    #[test]
    fn amortize_with_rejects_wrong_arity() {
        let lib = lib();
        let p = Portfolio::new(vec![simple_system("a", chiplet("c", "m", 100.0), 1, 1000)]);
        let core = p.core(&lib, AssemblyFlow::ChipLast).unwrap();
        let err = core
            .amortize_with(&[Quantity::new(1), Quantity::new(2)])
            .unwrap_err();
        assert!(err.to_string().contains("quantities"), "{err}");
    }

    #[test]
    fn from_iterator() {
        let c = chiplet("c", "m", 100.0);
        let p: Portfolio = vec![simple_system("a", c, 1, 1000)].into_iter().collect();
        assert_eq!(p.len(), 1);
    }
}
