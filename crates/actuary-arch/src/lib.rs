//! Architecture abstractions of the *Chiplet Actuary* model (DAC 2022):
//! modules, chips, packages, systems and portfolios, plus the chiplet-reuse
//! schemes and partitioning utilities of §5.
//!
//! The paper abstracts every VLSI system into three levels (Eq. (3)):
//!
//! * a [`Module`] — "an indivisible group of functional units", designed
//!   once at a particular process node;
//! * a [`Chip`] — a monolithic SoC die formed directly from modules, or a
//!   chiplet formed from modules plus the D2D interface;
//! * a [`System`] — a package (SoC / MCM / InFO / 2.5D) carrying one or
//!   more chips at a production quantity.
//!
//! A [`Portfolio`] is a *group* of systems; its cost method implements the
//! NRE sharing of Eq. (7)/(8): module designs are paid once per distinct
//! module, chip designs once per distinct chip, package designs once per
//! distinct package design (optionally shared — "package reuse"), and D2D
//! interfaces once per node. The result reports both portfolio totals and
//! per-system amortized breakdowns, which is exactly the data behind
//! Figures 6, 8, 9 and 10 of the paper.
//!
//! The reuse schemes of §5 ship as ready-made portfolio generators in
//! [`reuse`]: [`reuse::ScmsSpec`] (single chiplet, multiple systems),
//! [`reuse::OcmeSpec`] (one center, multiple extensions) and
//! [`reuse::FsmcSpec`] (a few sockets, multiple collocations). The
//! partitioning question ("how many chiplets?") is served by [`partition`],
//! and interposer/substrate sizing by [`floorplan`].
//!
//! # Examples
//!
//! ```
//! use actuary_arch::{Chip, Module, Portfolio, System};
//! use actuary_model::AssemblyFlow;
//! use actuary_tech::{IntegrationKind, TechLibrary};
//! use actuary_units::{Area, Quantity};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let core = Module::new("core-cluster", "7nm", Area::from_mm2(180.0)?);
//! let chiplet = Chip::chiplet("compute-die", "7nm", vec![core]);
//! let system = System::builder("dual-compute", IntegrationKind::Mcm)
//!     .chip(chiplet, 2)
//!     .quantity(Quantity::new(500_000))
//!     .build()?;
//! let portfolio = Portfolio::new(vec![system]);
//! let cost = portfolio.cost(&lib, AssemblyFlow::ChipLast)?;
//! assert_eq!(cost.systems().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chip;
mod error;
pub mod floorplan;
mod module;
pub mod partition;
mod portfolio;
pub mod reuse;
mod system;

pub use chip::Chip;
pub use error::ArchError;
pub use module::Module;
pub use portfolio::{
    NreEntity, NreEntityKind, Portfolio, PortfolioCore, PortfolioCost, SystemCost,
};
pub use system::{System, SystemBuilder};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ArchError>;
