use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_tech::{NodeId, ProcessNode, TechLibrary};
use actuary_units::Area;

use crate::error::ArchError;

/// An indivisible group of functional units, designed once at a particular
/// process node (the `m` of the paper's Eq. (3)).
///
/// Two modules are *the same design* — and therefore share their NRE across
/// a portfolio — exactly when both their name and their node match (the
/// paper regards the same function at different nodes as "diverse modules").
///
/// # Examples
///
/// ```
/// use actuary_arch::Module;
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cores = Module::new("core-cluster", "7nm", Area::from_mm2(160.0)?);
/// assert_eq!(cores.name(), "core-cluster");
/// assert_eq!(cores.node().as_str(), "7nm");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    name: String,
    node: NodeId,
    area: Area,
}

impl Module {
    /// Creates a module of `area` designed at `node`.
    pub fn new(name: impl Into<String>, node: impl Into<NodeId>, area: Area) -> Self {
        Module {
            name: name.into(),
            node: node.into(),
            area,
        }
    }

    /// The module's design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The process node the module is designed at.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// Silicon area of the module at its design node.
    pub fn area(&self) -> Area {
        self.area
    }

    /// The identity key used for NRE sharing: `(name, node)`.
    pub fn design_key(&self) -> (String, NodeId) {
        (self.name.clone(), self.node.clone())
    }

    /// Re-targets the module to another node, rescaling its area by the
    /// relative transistor densities (the heterogeneity operation of §5.2).
    ///
    /// The ported module keeps its name; since the node differs, it counts
    /// as a distinct design for NRE purposes, as the paper prescribes.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::Tech`] if either node is not in the library.
    pub fn ported_to(&self, target: &ProcessNode, lib: &TechLibrary) -> Result<Module, ArchError> {
        let source = lib.node(self.node.as_str())?;
        let area = target.port_area_from(self.area, source)?;
        Ok(Module {
            name: self.name.clone(),
            node: target.id().clone(),
            area,
        })
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} @ {}]", self.name, self.area, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    #[test]
    fn accessors() {
        let m = Module::new("io-hub", "14nm", area(120.0));
        assert_eq!(m.name(), "io-hub");
        assert_eq!(m.node().as_str(), "14nm");
        assert_eq!(m.area().mm2(), 120.0);
    }

    #[test]
    fn design_key_distinguishes_nodes() {
        let a = Module::new("x", "7nm", area(10.0));
        let b = Module::new("x", "14nm", area(10.0));
        assert_ne!(a.design_key(), b.design_key());
        let c = Module::new("x", "7nm", area(20.0));
        assert_eq!(
            a.design_key(),
            c.design_key(),
            "area does not affect identity"
        );
    }

    #[test]
    fn porting_rescales_area() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let at14 = Module::new("io-hub", "14nm", area(280.0));
        let n7 = lib.node("7nm").unwrap();
        let at7 = at14.ported_to(n7, &lib).unwrap();
        assert_eq!(at7.node().as_str(), "7nm");
        assert!((at7.area().mm2() - 280.0 / 2.8).abs() < 1e-9);
        assert_eq!(at7.name(), "io-hub");
    }

    #[test]
    fn porting_unknown_node_errors() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let m = Module::new("x", "9nm", area(10.0));
        let n7 = lib.node("7nm").unwrap();
        assert!(m.ported_to(n7, &lib).is_err());
    }

    #[test]
    fn display() {
        let m = Module::new("gpu", "5nm", area(150.0));
        assert_eq!(m.to_string(), "gpu [150 mm² @ 5nm]");
    }
}
