//! Interposer and substrate floorplan estimation.
//!
//! The cost model sizes interposers and package bodies with simple area
//! factors (`interposer area = factor × silicon area`). This module provides
//! a mechanistic cross-check: a shelf-packing floorplanner that actually
//! places die footprints with spacing rules and reports the resulting
//! bounding box, so the area factors can be validated (or replaced) for a
//! concrete chiplet set.

use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::Area;
use actuary_yield::DieFootprint;

use crate::error::ArchError;

/// One placed die: position of its lower-left corner plus its footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// X of the lower-left corner in mm.
    pub x_mm: f64,
    /// Y of the lower-left corner in mm.
    pub y_mm: f64,
    /// Width of the die in mm.
    pub width_mm: f64,
    /// Height of the die in mm.
    pub height_mm: f64,
}

impl Placement {
    /// The die's right edge.
    pub fn right_mm(&self) -> f64 {
        self.x_mm + self.width_mm
    }

    /// The die's top edge.
    pub fn top_mm(&self) -> f64 {
        self.y_mm + self.height_mm
    }

    /// Whether two placements overlap (touching edges do not count).
    pub fn overlaps(&self, other: &Placement) -> bool {
        self.x_mm < other.right_mm()
            && other.x_mm < self.right_mm()
            && self.y_mm < other.top_mm()
            && other.y_mm < self.top_mm()
    }
}

/// Result of a floorplanning run: the bounding box and the placements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    width_mm: f64,
    height_mm: f64,
    placements: Vec<Placement>,
}

impl Floorplan {
    /// Bounding-box width in mm.
    pub fn width_mm(&self) -> f64 {
        self.width_mm
    }

    /// Bounding-box height in mm.
    pub fn height_mm(&self) -> f64 {
        self.height_mm
    }

    /// Bounding-box area (the interposer/substrate area estimate).
    pub fn area(&self) -> Area {
        Area::from_mm2(self.width_mm * self.height_mm)
            .expect("bounding box dimensions are finite and non-negative")
    }

    /// The individual die placements.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Silicon utilization: die area over bounding-box area (`0..=1`).
    pub fn utilization(&self) -> f64 {
        let silicon: f64 = self
            .placements
            .iter()
            .map(|p| p.width_mm * p.height_mm)
            .sum();
        let bb = self.width_mm * self.height_mm;
        // lint:allow(determinism): exact-zero guard against dividing by an empty bounding box
        if bb == 0.0 {
            0.0
        } else {
            silicon / bb
        }
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} × {:.1} mm floorplan, {} dies, {:.0}% utilization",
            self.width_mm,
            self.height_mm,
            self.placements.len(),
            self.utilization() * 100.0
        )
    }
}

/// Shelf-packs die footprints with a minimum spacing, targeting a roughly
/// square bounding box.
///
/// Dies are sorted by height (descending) and placed left-to-right on
/// shelves; a new shelf opens when the next die would exceed the target
/// width. The target width is `√(1.2 × total die area)` unless `max_width_mm`
/// is given. The returned bounding box includes `spacing_mm` margins between
/// dies but not around the floorplan edge.
///
/// # Errors
///
/// Returns [`ArchError::InvalidArchitecture`] if `dies` is empty or the
/// spacing is negative.
///
/// # Examples
///
/// ```
/// use actuary_arch::floorplan::shelf_pack;
/// use actuary_yield::DieFootprint;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let die = DieFootprint::new(10.0, 10.0)?;
/// let plan = shelf_pack(&[die; 4], 0.5, None)?;
/// assert_eq!(plan.placements().len(), 4);
/// assert!(plan.utilization() > 0.7);
/// # Ok(())
/// # }
/// ```
pub fn shelf_pack(
    dies: &[DieFootprint],
    spacing_mm: f64,
    max_width_mm: Option<f64>,
) -> Result<Floorplan, ArchError> {
    if dies.is_empty() {
        return Err(ArchError::InvalidArchitecture {
            reason: "cannot floorplan zero dies".to_string(),
        });
    }
    if !spacing_mm.is_finite() || spacing_mm < 0.0 {
        return Err(ArchError::InvalidArchitecture {
            reason: format!("spacing {spacing_mm} mm must be non-negative"),
        });
    }
    let total_area: f64 = dies.iter().map(|d| d.area().mm2()).sum();
    let widest = dies.iter().map(|d| d.width_mm()).fold(0.0f64, f64::max);
    let target_width = match max_width_mm {
        Some(w) => {
            if w < widest {
                return Err(ArchError::InvalidArchitecture {
                    reason: format!(
                        "max width {w} mm is narrower than the widest die ({widest} mm)"
                    ),
                });
            }
            w
        }
        None => (1.2 * total_area).sqrt().max(widest),
    };

    // Sort by height descending for tight shelves.
    let mut order: Vec<&DieFootprint> = dies.iter().collect();
    order.sort_by(|a, b| {
        b.height_mm()
            .partial_cmp(&a.height_mm())
            .expect("die dimensions are finite")
    });

    let mut placements = Vec::with_capacity(dies.len());
    let mut shelf_y = 0.0f64;
    let mut shelf_height = 0.0f64;
    let mut cursor_x = 0.0f64;
    let mut bb_width = 0.0f64;

    for die in order {
        // lint:allow(determinism): cursor_x is assigned exactly 0.0 at each shelf start
        let needed = if cursor_x == 0.0 {
            die.width_mm()
        } else {
            cursor_x + spacing_mm + die.width_mm()
        };
        if cursor_x > 0.0 && needed > target_width {
            // Open a new shelf.
            shelf_y += shelf_height + spacing_mm;
            shelf_height = 0.0;
            cursor_x = 0.0;
        }
        // lint:allow(determinism): same shelf-start sentinel as above
        let x = if cursor_x == 0.0 {
            0.0
        } else {
            cursor_x + spacing_mm
        };
        placements.push(Placement {
            x_mm: x,
            y_mm: shelf_y,
            width_mm: die.width_mm(),
            height_mm: die.height_mm(),
        });
        cursor_x = x + die.width_mm();
        shelf_height = shelf_height.max(die.height_mm());
        bb_width = bb_width.max(cursor_x);
    }
    let bb_height = shelf_y + shelf_height;
    Ok(Floorplan {
        width_mm: bb_width,
        height_mm: bb_height,
        placements,
    })
}

/// Estimates the interposer area for a set of die footprints by shelf
/// packing with the given spacing — a mechanistic alternative to the
/// interposer `area_factor` of the cost model.
///
/// # Errors
///
/// Same conditions as [`shelf_pack`].
pub fn interposer_area_estimate(dies: &[DieFootprint], spacing_mm: f64) -> Result<Area, ArchError> {
    Ok(shelf_pack(dies, spacing_mm, None)?.area())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square(side: f64) -> DieFootprint {
        DieFootprint::new(side, side).unwrap()
    }

    #[test]
    fn single_die_floorplan_is_the_die() {
        let plan = shelf_pack(&[square(10.0)], 1.0, None).unwrap();
        assert_eq!(plan.width_mm(), 10.0);
        assert_eq!(plan.height_mm(), 10.0);
        assert!((plan.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn four_squares_pack_in_a_grid() {
        let dies = [square(10.0), square(10.0), square(10.0), square(10.0)];
        let plan = shelf_pack(&dies, 0.0, Some(20.0)).unwrap();
        assert_eq!(plan.width_mm(), 20.0);
        assert_eq!(plan.height_mm(), 20.0);
        assert!((plan.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spacing_grows_the_box() {
        let dies = [square(10.0), square(10.0)];
        let no_gap = shelf_pack(&dies, 0.0, Some(25.0)).unwrap();
        let gap = shelf_pack(&dies, 1.0, Some(25.0)).unwrap();
        assert!(gap.area().mm2() > no_gap.area().mm2());
    }

    #[test]
    fn no_overlaps_ever() {
        let dies = [
            DieFootprint::new(12.0, 8.0).unwrap(),
            DieFootprint::new(6.0, 14.0).unwrap(),
            square(10.0),
            DieFootprint::new(20.0, 4.0).unwrap(),
            square(5.0),
        ];
        let plan = shelf_pack(&dies, 0.5, None).unwrap();
        for (i, a) in plan.placements().iter().enumerate() {
            for b in plan.placements().iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn invalid_inputs() {
        assert!(shelf_pack(&[], 0.5, None).is_err());
        assert!(shelf_pack(&[square(10.0)], -1.0, None).is_err());
        assert!(shelf_pack(&[square(10.0)], 0.0, Some(5.0)).is_err());
    }

    #[test]
    fn epyc_like_interposer_estimate() {
        // 8 CCDs (8.5 × 8.7 mm) + 1 IOD (30 × 14 mm): the bounding box must
        // exceed the silicon but stay within ~2× of it.
        let mut dies = vec![DieFootprint::new(30.0, 14.0).unwrap()];
        dies.extend(std::iter::repeat_n(DieFootprint::new(8.5, 8.7).unwrap(), 8));
        let silicon: f64 = dies.iter().map(|d| d.area().mm2()).sum();
        let estimate = interposer_area_estimate(&dies, 1.0).unwrap();
        assert!(estimate.mm2() > silicon);
        assert!(
            estimate.mm2() < 2.0 * silicon,
            "estimate {estimate} vs silicon {silicon}"
        );
    }

    proptest! {
        #[test]
        fn bounding_box_contains_all_dies(
            sides in proptest::collection::vec(2.0f64..30.0, 1..12),
            spacing in 0.0f64..2.0,
        ) {
            let dies: Vec<DieFootprint> = sides.iter().map(|&s| square(s)).collect();
            let plan = shelf_pack(&dies, spacing, None).unwrap();
            for p in plan.placements() {
                prop_assert!(p.x_mm >= -1e-9 && p.y_mm >= -1e-9);
                prop_assert!(p.right_mm() <= plan.width_mm() + 1e-9);
                prop_assert!(p.top_mm() <= plan.height_mm() + 1e-9);
            }
            // Utilization is bounded and the box is at least the silicon.
            let silicon: f64 = sides.iter().map(|s| s * s).sum();
            prop_assert!(plan.area().mm2() + 1e-9 >= silicon);
            prop_assert!(plan.utilization() <= 1.0 + 1e-9);
        }

        #[test]
        fn placement_count_preserved(
            sides in proptest::collection::vec(2.0f64..30.0, 1..15),
        ) {
            let dies: Vec<DieFootprint> = sides.iter().map(|&s| square(s)).collect();
            let plan = shelf_pack(&dies, 0.5, None).unwrap();
            prop_assert_eq!(plan.placements().len(), dies.len());
        }
    }
}
