use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_model::{re_cost_sized, AssemblyFlow, DiePlacement, ReCostBreakdown};
use actuary_tech::{IntegrationKind, TechLibrary};
use actuary_units::{Area, Quantity};

use crate::chip::Chip;
use crate::error::ArchError;

/// One packaged VLSI system: an integration scheme carrying chips at a
/// production quantity (the `SoC_j` / `MCM_j` of Eq. (3)).
///
/// Systems are assembled with [`System::builder`]. A system may reference a
/// named shared *package design* (`package_design`); systems sharing the
/// same design split its NRE and the smaller members pay the RE of the
/// oversized package (§5.1's package-reuse trade-off).
///
/// # Examples
///
/// ```
/// use actuary_arch::{Chip, Module, System};
/// use actuary_tech::{IntegrationKind, TechLibrary};
/// use actuary_units::{Area, Quantity};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let chiplet = Chip::chiplet(
///     "ccd",
///     "7nm",
///     vec![Module::new("cores", "7nm", Area::from_mm2(180.0)?)],
/// );
/// let system = System::builder("2x", IntegrationKind::Mcm)
///     .chip(chiplet, 2)
///     .quantity(Quantity::new(500_000))
///     .build()?;
/// assert_eq!(system.chip_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    name: String,
    integration: IntegrationKind,
    chips: Vec<(Chip, u32)>,
    quantity: Quantity,
    package_design: Option<String>,
}

impl System {
    /// Starts building a system.
    pub fn builder(name: impl Into<String>, integration: IntegrationKind) -> SystemBuilder {
        SystemBuilder {
            name: name.into(),
            integration,
            chips: Vec::new(),
            quantity: Quantity::new(1),
            package_design: None,
        }
    }

    /// The system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The integration scheme.
    pub fn integration(&self) -> IntegrationKind {
        self.integration
    }

    /// The chip groups `(chip, count)` in the package.
    pub fn chips(&self) -> &[(Chip, u32)] {
        &self.chips
    }

    /// Total number of dies in the package.
    pub fn chip_count(&self) -> u32 {
        self.chips.iter().map(|(_, n)| *n).sum()
    }

    /// Production quantity.
    pub fn quantity(&self) -> Quantity {
        self.quantity
    }

    /// Name of the shared package design, if any.
    pub fn package_design(&self) -> Option<&str> {
        self.package_design.as_deref()
    }

    /// Total silicon area carried by the package.
    ///
    /// # Errors
    ///
    /// Propagates chip-level errors (unknown nodes, node mismatches).
    pub fn total_silicon(&self, lib: &TechLibrary) -> Result<Area, ArchError> {
        let mut total = Area::ZERO;
        for (chip, count) in &self.chips {
            total += chip.die_area(lib)? * *count as f64;
        }
        Ok(total)
    }

    /// Total functional module area (the paper's x-axis in Figure 4).
    pub fn module_area(&self) -> Area {
        self.chips
            .iter()
            .map(|(c, n)| c.module_area() * *n as f64)
            .sum()
    }

    /// Per-unit RE cost breakdown (§3.2), optionally sizing the package for
    /// a reused design's silicon capacity.
    ///
    /// # Errors
    ///
    /// Propagates technology-lookup and cost-engine errors.
    pub fn re_cost(
        &self,
        lib: &TechLibrary,
        flow: AssemblyFlow,
        package_silicon: Option<Area>,
    ) -> Result<ReCostBreakdown, ArchError> {
        let packaging = lib.packaging(self.integration)?;
        let mut placements = Vec::with_capacity(self.chips.len());
        for (chip, count) in &self.chips {
            let node = lib.node(chip.node().as_str())?;
            placements.push(DiePlacement::new(node, chip.die_area(lib)?, *count));
        }
        Ok(re_cost_sized(
            &placements,
            packaging,
            flow,
            package_silicon,
        )?)
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} × {} dies, qty {}]",
            self.name,
            self.integration,
            self.chip_count(),
            self.quantity
        )
    }
}

/// Builder for [`System`] (see C-BUILDER).
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    name: String,
    integration: IntegrationKind,
    chips: Vec<(Chip, u32)>,
    quantity: Quantity,
    package_design: Option<String>,
}

impl SystemBuilder {
    /// Adds `count` instances of a chip to the package.
    pub fn chip(mut self, chip: Chip, count: u32) -> Self {
        self.chips.push((chip, count));
        self
    }

    /// Sets the production quantity (default 1).
    pub fn quantity(mut self, quantity: Quantity) -> Self {
        self.quantity = quantity;
        self
    }

    /// Joins a named shared package design (package reuse, §5.1).
    pub fn package_design(mut self, name: impl Into<String>) -> Self {
        self.package_design = Some(name.into());
        self
    }

    /// Finalizes the system.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidArchitecture`] if the system has no
    /// chips, a zero chip count, a zero quantity, mixes chiplets with
    /// monolithic dies, or puts several dies in a SoC package.
    pub fn build(self) -> Result<System, ArchError> {
        if self.chips.is_empty() {
            return Err(ArchError::InvalidArchitecture {
                reason: format!("system {} has no chips", self.name),
            });
        }
        if self.chips.iter().any(|(_, n)| *n == 0) {
            return Err(ArchError::InvalidArchitecture {
                reason: format!("system {} has a chip with zero count", self.name),
            });
        }
        if self.quantity.is_zero() {
            return Err(ArchError::InvalidArchitecture {
                reason: format!("system {} has zero production quantity", self.name),
            });
        }
        let total: u32 = self.chips.iter().map(|(_, n)| *n).sum();
        if !self.integration.is_multi_chip() && total != 1 {
            return Err(ArchError::InvalidArchitecture {
                reason: format!(
                    "system {} uses a SoC package but carries {total} dies",
                    self.name
                ),
            });
        }
        if self.integration.is_multi_chip() {
            if let Some((chip, _)) = self.chips.iter().find(|(c, _)| !c.is_chiplet()) {
                return Err(ArchError::InvalidArchitecture {
                    reason: format!(
                        "system {} integrates multiple chips but {} has no D2D interface",
                        self.name,
                        chip.name()
                    ),
                });
            }
        }
        Ok(System {
            name: self.name,
            integration: self.integration,
            chips: self.chips,
            quantity: self.quantity,
            package_design: self.package_design,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn chiplet(name: &str, mm2: f64) -> Chip {
        Chip::chiplet(
            name,
            "7nm",
            vec![Module::new(format!("{name}-m"), "7nm", area(mm2))],
        )
    }

    #[test]
    fn builder_validates() {
        // No chips.
        assert!(System::builder("s", IntegrationKind::Mcm).build().is_err());
        // Zero count.
        assert!(System::builder("s", IntegrationKind::Mcm)
            .chip(chiplet("c", 100.0), 0)
            .build()
            .is_err());
        // Zero quantity.
        assert!(System::builder("s", IntegrationKind::Mcm)
            .chip(chiplet("c", 100.0), 1)
            .quantity(Quantity::ZERO)
            .build()
            .is_err());
        // SoC with two dies.
        let soc_die = Chip::monolithic("soc", "7nm", vec![Module::new("m", "7nm", area(100.0))]);
        assert!(System::builder("s", IntegrationKind::Soc)
            .chip(soc_die.clone(), 2)
            .build()
            .is_err());
        // Monolithic die in an MCM with 2 dies: no D2D → rejected.
        assert!(System::builder("s", IntegrationKind::Mcm)
            .chip(soc_die.clone(), 2)
            .build()
            .is_err());
        // Valid SoC.
        assert!(System::builder("s", IntegrationKind::Soc)
            .chip(soc_die, 1)
            .quantity(Quantity::new(1))
            .build()
            .is_ok());
    }

    #[test]
    fn silicon_accounting() {
        let lib = lib();
        let sys = System::builder("2x", IntegrationKind::Mcm)
            .chip(chiplet("c", 90.0), 2)
            .quantity(Quantity::new(500_000))
            .build()
            .unwrap();
        assert_eq!(sys.module_area().mm2(), 180.0);
        assert!((sys.total_silicon(&lib).unwrap().mm2() - 200.0).abs() < 1e-9);
        assert_eq!(sys.chip_count(), 2);
    }

    #[test]
    fn re_cost_runs_and_is_positive() {
        let lib = lib();
        let sys = System::builder("2x", IntegrationKind::Mcm)
            .chip(chiplet("c", 180.0), 2)
            .quantity(Quantity::new(500_000))
            .build()
            .unwrap();
        let b = sys.re_cost(&lib, AssemblyFlow::ChipLast, None).unwrap();
        assert!(b.total().usd() > 0.0);
        assert!(b.is_non_negative());
    }

    #[test]
    fn reused_oversized_package_costs_more() {
        let lib = lib();
        let small = System::builder("1x", IntegrationKind::Mcm)
            .chip(chiplet("c", 180.0), 1)
            .quantity(Quantity::new(500_000))
            .build()
            .unwrap();
        let own = small.re_cost(&lib, AssemblyFlow::ChipLast, None).unwrap();
        let reused = small
            .re_cost(&lib, AssemblyFlow::ChipLast, Some(area(800.0)))
            .unwrap();
        assert!(
            reused.raw_package > own.raw_package,
            "the 4x-sized substrate must cost more"
        );
        assert_eq!(reused.raw_chips, own.raw_chips);
    }

    #[test]
    fn display() {
        let sys = System::builder("quad", IntegrationKind::TwoPointFiveD)
            .chip(chiplet("c", 100.0), 4)
            .quantity(Quantity::new(500_000))
            .build()
            .unwrap();
        assert_eq!(sys.to_string(), "quad [2.5D × 4 dies, qty 500,000]");
    }
}
