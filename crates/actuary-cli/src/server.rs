//! `actuary serve` — a long-running process answering POSTed scenario
//! documents with chunk-streamed CSV artifacts over HTTP/1.1.
//!
//! The server is hand-rolled on `std::net::TcpListener` (no new
//! dependencies): a bounded pool of worker threads pulls accepted
//! connections from a rendezvous channel, parses a minimal HTTP/1.1
//! request, and answers:
//!
//! | method | path       | body          | response |
//! |--------|------------|---------------|----------|
//! | `POST` | `/run`     | scenario TOML | `200`, chunked `text/csv`: every artifact of the run, in order |
//! | `GET`  | `/healthz` | —             | `200 ok` |
//!
//! A served scenario goes through exactly the same `Scenario::run` +
//! [`ScenarioRun::artifacts`](actuary_scenario::ScenarioRun::artifacts)
//! path as `actuary run`, so the streamed body is byte-identical to
//! `actuary run FILE --csv` — zero new model code. Malformed TOML answers
//! `400` with the parser's line:column diagnostic in the body; a scenario
//! that parses but fails in the engine answers `422`; oversized bodies
//! answer `413`. All model work happens *before* the `200` header is
//! written, so a success status never precedes a failure.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use actuary_dse::refine::ExploreMode;
use actuary_report::IoSink;
use actuary_scenario::{Job, Scenario};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a POSTed scenario document.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Target payload size of one response chunk.
const CHUNK_BYTES: usize = 8 * 1024;
/// Upper bound on one served explore job's grid, in cells. A few KB of
/// TOML can request a combinatorially huge grid (five 2,000-entry axes =
/// 3.2 × 10¹⁶ cells), so the body-size cap alone does not bound the
/// server's work; `actuary run` stays uncapped — there the operator wrote
/// the file.
const MAX_SERVED_CELLS: u128 = 1_000_000;
/// Upper bound for `mode = "refine"` explore jobs. Refinement evaluates a
/// stride-sampled subgrid plus the cells near winner flips and front
/// changes, so the served work scales with the *structure* of the space,
/// not its cell count — grids up to 10⁸ cells stay answerable.
const MAX_SERVED_CELLS_REFINE: u128 = 100_000_000;

/// Binds `addr` and serves forever (until the process is killed).
///
/// `engine_threads` is handed to `Scenario::run` per request (`0` = all
/// hardware threads); `workers` bounds the handler pool — requests beyond
/// it queue in the channel and the OS accept backlog instead of spawning
/// unbounded threads.
///
/// # Errors
///
/// Returns a message when the address cannot be bound; per-connection
/// errors are answered over HTTP and never take the server down.
pub fn serve(addr: &str, engine_threads: usize, workers: usize) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the bound address: {e}"))?;
    // The address line is the startup handshake: tests (and scripts) bind
    // port 0 and read the chosen port from it, so flush before serving.
    println!(
        "actuary serve: listening on http://{local} ({workers} worker(s); POST /run, GET /healthz)"
    );
    io::stdout().flush().map_err(|e| e.to_string())?;

    let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers);
    let rx = Arc::new(Mutex::new(rx));
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        std::thread::spawn(move || loop {
            // Hold the lock only to pull the next connection, not to
            // serve it — the pool drains the queue concurrently.
            let next = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => break,
            };
            match next {
                Ok(stream) => {
                    // A panicking request must cost at most its own
                    // connection, never a pool slot — an uncaught panic
                    // here would silently shrink the pool until the
                    // server stops answering while still accepting.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(stream, engine_threads);
                    }));
                    if caught.is_err() {
                        eprintln!("actuary serve: a request handler panicked (connection dropped)");
                    }
                }
                Err(_) => break,
            }
        });
    }
    for stream in listener.incoming() {
        match stream {
            Ok(s) => {
                if tx.send(s).is_err() {
                    break;
                }
            }
            // A failed accept (e.g. the peer reset before we got to it)
            // must not take the server down.
            Err(_) => continue,
        }
    }
    Ok(())
}

/// One parsed request.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// An error that maps onto an HTTP status response.
#[derive(Debug)]
struct HttpError {
    status: u16,
    reason: &'static str,
    message: String,
}

impl HttpError {
    fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            reason: "Bad Request",
            message: message.into(),
        }
    }
}

fn handle_connection(mut stream: TcpStream, engine_threads: usize) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            respond_plain(&mut stream, e.status, e.reason, &e.message);
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => respond_plain(&mut stream, 200, "OK", "ok\n"),
        ("POST", "/run") => respond_run(&mut stream, &request.body, engine_threads),
        ("GET" | "POST", _) => respond_plain(
            &mut stream,
            404,
            "Not Found",
            "no such endpoint (POST /run, GET /healthz)\n",
        ),
        _ => respond_plain(
            &mut stream,
            405,
            "Method Not Allowed",
            "only POST /run and GET /healthz are served\n",
        ),
    }
}

/// Reads and parses one HTTP/1.1 request (head, then a `Content-Length`
/// body for POST, honoring `Expect: 100-continue` the way curl sends it).
fn read_request<S: Read + Write>(stream: &mut S) -> Result<Request, HttpError> {
    let io_err = |e: io::Error| HttpError::bad_request(format!("request read failed: {e}\n"));
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 431,
                reason: "Request Header Fields Too Large",
                message: format!("request heads are capped at {MAX_HEAD_BYTES} bytes\n"),
            });
        }
        let n = stream.read(&mut tmp).map_err(io_err)?;
        if n == 0 {
            return Err(HttpError::bad_request("truncated request head\n"));
        }
        buf.extend_from_slice(&tmp[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad_request(format!(
            "malformed request line {request_line:?}\n"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported protocol {version:?}\n"
        )));
    }
    let mut content_length: Option<usize> = None;
    let mut expect_continue = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse().map_err(|_| {
                HttpError::bad_request(format!("invalid Content-Length {value:?}\n"))
            })?);
        } else if name.trim().eq_ignore_ascii_case("expect")
            && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        }
    }

    let mut body = buf[head_end + 4..].to_vec();
    if method == "POST" {
        let length = content_length.ok_or(HttpError {
            status: 411,
            reason: "Length Required",
            message: "POST needs a Content-Length\n".to_string(),
        })?;
        if length > MAX_BODY_BYTES {
            return Err(HttpError {
                status: 413,
                reason: "Content Too Large",
                message: format!("scenario documents are capped at {MAX_BODY_BYTES} bytes\n"),
            });
        }
        if expect_continue && body.len() < length {
            // curl holds bodies over ~1 KiB until the interim response.
            stream
                .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                .map_err(io_err)?;
            stream.flush().map_err(io_err)?;
        }
        while body.len() < length {
            let n = stream.read(&mut tmp).map_err(io_err)?;
            if n == 0 {
                return Err(HttpError::bad_request("truncated request body\n"));
            }
            body.extend_from_slice(&tmp[..n]);
        }
        body.truncate(length);
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// First index of `needle` in `haystack`.
fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Writes a complete fixed-length plain-text response.
fn respond_plain<S: Write>(stream: &mut S, status: u16, reason: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Parses, runs and chunk-streams one scenario document.
fn respond_run<S: Write>(stream: &mut S, body: &[u8], engine_threads: usize) {
    let Ok(text) = std::str::from_utf8(body) else {
        respond_plain(
            stream,
            400,
            "Bad Request",
            "scenario documents must be UTF-8\n",
        );
        return;
    };
    let scenario = match Scenario::from_toml(text) {
        Ok(s) => s,
        Err(e) => {
            // The diagnostic names the offending line and column.
            respond_plain(
                stream,
                400,
                "Bad Request",
                &format!("scenario error: {e}\n"),
            );
            return;
        }
    };
    if let Err(message) = check_served_grid_bound(&scenario) {
        respond_plain(stream, 422, "Unprocessable Content", &message);
        return;
    }
    let run = match scenario.run(engine_threads) {
        Ok(r) => r,
        Err(e) => {
            respond_plain(
                stream,
                422,
                "Unprocessable Content",
                &format!("scenario error: {e}\n"),
            );
            return;
        }
    };
    // All model work is done; from here on only serialization can fail,
    // and a dropped client simply truncates the chunk stream (the missing
    // terminal chunk marks the body incomplete).
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/csv; charset=utf-8\r\n\
                Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let mut chunked = ChunkedWriter::new(stream);
    let mut sink = IoSink::new(&mut chunked);
    for artifact in run.artifacts() {
        if artifact.write_csv_to(&mut sink).is_err() {
            return;
        }
    }
    drop(sink);
    let _ = chunked.finish();
}

/// Rejects explore jobs whose grid exceeds [`MAX_SERVED_CELLS`]
/// ([`MAX_SERVED_CELLS_REFINE`] for `mode = "refine"` jobs), using an
/// overflow-proof u128 product (the engine's own `len()` would wrap in
/// release builds long before the bound is reached).
fn check_served_grid_bound(scenario: &Scenario) -> Result<(), String> {
    for job in &scenario.jobs {
        let Job::Explore(explore) = job else {
            continue;
        };
        let space = &explore.space;
        let cells = [
            space.nodes.len(),
            space.areas_mm2.len(),
            space.quantities.len(),
            space.integrations.len(),
            space.chiplet_counts.len(),
            space.flows.len(),
            space.scheme_variants().len(),
        ]
        .iter()
        .try_fold(1u128, |product, &axis| product.checked_mul(axis as u128))
        .unwrap_or(u128::MAX);
        let cap = match explore.mode {
            ExploreMode::Exhaustive => MAX_SERVED_CELLS,
            ExploreMode::Refine => MAX_SERVED_CELLS_REFINE,
        };
        if cells > cap {
            return Err(format!(
                "scenario error: explore job `{}` asks for {cells} grid cells; served \
                 {} requests are capped at {cap} cells (run it locally with \
                 `actuary run` for unbounded grids)\n",
                explore.name, explore.mode,
            ));
        }
    }
    Ok(())
}

/// Frames writes as HTTP/1.1 chunked transfer encoding, coalescing small
/// writes (one CSV row each) into [`CHUNK_BYTES`]-sized chunks.
struct ChunkedWriter<W: Write> {
    inner: W,
    buffer: Vec<u8>,
}

impl<W: Write> ChunkedWriter<W> {
    fn new(inner: W) -> Self {
        ChunkedWriter {
            inner,
            buffer: Vec::with_capacity(CHUNK_BYTES),
        }
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", self.buffer.len())?;
        self.inner.write_all(&self.buffer)?;
        self.inner.write_all(b"\r\n")?;
        self.buffer.clear();
        Ok(())
    }

    /// Flushes the tail and writes the terminal chunk.
    fn finish(mut self) -> io::Result<()> {
        self.flush_chunk()?;
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buffer.extend_from_slice(buf);
        if self.buffer.len() >= CHUNK_BYTES {
            self.flush_chunk()?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_chunk()?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory duplex stream: reads deliver the queued segments one
    /// `read` call each (so a body can arrive *after* the head, like on a
    /// socket), writes are recorded.
    struct Fake {
        segments: std::collections::VecDeque<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Fake {
        fn new(input: &[u8]) -> Self {
            Fake::segmented(&[input])
        }

        fn segmented(segments: &[&[u8]]) -> Self {
            Fake {
                segments: segments.iter().map(|s| s.to_vec()).collect(),
                output: Vec::new(),
            }
        }
    }

    impl Read for Fake {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let Some(mut segment) = self.segments.pop_front() else {
                return Ok(0);
            };
            let n = segment.len().min(buf.len());
            buf[..n].copy_from_slice(&segment[..n]);
            if n < segment.len() {
                self.segments.push_front(segment.split_off(n));
            }
            Ok(n)
        }
    }

    impl Write for Fake {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_a_post_with_body() {
        let mut fake =
            Fake::new(b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello");
        let r = read_request(&mut fake).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/run");
        assert_eq!(r.body, b"hello");
        assert!(fake.output.is_empty(), "no interim response without Expect");
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response() {
        // curl's behavior: the body is held back until the interim
        // response, so it arrives in a later packet than the head.
        let mut fake = Fake::segmented(&[
            b"POST /run HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n",
            b"ok",
        ]);
        let r = read_request(&mut fake).unwrap();
        assert_eq!(r.body, b"ok");
        assert_eq!(fake.output, b"HTTP/1.1 100 Continue\r\n\r\n");

        // A client that sent the body anyway gets no interim response.
        let mut eager =
            Fake::new(b"POST /run HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\nok");
        let r = read_request(&mut eager).unwrap();
        assert_eq!(r.body, b"ok");
        assert!(eager.output.is_empty());
    }

    #[test]
    fn missing_length_and_bad_request_lines_are_4xx() {
        let mut fake = Fake::new(b"POST /run HTTP/1.1\r\nHost: x\r\n\r\n");
        let err = read_request(&mut fake).unwrap_err();
        assert_eq!(err.status, 411);

        let mut fake = Fake::new(b"nonsense\r\n\r\n");
        let err = read_request(&mut fake).unwrap_err();
        assert_eq!(err.status, 400);

        let mut fake = Fake::new(b"GET / SPDY/9\r\n\r\n");
        let err = read_request(&mut fake).unwrap_err();
        assert_eq!(err.status, 400);

        let mut fake = Fake::new(
            format!(
                "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        let err = read_request(&mut fake).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn chunked_framing_is_decodable_and_terminated() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::new(&mut out);
        w.write_all(b"a,b\n").unwrap();
        w.write_all(b"1,2\n").unwrap();
        w.finish().unwrap();
        // One coalesced 8-byte chunk plus the terminal chunk.
        assert_eq!(out, b"8\r\na,b\n1,2\n\r\n0\r\n\r\n");
    }

    #[test]
    fn large_payloads_split_into_multiple_chunks() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::new(&mut out);
        let row = vec![b'x'; CHUNK_BYTES / 2 + 1];
        w.write_all(&row).unwrap();
        w.write_all(&row).unwrap();
        w.write_all(b"tail").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.ends_with("4\r\ntail\r\n0\r\n\r\n"), "{text}");
    }

    #[test]
    fn respond_run_streams_csv_or_diagnoses() {
        let mut fake = Fake::new(b"");
        respond_run(&mut fake, b"name = \"x\"\nquanttiy = 1\n", 1);
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
        assert!(text.contains("line 2, column 1"), "{text}");

        let mut fake = Fake::new(b"");
        let scenario = concat!(
            "name = \"t\"\n",
            "[[yield]]\n",
            "name = \"y\"\n",
            "techs = [\"7nm\"]\n",
            "areas_mm2 = [100]\n",
        );
        respond_run(&mut fake, scenario.as_bytes(), 1);
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(text.contains("job,tech,area_mm2"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text}");
    }

    #[test]
    fn combinatorially_huge_grids_are_refused_before_any_work() {
        // A few hundred bytes of TOML requesting > 10¹⁰ cells: the server
        // must answer 422 naming the cap instead of expanding the grid
        // (this test would hang or abort if evaluation started).
        let axis: Vec<String> = (1..=500).map(|i| format!("{}.0", i * 2)).collect();
        let scenario = format!(
            concat!(
                "name = \"huge\"\n",
                "[explore]\n",
                "nodes = [\"7nm\", \"5nm\", \"14nm\"]\n",
                "areas_mm2 = [{areas}]\n",
                "quantities = [{quantities}]\n",
                "chiplets = [1, 2, 3, 4, 5]\n",
            ),
            areas = axis.join(", "),
            quantities = (1..=500)
                .map(|i| (i * 1000).to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
        let mut fake = Fake::new(b"");
        respond_run(&mut fake, scenario.as_bytes(), 1);
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 422 "), "{text}");
        assert!(text.contains("capped at 1000000 cells"), "{text}");
    }

    /// Builds a one-job explore scenario with `areas × quantities` grid
    /// cells (single node, SoC only, one chiplet count) in the given mode.
    fn grid_scenario(mode: &str, areas: usize, quantities: usize) -> Scenario {
        let area_axis: Vec<String> = (1..=areas).map(|i| format!("{i}.0")).collect();
        let quantity_axis: Vec<String> = (1..=quantities).map(|i| (i * 1000).to_string()).collect();
        let text = format!(
            concat!(
                "name = \"bound\"\n",
                "[explore]\n",
                "mode = \"{mode}\"\n",
                "nodes = [\"7nm\"]\n",
                "areas_mm2 = [{areas}]\n",
                "quantities = [{quantities}]\n",
                "integrations = [\"soc\"]\n",
                "chiplets = [1]\n",
            ),
            mode = mode,
            areas = area_axis.join(", "),
            quantities = quantity_axis.join(", "),
        );
        Scenario::from_toml(&text).unwrap()
    }

    #[test]
    fn refine_mode_raises_the_served_grid_cap_to_one_hundred_million() {
        // 2,000 × 2,000 = 4 × 10⁶ cells: over the exhaustive cap, under
        // the refine cap. The bound check (not a full run — that is the
        // engine's job) must let the refine job through.
        assert!(check_served_grid_bound(&grid_scenario("refine", 2_000, 2_000)).is_ok());
        let refused = check_served_grid_bound(&grid_scenario("exhaustive", 2_000, 2_000));
        let message = refused.unwrap_err();
        assert!(message.contains("capped at 1000000 cells"), "{message}");
        assert!(message.contains("exhaustive"), "{message}");
    }

    #[test]
    fn even_refine_mode_grids_are_bounded() {
        // 20,000 × 20,000 = 4 × 10⁸ cells exceeds even the refine cap.
        let refused = check_served_grid_bound(&grid_scenario("refine", 20_000, 20_000));
        let message = refused.unwrap_err();
        assert!(message.contains("capped at 100000000 cells"), "{message}");
        assert!(message.contains("refine"), "{message}");
    }
}
