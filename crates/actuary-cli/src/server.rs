//! `actuary serve` — a long-running process answering POSTed scenario
//! documents with chunk-streamed artifacts over HTTP/1.1.
//!
//! The server is hand-rolled on `std::net::TcpListener` (no new
//! dependencies): a bounded pool of worker threads pulls accepted
//! connections from a rendezvous channel, speaks persistent HTTP/1.1
//! (keep-alive with pipelined request parsing), and answers:
//!
//! | method | path       | body          | response |
//! |--------|------------|---------------|----------|
//! | `POST` | `/run`     | scenario TOML | `200`, chunked: every artifact of the run, in order — `text/csv` by default, JSON lines under `Accept: application/json` |
//! | `GET`  | `/healthz` | —             | `200 ok` |
//! | `GET`  | `/statz`   | —             | `200`, one JSON object of serving counters |
//! | `GET`  | `/metricsz`| —             | `200`, Prometheus text exposition of the same registry |
//!
//! A served scenario goes through exactly the same `Scenario::run` +
//! [`ScenarioRun::artifacts`](actuary_scenario::ScenarioRun::artifacts)
//! path as `actuary run`, so the streamed CSV body is byte-identical to
//! `actuary run FILE --csv` — zero new model code. The JSON-lines
//! encoding is the [`Artifact`] layer's second
//! *sink* over the same row source, not a second serializer. Malformed
//! TOML answers `400` with the parser's line:column diagnostic in the
//! body; a scenario that parses but fails in the engine answers `422`;
//! oversized bodies answer `413`. All model work happens *before* the
//! `200` header is written, so a success status never precedes a failure.
//!
//! # Content-addressed result cache
//!
//! Successful runs are cached under the canonical digest of the *parsed*
//! document ([`actuary_scenario::canon::digest_document`]), so formatting,
//! key order and comments do not defeat the cache — only semantics do. A
//! hit replays the stored run through the same artifact renderers,
//! byte-identical to a cold miss (in either encoding). Below the result
//! cache, a [`SharedCoreCache`] reuses the expensive quantity-independent
//! core evaluations across *overlapping* (not just identical) requests,
//! keyed by the canonical digest of the library portion of the document.
//! Hit/miss/eviction counters for both layers are served on `GET /statz`.
//!
//! # Observability
//!
//! Every instrument lives in one per-server [`actuary_obs::Registry`]:
//! request counters, per-request latency/size histograms (labeled by
//! method, route and status), and collector callbacks polling the two
//! cache layers. `GET /metricsz` renders that registry (merged with the
//! process-global one, where the engine's phase spans land) in
//! Prometheus text exposition format, and `GET /statz` is a JSON view
//! over the *same snapshot type* — the two endpoints cannot drift.
//! Each served request also emits one `http.request` access-log event
//! through [`actuary_obs::log`] (`--log-format text|json`,
//! `--log-level`). Observability is off the result path: artifact
//! bytes are asserted identical with metrics enabled (see the
//! `serve_obs` integration test), and all log output goes to stderr —
//! stdout stays reserved for the handshake.
//!
//! # Backpressure and shutdown
//!
//! Per-client-IP admission happens before any work: an optional token-
//! bucket request rate and an optional concurrent-request cap, both
//! answering `429` with a `Retry-After` header when exceeded. When every
//! worker is busy, accepted connections queue in the dispatch channel and
//! the OS backlog (never dropped), and a rate-limited one-line note lands
//! on stderr so operators can tell server saturation from client
//! slowness. `SIGTERM`/`SIGINT` stop the accept loop, drain in-flight and
//! queued requests to completion (responses carry `Connection: close`),
//! then exit cleanly.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{IpAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::Duration;

use actuary_dse::portfolio::SharedCoreCache;
use actuary_dse::refine::ExploreMode;
use actuary_obs::clock::{self, Stopwatch, Tick};
use actuary_obs::log::{self, Format, Level, RateLimited};
use actuary_obs::metrics::{LATENCY_SECONDS, SIZE_BYTES};
use actuary_obs::{expo, Counter, Registry};
use actuary_report::{Artifact, IoSink};
use actuary_scenario::canon::{digest_document, library_digest};
use actuary_scenario::toml::parse as parse_toml;
use actuary_scenario::{Job, Scenario, ScenarioRun, StreamSink};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a POSTed scenario document.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Target payload size of one response chunk.
const CHUNK_BYTES: usize = 8 * 1024;
/// Upper bound on requests served over one keep-alive connection; the
/// 1001st answer says `Connection: close` so no client monopolizes a
/// worker forever.
const MAX_KEEPALIVE_REQUESTS: usize = 1000;
/// Seconds an idle keep-alive connection may sit between requests before
/// the worker reclaims itself (also the timeout between body segments).
const IDLE_READ_SECS: u64 = 5;
/// Per-client entries the admission governor tracks before it prunes
/// idle buckets.
const MAX_TRACKED_CLIENTS: usize = 4096;
/// Upper bound on one served explore job's grid, in cells. A few KB of
/// TOML can request a combinatorially huge grid (five 2,000-entry axes =
/// 3.2 × 10¹⁶ cells), so the body-size cap alone does not bound the
/// server's work; `actuary run` stays uncapped — there the operator wrote
/// the file.
const MAX_SERVED_CELLS: u128 = 1_000_000;
/// Upper bound for `mode = "refine"` explore jobs. Refinement evaluates a
/// stride-sampled subgrid plus the cells near winner flips and front
/// changes, so the served work scales with the *structure* of the space,
/// not its cell count — grids up to 10⁸ cells stay answerable.
const MAX_SERVED_CELLS_REFINE: u128 = 100_000_000;

/// Everything `actuary serve` can be configured with; see the flag docs
/// in `main.rs` and `docs/operations.md`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, `host:port` (port `0` = OS-assigned).
    pub addr: String,
    /// Engine threads per request (`0` = all hardware threads).
    pub engine_threads: usize,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Result-cache capacity in cached runs (`0` disables it).
    pub result_cache_entries: usize,
    /// Core-cache capacity in cached core evaluations (`0` disables it).
    pub core_cache_entries: usize,
    /// Per-client-IP sustained request rate per second (`0` = unlimited).
    pub rate_limit: u32,
    /// Per-client-IP concurrent `/run` requests (`0` = unlimited).
    pub max_concurrent: u32,
    /// Minimum severity of emitted log events.
    pub log_level: Level,
    /// Log line encoding, `text` or `json`.
    pub log_format: Format,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:8080".to_string(),
            engine_threads: 0,
            workers: 4,
            result_cache_entries: 16,
            core_cache_entries: 4096,
            rate_limit: 0,
            max_concurrent: 0,
            log_level: Level::Info,
            log_format: Format::Text,
        }
    }
}

/// Binds the address and serves until `SIGTERM`/`SIGINT`, then drains
/// in-flight requests and returns.
///
/// # Errors
///
/// Returns a message when the address cannot be bound or the shutdown
/// handler cannot be registered; per-connection errors are answered over
/// HTTP and never take the server down.
pub fn serve(options: &ServeOptions) -> Result<(), String> {
    log::init(options.log_level, options.log_format);
    let listener = TcpListener::bind(&options.addr)
        .map_err(|e| format!("cannot bind {:?}: {e}", options.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the bound address: {e}"))?;
    // The address line is the startup handshake: tests (and scripts) bind
    // port 0 and read the chosen port from it, so flush before serving.
    println!(
        "actuary serve: listening on http://{local} ({} worker(s); POST /run, GET /healthz, GET /statz, GET /metricsz)",
        options.workers
    );
    io::stdout().flush().map_err(|e| e.to_string())?;

    let state = Arc::new(ServerState::new(options));
    for sig in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
        signal_hook::flag::register(sig, Arc::clone(&state.shutdown))
            .map_err(|e| format!("cannot register the shutdown handler: {e}"))?;
    }
    // Shutdown is a flag poll, so the accept loop must never block in
    // `accept` indefinitely: nonblocking accept + a short sleep.
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure the listener: {e}"))?;

    let (tx, rx) = mpsc::sync_channel::<TcpStream>(options.workers);
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(options.workers);
    for _ in 0..options.workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        workers.push(std::thread::spawn(move || loop {
            // Hold the lock only to pull the next connection, not to
            // serve it — the pool drains the queue concurrently.
            let next = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => break,
            };
            match next {
                Ok(stream) => {
                    // A panicking request must cost at most its own
                    // connection, never a pool slot — an uncaught panic
                    // here would silently shrink the pool until the
                    // server stops answering while still accepting.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(stream, &state);
                    }));
                    if caught.is_err() {
                        log::event(
                            Level::Error,
                            "serve.panic",
                            &[(
                                "note",
                                "request handler panicked; connection dropped".into(),
                            )],
                        );
                    }
                }
                // Channel closed: the accept loop is shutting down and
                // the queue is drained.
                Err(_) => break,
            }
        }));
    }

    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The accepted socket must block normally regardless of
                // the listener's mode.
                let _ = stream.set_nonblocking(false);
                dispatch(stream, &tx, &state);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            // A failed accept (e.g. the peer reset before we got to it)
            // must not take the server down.
            Err(_) => continue,
        }
    }

    // Graceful drain: closing the channel makes every worker finish its
    // current connection (responses during shutdown say `Connection:
    // close`), drain the queue, and exit.
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
    println!("actuary serve: drained in-flight requests, exiting");
    Ok(())
}

/// Hands one accepted connection to the worker pool, emitting a
/// rate-limited (≤ 1 per ~5 s) `serve.saturated` log event when the pool
/// is saturated, then queueing anyway — the backpressure lands on the
/// accept loop and the OS backlog, never on a dropped connection.
fn dispatch(stream: TcpStream, tx: &mpsc::SyncSender<TcpStream>, state: &ServerState) {
    match tx.try_send(stream) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(stream)) => {
            state.metrics.saturation.inc();
            state.saturation_note.emit(
                Level::Warn,
                "serve.saturated",
                &[
                    ("saturated_total", state.metrics.saturation.get().into()),
                    ("hint", "raise --workers if this persists".into()),
                ],
            );
            let _ = tx.send(stream);
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {}
    }
}

/// Everything the workers share: caches, admission control, the metric
/// registry and the shutdown flag.
struct ServerState {
    engine_threads: usize,
    results: Arc<ResultCache>,
    cores: Arc<SharedCoreCache>,
    governor: Governor,
    metrics: Metrics,
    registry: Arc<Registry>,
    saturation_note: RateLimited,
    shutdown: Arc<AtomicBool>,
}

/// The hot-path counters, resolved once at startup so serving a request
/// never takes the registry lock for them.
struct Metrics {
    requests: Arc<Counter>,
    rate_limited: Arc<Counter>,
    saturation: Arc<Counter>,
}

impl ServerState {
    fn new(options: &ServeOptions) -> Self {
        // One registry per server (not the process-global one): unit
        // tests build many servers in one process and each must count
        // from zero. The global registry — engine phase spans — is
        // merged in at render time instead.
        let registry = Arc::new(Registry::new());
        let metrics = Metrics {
            requests: registry.counter(
                "actuary_http_requests_total",
                "Requests parsed and routed, across all endpoints.",
                &[],
            ),
            rate_limited: registry.counter(
                "actuary_http_rate_limited_total",
                "Requests answered 429 by the per-client admission governor.",
                &[],
            ),
            saturation: registry.counter(
                "actuary_worker_saturation_total",
                "Accepted connections that found every worker busy and queued.",
                &[],
            ),
        };
        let results = Arc::new(ResultCache::new(options.result_cache_entries));
        let cores = Arc::new(SharedCoreCache::new(options.core_cache_entries));
        register_cache_metrics(&registry, &results, &cores);
        ServerState {
            engine_threads: options.engine_threads,
            results,
            cores,
            governor: Governor::new(options.rate_limit, options.max_concurrent),
            metrics,
            registry,
            saturation_note: RateLimited::new(5.0),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// A counter family entry: metric name, help text, and the reader
/// plucking that counter out of a cache's stats struct.
type CounterSpec<S> = (&'static str, &'static str, fn(&S) -> u64);

/// Joins both cache layers to the registry via collector callbacks: the
/// caches keep owning their counters, and every snapshot (so both
/// `/statz` and `/metricsz`) polls the live values.
fn register_cache_metrics(
    registry: &Registry,
    results: &Arc<ResultCache>,
    cores: &Arc<SharedCoreCache>,
) {
    let result_counters: [CounterSpec<CacheCounters>; 3] = [
        (
            "actuary_result_cache_hits_total",
            "Result-cache hits.",
            |s| s.hits,
        ),
        (
            "actuary_result_cache_misses_total",
            "Result-cache misses.",
            |s| s.misses,
        ),
        (
            "actuary_result_cache_evictions_total",
            "Result-cache LRU evictions.",
            |s| s.evictions,
        ),
    ];
    for (name, help, read) in result_counters {
        let cache = Arc::clone(results);
        registry.counter_fn(name, help, &[], move || read(&cache.stats()));
    }
    let entries = Arc::clone(results);
    registry.gauge_fn(
        "actuary_result_cache_entries",
        "Cached runs resident in the result cache.",
        &[],
        move || entries.stats().entries as f64,
    );
    let core_counters: [CounterSpec<actuary_dse::portfolio::CoreCacheStats>; 3] = [
        ("actuary_core_cache_hits_total", "Core-cache hits.", |s| {
            s.hits
        }),
        (
            "actuary_core_cache_misses_total",
            "Core-cache misses.",
            |s| s.misses,
        ),
        (
            "actuary_core_cache_evictions_total",
            "Core-cache LRU evictions.",
            |s| s.evictions,
        ),
    ];
    for (name, help, read) in core_counters {
        let cache = Arc::clone(cores);
        registry.counter_fn(name, help, &[], move || read(&cache.stats()));
    }
    let entries = Arc::clone(cores);
    registry.gauge_fn(
        "actuary_core_cache_entries",
        "Core evaluations resident in the shared core cache.",
        &[],
        move || entries.stats().entries as f64,
    );
}

/// Locks a mutex, surviving poisoning: every guarded structure here is
/// plain data that stays coherent even if a panic ever unwound through
/// an update.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// --- Result cache ---------------------------------------------------------

/// LRU cache of successful runs, keyed by the canonical digest of the
/// parsed scenario document. One cached run serves both encodings — the
/// renderers run per response, only the model work is skipped.
struct ResultCache {
    capacity: usize,
    inner: Mutex<ResultCacheInner>,
}

struct ResultCacheInner {
    map: BTreeMap<[u8; 32], (u64, Arc<ScenarioRun>)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// One cache layer's `GET /statz` row.
#[derive(Debug, Clone, Copy)]
struct CacheCounters {
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: usize,
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(ResultCacheInner {
                map: BTreeMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn get(&self, key: [u8; 32]) -> Option<Arc<ScenarioRun>> {
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let hit = inner.map.get_mut(&key).map(|(last_used, run)| {
            *last_used = tick;
            Arc::clone(run)
        });
        match hit {
            Some(run) => {
                inner.hits += 1;
                Some(run)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn put(&self, key: [u8; 32], run: Arc<ScenarioRun>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (tick, run));
        while inner.map.len() > self.capacity {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(key, _)| *key);
            match oldest {
                Some(key) => {
                    inner.map.remove(&key);
                    inner.evictions += 1;
                }
                None => break,
            }
        }
    }

    fn stats(&self) -> CacheCounters {
        let inner = lock(&self.inner);
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

// --- Admission control ----------------------------------------------------

/// Per-client-IP admission: a token bucket for sustained rate (burst up
/// to one second's worth) and a concurrent-request cap. Both off by
/// default; `/healthz` and `/statz` are always exempt.
struct Governor {
    rate_limit: u32,
    max_concurrent: u32,
    clients: Mutex<BTreeMap<IpAddr, ClientBucket>>,
}

struct ClientBucket {
    tokens: f64,
    refilled: Tick,
    active: u32,
}

/// Proof of admission; dropping it releases the concurrency slot.
struct Admission<'a> {
    governor: &'a Governor,
    ip: Option<IpAddr>,
}

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        if let Some(ip) = self.ip {
            let mut clients = lock(&self.governor.clients);
            if let Some(bucket) = clients.get_mut(&ip) {
                bucket.active = bucket.active.saturating_sub(1);
            }
        }
    }
}

impl Governor {
    fn new(rate_limit: u32, max_concurrent: u32) -> Self {
        Governor {
            rate_limit,
            max_concurrent,
            clients: Mutex::new(BTreeMap::new()),
        }
    }

    /// Admits or asks the client to retry after the returned number of
    /// seconds. Connections without a peer address (unit-test streams)
    /// have nothing to key on and are always admitted.
    fn admit(&self, peer: Option<IpAddr>) -> Result<Admission<'_>, u64> {
        if self.rate_limit == 0 && self.max_concurrent == 0 {
            return Ok(Admission {
                governor: self,
                ip: None,
            });
        }
        let Some(ip) = peer else {
            return Ok(Admission {
                governor: self,
                ip: None,
            });
        };
        let mut clients = lock(&self.clients);
        if clients.len() > MAX_TRACKED_CLIENTS {
            // Keep only clients with requests in flight; a pruned heavy
            // client restarts with a full bucket, which under-limits for
            // one second — bounded memory is worth that.
            clients.retain(|_, bucket| bucket.active > 0);
        }
        let now = clock::now();
        let bucket = clients.entry(ip).or_insert_with(|| ClientBucket {
            tokens: f64::from(self.rate_limit.max(1)),
            refilled: now,
            active: 0,
        });
        if self.rate_limit > 0 {
            let rate = f64::from(self.rate_limit);
            let elapsed = now.seconds_since(bucket.refilled);
            bucket.tokens = (bucket.tokens + elapsed * rate).min(rate);
            bucket.refilled = now;
            if bucket.tokens < 1.0 {
                let wait = ((1.0 - bucket.tokens) / rate).ceil().max(1.0);
                return Err(wait as u64);
            }
        }
        if self.max_concurrent > 0 && bucket.active >= self.max_concurrent {
            return Err(1);
        }
        if self.rate_limit > 0 {
            bucket.tokens -= 1.0;
        }
        bucket.active += 1;
        Ok(Admission {
            governor: self,
            ip: Some(ip),
        })
    }
}

// --- Connection handling --------------------------------------------------

fn handle_connection(stream: TcpStream, state: &ServerState) {
    // A response is written as head + chunks before the next read; with
    // Nagle on, that write-write-read pattern stalls ~40 ms per request
    // on delayed ACKs, dwarfing a cache hit.
    let _ = stream.set_nodelay(true);
    // The read timeout doubles as the keep-alive idle timeout: a worker
    // blocked on a silent client reclaims itself after this long.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(IDLE_READ_SECS)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let peer = stream.peer_addr().ok().map(|addr| addr.ip());
    let mut stream = stream;
    serve_connection(&mut stream, peer, state);
}

/// Serves one connection: a keep-alive loop over pipelined requests.
/// Generic over the stream so the unit tests drive it with an in-memory
/// duplex.
fn serve_connection<S: Read + Write>(stream: &mut S, peer: Option<IpAddr>, state: &ServerState) {
    // Count response bytes at the stream boundary so every handler's
    // output (heads, chunk framing, bodies) lands in one histogram.
    let mut stream = Metered {
        inner: stream,
        written: 0,
    };
    // Bytes read past the previous request (pipelining) wait here.
    let mut buf: Vec<u8> = Vec::new();
    for served in 1..=MAX_KEEPALIVE_REQUESTS {
        let request = match read_request(&mut stream, &mut buf) {
            Ok(Some(request)) => request,
            // Clean close or idle timeout between requests.
            Ok(None) => return,
            Err(e) => {
                // After a read-level error the stream position is
                // unknowable (an unread body would parse as the next
                // head), so the connection always closes.
                respond_plain(&mut stream, e.status, e.reason, &e.message, false);
                return;
            }
        };
        // The stopwatch starts after the request is fully read: idle
        // keep-alive time between requests is the client's, not ours.
        let stopwatch = Stopwatch::start();
        let written_before = stream.written;
        state.metrics.requests.inc();
        let keep = request.keep_alive
            && served < MAX_KEEPALIVE_REQUESTS
            && !state.shutdown.load(Ordering::SeqCst);
        // The query string selects response *delivery* (`?stream=refine`),
        // not the resource; routing happens on the bare path.
        let (path, query) = match request.path.split_once('?') {
            Some((path, query)) => (path, Some(query)),
            None => (request.path.as_str(), None),
        };
        let reply = match (request.method.as_str(), path) {
            ("GET", "/healthz") => {
                Reply::new(200, respond_plain(&mut stream, 200, "OK", "ok\n", keep))
            }
            ("GET", "/statz") => Reply::new(200, respond_statz(&mut stream, state, keep)),
            ("GET", "/metricsz") => Reply::new(200, respond_metricsz(&mut stream, state, keep)),
            ("POST", "/run") => match state.governor.admit(peer) {
                Ok(_admission) => respond_run(&mut stream, &request, query, state, keep),
                Err(retry_after) => {
                    state.metrics.rate_limited.inc();
                    Reply::new(429, respond_rate_limited(&mut stream, retry_after, keep))
                }
            },
            ("GET" | "POST", _) => Reply::new(
                404,
                respond_plain(
                    &mut stream,
                    404,
                    "Not Found",
                    "no such endpoint (POST /run, GET /healthz, GET /statz, GET /metricsz)\n",
                    keep,
                ),
            ),
            _ => Reply::new(
                405,
                respond_plain(
                    &mut stream,
                    405,
                    "Method Not Allowed",
                    "only POST /run, GET /healthz, GET /statz and GET /metricsz are served\n",
                    keep,
                ),
            ),
        };
        record_request(
            state,
            &request,
            reply.status,
            stopwatch.elapsed_seconds(),
            stream.written - written_before,
        );
        if !keep || !reply.usable {
            return;
        }
    }
}

/// What a handler reports back to the keep-alive loop: the status it
/// answered (for metrics and the access log) and whether the connection
/// is still usable.
struct Reply {
    status: u16,
    usable: bool,
}

impl Reply {
    fn new(status: u16, usable: bool) -> Reply {
        Reply { status, usable }
    }
}

/// Counts bytes written through to the inner stream; reads delegate.
struct Metered<'a, S> {
    inner: &'a mut S,
    written: u64,
}

impl<S: Read> Read for Metered<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<S: Write> Write for Metered<'_, S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Bounded label values: anything a client can vary freely (paths,
/// methods) collapses to `other` so metric cardinality stays fixed.
fn route_label(path: &str) -> &'static str {
    let path = path.split_once('?').map_or(path, |(bare, _)| bare);
    match path {
        "/run" => "/run",
        "/healthz" => "/healthz",
        "/statz" => "/statz",
        "/metricsz" => "/metricsz",
        _ => "other",
    }
}

fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        _ => "other",
    }
}

fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        411 => "411",
        413 => "413",
        422 => "422",
        429 => "429",
        431 => "431",
        _ => "other",
    }
}

/// Records one served request into the latency and size histograms and
/// emits its access-log event.
fn record_request(state: &ServerState, request: &Request, status: u16, seconds: f64, bytes: u64) {
    let method = method_label(&request.method);
    let route = route_label(&request.path);
    state
        .registry
        .histogram(
            "actuary_http_request_seconds",
            "Wall time from request fully read to response fully written.",
            &[
                ("method", method),
                ("route", route),
                ("status", status_label(status)),
            ],
            LATENCY_SECONDS,
        )
        .observe(seconds);
    state
        .registry
        .histogram(
            "actuary_http_response_bytes",
            "Response size on the wire, including head and chunk framing.",
            &[("route", route)],
            SIZE_BYTES,
        )
        .observe(bytes as f64);
    if log::enabled(Level::Info) {
        log::event(
            Level::Info,
            "http.request",
            &[
                ("method", method.into()),
                ("route", route.into()),
                ("status", status.into()),
                ("seconds", seconds.into()),
                ("bytes", bytes.into()),
            ],
        );
    }
}

/// One parsed request.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    /// The client's keep-alive wish: `Connection` header if present,
    /// otherwise the HTTP-version default (1.1 keeps, 1.0 closes).
    keep_alive: bool,
    /// `Accept: application/json` selects the JSON-lines encoding.
    accept_json: bool,
}

/// An error that maps onto an HTTP status response.
#[derive(Debug)]
struct HttpError {
    status: u16,
    reason: &'static str,
    message: String,
}

impl HttpError {
    fn bad_request(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            reason: "Bad Request",
            message: message.into(),
        }
    }
}

/// Reads and parses one HTTP/1.1 request (head, then a `Content-Length`
/// body for POST, honoring `Expect: 100-continue` the way curl sends it).
///
/// `buf` persists across calls on one connection: bytes past the parsed
/// request (the next pipelined request) stay buffered for the next call.
/// `Ok(None)` means the client closed (or went idle past the timeout)
/// *between* requests — a normal end of a keep-alive conversation, not an
/// error.
fn read_request<S: Read + Write>(
    stream: &mut S,
    buf: &mut Vec<u8>,
) -> Result<Option<Request>, HttpError> {
    let io_err = |e: io::Error| HttpError::bad_request(format!("request read failed: {e}\n"));
    let is_timeout = |e: &io::Error| {
        matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    };
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_subslice(buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError {
                status: 431,
                reason: "Request Header Fields Too Large",
                message: format!("request heads are capped at {MAX_HEAD_BYTES} bytes\n"),
            });
        }
        match stream.read(&mut tmp) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::bad_request("truncated request head\n"));
            }
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if is_timeout(&e) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::bad_request("timed out mid-request head\n"));
            }
            Err(e) => return Err(io_err(e)),
        }
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad_request(format!(
            "malformed request line {request_line:?}\n"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported protocol {version:?}\n"
        )));
    }
    let mut content_length: Option<usize> = None;
    let mut expect_continue = false;
    let mut connection: Option<String> = None;
    let mut accept_json = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse().map_err(|_| {
                HttpError::bad_request(format!("invalid Content-Length {value:?}\n"))
            })?);
        } else if name.eq_ignore_ascii_case("expect") && value.eq_ignore_ascii_case("100-continue")
        {
            expect_continue = true;
        } else if name.eq_ignore_ascii_case("connection") {
            connection = Some(value.to_ascii_lowercase());
        } else if name.eq_ignore_ascii_case("accept") {
            accept_json = value.to_ascii_lowercase().contains("application/json");
        }
    }
    let keep_alive = match connection.as_deref() {
        Some(value) if value.contains("close") => false,
        Some(value) if value.contains("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };

    // Everything past the head stays in `buf` (body, then any pipelined
    // next request).
    let after_head = buf.split_off(head_end + 4);
    *buf = after_head;
    let mut body = Vec::new();
    if method == "POST" {
        let length = content_length.ok_or(HttpError {
            status: 411,
            reason: "Length Required",
            message: "POST needs a Content-Length\n".to_string(),
        })?;
        if length > MAX_BODY_BYTES {
            return Err(HttpError {
                status: 413,
                reason: "Content Too Large",
                message: format!("scenario documents are capped at {MAX_BODY_BYTES} bytes\n"),
            });
        }
        if expect_continue && buf.len() < length {
            // curl holds bodies over ~1 KiB until the interim response.
            stream
                .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                .map_err(io_err)?;
            stream.flush().map_err(io_err)?;
        }
        while buf.len() < length {
            match stream.read(&mut tmp) {
                Ok(0) => return Err(HttpError::bad_request("truncated request body\n")),
                Ok(n) => buf.extend_from_slice(&tmp[..n]),
                Err(e) if is_timeout(&e) => {
                    return Err(HttpError::bad_request("timed out mid-request body\n"));
                }
                Err(e) => return Err(io_err(e)),
            }
        }
        let after_body = buf.split_off(length);
        body = std::mem::replace(buf, after_body);
    }
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
        accept_json,
    }))
}

/// First index of `needle` in `haystack`.
fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

// --- Responses ------------------------------------------------------------

/// Writes a complete fixed-length response. Returns whether the
/// connection is still usable (all bytes written).
fn respond_head_body<S: Write>(
    stream: &mut S,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &str,
    body: &str,
    keep: bool,
) -> bool {
    let connection = if keep { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n{extra_headers}Connection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).is_ok()
        && stream.write_all(body.as_bytes()).is_ok()
        && stream.flush().is_ok()
}

/// Writes a complete fixed-length plain-text response.
fn respond_plain<S: Write>(
    stream: &mut S,
    status: u16,
    reason: &str,
    body: &str,
    keep: bool,
) -> bool {
    respond_head_body(
        stream,
        status,
        reason,
        "text/plain; charset=utf-8",
        "",
        body,
        keep,
    )
}

/// `429` with the mandated `Retry-After` header.
fn respond_rate_limited<S: Write>(stream: &mut S, retry_after: u64, keep: bool) -> bool {
    respond_head_body(
        stream,
        429,
        "Too Many Requests",
        "text/plain; charset=utf-8",
        &format!("Retry-After: {retry_after}\r\n"),
        &format!("rate limit exceeded; retry in {retry_after}s\n"),
        keep,
    )
}

/// `GET /statz`: the serving counters as one JSON object — a JSON view
/// over the same registry snapshot `/metricsz` renders, so the two
/// endpoints cannot disagree about a value.
fn respond_statz<S: Write>(stream: &mut S, state: &ServerState, keep: bool) -> bool {
    let snapshot = state.registry.snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    let entries = |name: &str| snapshot.gauge(name).unwrap_or(0.0) as u64;
    let body = format!(
        concat!(
            "{{\"requests_total\":{},\"rate_limited_total\":{},\"saturation_total\":{},",
            "\"result_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}},",
            "\"core_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}}}}\n"
        ),
        counter("actuary_http_requests_total"),
        counter("actuary_http_rate_limited_total"),
        counter("actuary_worker_saturation_total"),
        counter("actuary_result_cache_hits_total"),
        counter("actuary_result_cache_misses_total"),
        counter("actuary_result_cache_evictions_total"),
        entries("actuary_result_cache_entries"),
        counter("actuary_core_cache_hits_total"),
        counter("actuary_core_cache_misses_total"),
        counter("actuary_core_cache_evictions_total"),
        entries("actuary_core_cache_entries"),
    );
    respond_head_body(
        stream,
        200,
        "OK",
        "application/json; charset=utf-8",
        "",
        &body,
        keep,
    )
}

/// `GET /metricsz`: the per-server registry merged with the process
/// registry (engine phase spans), in Prometheus text exposition format.
fn respond_metricsz<S: Write>(stream: &mut S, state: &ServerState, keep: bool) -> bool {
    let snapshot = state
        .registry
        .snapshot()
        .merged(Registry::global().snapshot());
    respond_head_body(
        stream,
        200,
        "OK",
        expo::CONTENT_TYPE,
        "",
        &expo::render(&snapshot),
        keep,
    )
}

/// Parses, runs (or replays from cache) and chunk-streams one scenario
/// document. Reports the answered status and whether the connection is
/// still usable. `query` selects delivery: `stream=refine` switches to
/// incremental delivery through [`respond_run_streamed`]; any other
/// non-empty query is rejected, not ignored.
fn respond_run<S: Write>(
    stream: &mut S,
    request: &Request,
    query: Option<&str>,
    state: &ServerState,
    keep: bool,
) -> Reply {
    let streamed = match query {
        None | Some("") => false,
        Some("stream=refine") => true,
        Some(other) => {
            return Reply::new(
                400,
                respond_plain(
                    stream,
                    400,
                    "Bad Request",
                    &format!(
                        "unknown query {other:?} (the only supported query is ?stream=refine)\n"
                    ),
                    keep,
                ),
            );
        }
    };
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Reply::new(
            400,
            respond_plain(
                stream,
                400,
                "Bad Request",
                "scenario documents must be UTF-8\n",
                keep,
            ),
        );
    };
    let doc = match parse_toml(text) {
        Ok(doc) => doc,
        Err(e) => {
            // The diagnostic names the offending line and column.
            return Reply::new(
                400,
                respond_plain(
                    stream,
                    400,
                    "Bad Request",
                    &format!("scenario error: {e}\n"),
                    keep,
                ),
            );
        }
    };
    // Content addressing happens on the *parsed* document: formatting,
    // comments and key order hit the cache; semantic changes miss it.
    // Streamed delivery bypasses the cache *read* — replaying a finished
    // run cannot deliver phases incrementally — but still stores its
    // completed run for later batch requests.
    let digest = digest_document(&doc);
    if !streamed {
        if let Some(run) = state.results.get(digest.bytes()) {
            return Reply::new(
                200,
                stream_artifacts(stream, &run, request.accept_json, keep),
            );
        }
    }
    let scenario = match Scenario::from_doc(&doc) {
        Ok(scenario) => scenario,
        Err(e) => {
            return Reply::new(
                400,
                respond_plain(
                    stream,
                    400,
                    "Bad Request",
                    &format!("scenario error: {e}\n"),
                    keep,
                ),
            );
        }
    };
    if let Err(message) = check_served_grid_bound(&scenario) {
        return Reply::new(
            422,
            respond_plain(stream, 422, "Unprocessable Content", &message, keep),
        );
    }
    let tag = library_digest(&doc).bytes();
    if streamed {
        return respond_run_streamed(
            stream,
            &scenario,
            digest.bytes(),
            tag,
            state,
            request.accept_json,
            keep,
        );
    }
    let run = match scenario.run_shared(state.engine_threads, &state.cores, tag) {
        Ok(run) => Arc::new(run),
        Err(e) => {
            return Reply::new(
                422,
                respond_plain(
                    stream,
                    422,
                    "Unprocessable Content",
                    &format!("scenario error: {e}\n"),
                    keep,
                ),
            );
        }
    };
    state.results.put(digest.bytes(), Arc::clone(&run));
    Reply::new(
        200,
        stream_artifacts(stream, &run, request.accept_json, keep),
    )
}

/// Answers `?stream=refine`: the `200` head goes out *before* the engine
/// runs, and every artifact segment is flushed as its own chunk batch the
/// moment the runner delivers it — a refine-mode grid's coarse segment
/// reaches the client while bisection is still running. The price of
/// immediacy is the error contract: an engine failure after the head
/// cannot change the status, so it truncates the chunked body instead
/// (no terminal `0\r\n\r\n` chunk) and drops the connection. All
/// *schema-level* rejections (parse errors, grid bounds, unknown query)
/// still answer 4xx because they are checked before the head.
#[allow(clippy::too_many_arguments)]
fn respond_run_streamed<S: Write>(
    stream: &mut S,
    scenario: &Scenario,
    digest: [u8; 32],
    tag: [u8; 32],
    state: &ServerState,
    json: bool,
    keep: bool,
) -> Reply {
    let content_type = if json {
        "application/jsonl; charset=utf-8"
    } else {
        "text/csv; charset=utf-8"
    };
    let connection = if keep { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: {connection}\r\n\r\n"
    );
    if stream.write_all(head.as_bytes()).is_err() {
        return Reply::new(200, false);
    }
    let mut sink = HttpStreamSink {
        chunked: ChunkedWriter::new(stream),
        json,
    };
    match scenario.run_streamed_shared(state.engine_threads, &state.cores, tag, &mut sink) {
        Ok(run) => {
            state.results.put(digest, Arc::new(run));
            Reply::new(200, sink.chunked.finish().is_ok())
        }
        Err(_) => Reply::new(200, false),
    }
}

/// Adapts the HTTP chunk stream to the scenario runner's [`StreamSink`]:
/// opening segments carry the header (or JSON-lines metadata object),
/// continuations are rows-only, and every segment is flushed through the
/// chunked framing immediately so phases arrive as they complete rather
/// than when the buffer fills.
struct HttpStreamSink<'a, S: Write> {
    chunked: ChunkedWriter<&'a mut S>,
    json: bool,
}

impl<S: Write> StreamSink for HttpStreamSink<'_, S> {
    fn segment(&mut self, artifact: Artifact<'_>, continuation: bool) -> bool {
        let mut sink = IoSink::new(&mut self.chunked);
        let written = match (self.json, continuation) {
            (false, false) => artifact.write_csv_to(&mut sink),
            (false, true) => artifact.write_csv_rows_to(&mut sink),
            (true, false) => artifact.write_jsonl_to(&mut sink),
            (true, true) => artifact.write_jsonl_rows_to(&mut sink),
        };
        written.is_ok() && self.chunked.flush().is_ok()
    }
}

/// Chunk-streams every artifact of a run in the chosen encoding. Returns
/// whether the connection is still usable — a mid-stream write failure
/// breaks the chunked framing, so the caller must close.
fn stream_artifacts<S: Write>(stream: &mut S, run: &ScenarioRun, json: bool, keep: bool) -> bool {
    let content_type = if json {
        "application/jsonl; charset=utf-8"
    } else {
        "text/csv; charset=utf-8"
    };
    let connection = if keep { "keep-alive" } else { "close" };
    // All model work is done; from here on only serialization can fail,
    // and a dropped client simply truncates the chunk stream (the missing
    // terminal chunk marks the body incomplete).
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: {connection}\r\n\r\n"
    );
    if stream.write_all(head.as_bytes()).is_err() {
        return false;
    }
    let mut chunked = ChunkedWriter::new(stream);
    {
        let mut sink = IoSink::new(&mut chunked);
        for artifact in run.artifacts() {
            let written = if json {
                artifact.write_jsonl_to(&mut sink)
            } else {
                artifact.write_csv_to(&mut sink)
            };
            if written.is_err() {
                return false;
            }
        }
    }
    chunked.finish().is_ok()
}

/// Rejects explore jobs whose grid exceeds [`MAX_SERVED_CELLS`]
/// ([`MAX_SERVED_CELLS_REFINE`] for `mode = "refine"` jobs), using an
/// overflow-proof u128 product (the engine's own `len()` would wrap in
/// release builds long before the bound is reached).
fn check_served_grid_bound(scenario: &Scenario) -> Result<(), String> {
    for job in &scenario.jobs {
        let Job::Explore(explore) = job else {
            continue;
        };
        let space = &explore.space;
        let cells = [
            space.nodes.len(),
            space.areas_mm2.len(),
            space.quantities.len(),
            space.integrations.len(),
            space.chiplet_counts.len(),
            space.flows.len(),
            space.scheme_variants().len(),
        ]
        .iter()
        .try_fold(1u128, |product, &axis| product.checked_mul(axis as u128))
        .unwrap_or(u128::MAX);
        let cap = match explore.mode {
            ExploreMode::Exhaustive => MAX_SERVED_CELLS,
            ExploreMode::Refine => MAX_SERVED_CELLS_REFINE,
        };
        if cells > cap {
            return Err(format!(
                "scenario error: explore job `{}` asks for {cells} grid cells; served \
                 {} requests are capped at {cap} cells (run it locally with \
                 `actuary run` for unbounded grids)\n",
                explore.name, explore.mode,
            ));
        }
    }
    Ok(())
}

/// Frames writes as HTTP/1.1 chunked transfer encoding, coalescing small
/// writes (one CSV row each) into [`CHUNK_BYTES`]-sized chunks.
struct ChunkedWriter<W: Write> {
    inner: W,
    buffer: Vec<u8>,
}

impl<W: Write> ChunkedWriter<W> {
    fn new(inner: W) -> Self {
        ChunkedWriter {
            inner,
            buffer: Vec::with_capacity(CHUNK_BYTES),
        }
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        write!(self.inner, "{:x}\r\n", self.buffer.len())?;
        self.inner.write_all(&self.buffer)?;
        self.inner.write_all(b"\r\n")?;
        self.buffer.clear();
        Ok(())
    }

    /// Flushes the tail and writes the terminal chunk.
    fn finish(mut self) -> io::Result<()> {
        self.flush_chunk()?;
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buffer.extend_from_slice(buf);
        if self.buffer.len() >= CHUNK_BYTES {
            self.flush_chunk()?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_chunk()?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// An in-memory duplex stream: reads deliver the queued segments one
    /// `read` call each (so a body can arrive *after* the head, like on a
    /// socket), writes are recorded.
    struct Fake {
        segments: std::collections::VecDeque<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Fake {
        fn new(input: &[u8]) -> Self {
            Fake::segmented(&[input])
        }

        fn segmented(segments: &[&[u8]]) -> Self {
            Fake {
                segments: segments.iter().map(|s| s.to_vec()).collect(),
                output: Vec::new(),
            }
        }
    }

    impl Read for Fake {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let Some(mut segment) = self.segments.pop_front() else {
                return Ok(0);
            };
            let n = segment.len().min(buf.len());
            buf[..n].copy_from_slice(&segment[..n]);
            if n < segment.len() {
                self.segments.push_front(segment.split_off(n));
            }
            Ok(n)
        }
    }

    impl Write for Fake {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn state() -> ServerState {
        ServerState::new(&ServeOptions::default())
    }

    fn parse_one(fake: &mut Fake) -> Request {
        read_request(fake, &mut Vec::new()).unwrap().unwrap()
    }

    const TINY_SCENARIO: &str = concat!(
        "name = \"t\"\n",
        "[[yield]]\n",
        "name = \"y\"\n",
        "techs = [\"7nm\"]\n",
        "areas_mm2 = [100]\n",
    );

    fn post(body: &str, extra_headers: &str) -> Vec<u8> {
        format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n{extra_headers}\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    /// Splits concatenated keep-alive responses on their status lines.
    fn responses(output: &[u8]) -> Vec<String> {
        let text = String::from_utf8_lossy(output);
        let mut out: Vec<String> = Vec::new();
        for line in text.split_inclusive("\r\n") {
            if line.starts_with("HTTP/1.1 ") && !out.last().is_some_and(|r| r.is_empty()) {
                out.push(String::new());
            }
            if out.is_empty() {
                out.push(String::new());
            }
            if let Some(last) = out.last_mut() {
                last.push_str(line);
            }
        }
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let mut fake =
            Fake::new(b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello");
        let r = parse_one(&mut fake);
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/run");
        assert_eq!(r.body, b"hello");
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(!r.accept_json);
        assert!(fake.output.is_empty(), "no interim response without Expect");
    }

    #[test]
    fn connection_and_accept_headers_steer_keep_alive_and_encoding() {
        let mut fake = Fake::new(
            b"POST /run HTTP/1.1\r\nContent-Length: 2\r\nConnection: close\r\n\
              Accept: application/json\r\n\r\nok",
        );
        let r = parse_one(&mut fake);
        assert!(!r.keep_alive);
        assert!(r.accept_json);

        let mut fake = Fake::new(b"GET /healthz HTTP/1.0\r\n\r\n");
        assert!(!parse_one(&mut fake).keep_alive, "1.0 defaults to close");

        let mut fake = Fake::new(b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(parse_one(&mut fake).keep_alive);
    }

    #[test]
    fn pipelined_requests_stay_buffered_for_the_next_read() {
        let mut fake = Fake::new(
            b"POST /run HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n",
        );
        let mut buf = Vec::new();
        let first = read_request(&mut fake, &mut buf).unwrap().unwrap();
        assert_eq!(first.body, b"hello");
        let second = read_request(&mut fake, &mut buf).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(read_request(&mut fake, &mut buf).unwrap().is_none());
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response() {
        // curl's behavior: the body is held back until the interim
        // response, so it arrives in a later packet than the head.
        let mut fake = Fake::segmented(&[
            b"POST /run HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\n",
            b"ok",
        ]);
        let r = parse_one(&mut fake);
        assert_eq!(r.body, b"ok");
        assert_eq!(fake.output, b"HTTP/1.1 100 Continue\r\n\r\n");

        // A client that sent the body anyway gets no interim response.
        let mut eager =
            Fake::new(b"POST /run HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\nok");
        let r = parse_one(&mut eager);
        assert_eq!(r.body, b"ok");
        assert!(eager.output.is_empty());
    }

    #[test]
    fn missing_length_and_bad_request_lines_are_4xx() {
        let mut fake = Fake::new(b"POST /run HTTP/1.1\r\nHost: x\r\n\r\n");
        let err = read_request(&mut fake, &mut Vec::new()).unwrap_err();
        assert_eq!(err.status, 411);

        let mut fake = Fake::new(b"nonsense\r\n\r\n");
        let err = read_request(&mut fake, &mut Vec::new()).unwrap_err();
        assert_eq!(err.status, 400);

        let mut fake = Fake::new(b"GET / SPDY/9\r\n\r\n");
        let err = read_request(&mut fake, &mut Vec::new()).unwrap_err();
        assert_eq!(err.status, 400);

        let mut fake = Fake::new(
            format!(
                "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        let err = read_request(&mut fake, &mut Vec::new()).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn oversized_request_heads_are_431() {
        let huge = format!(
            "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "x".repeat(MAX_HEAD_BYTES * 2)
        );
        let mut fake = Fake::new(huge.as_bytes());
        let err = read_request(&mut fake, &mut Vec::new()).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn clean_eof_between_requests_is_not_an_error() {
        let mut fake = Fake::new(b"");
        assert!(read_request(&mut fake, &mut Vec::new()).unwrap().is_none());
    }

    #[test]
    fn chunked_framing_is_decodable_and_terminated() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::new(&mut out);
        w.write_all(b"a,b\n").unwrap();
        w.write_all(b"1,2\n").unwrap();
        w.finish().unwrap();
        // One coalesced 8-byte chunk plus the terminal chunk.
        assert_eq!(out, b"8\r\na,b\n1,2\n\r\n0\r\n\r\n");
    }

    #[test]
    fn large_payloads_split_into_multiple_chunks() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::new(&mut out);
        let row = vec![b'x'; CHUNK_BYTES / 2 + 1];
        w.write_all(&row).unwrap();
        w.write_all(&row).unwrap();
        w.write_all(b"tail").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.ends_with("4\r\ntail\r\n0\r\n\r\n"), "{text}");
    }

    fn run_request(body: &[u8], json: bool) -> Request {
        Request {
            method: "POST".to_string(),
            path: "/run".to_string(),
            body: body.to_vec(),
            keep_alive: false,
            accept_json: json,
        }
    }

    #[test]
    fn respond_run_streams_csv_or_diagnoses() {
        let state = state();
        let mut fake = Fake::new(b"");
        respond_run(
            &mut fake,
            &run_request(b"name = \"x\"\nquanttiy = 1\n", false),
            None,
            &state,
            false,
        );
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
        assert!(text.contains("line 2, column 1"), "{text}");

        let mut fake = Fake::new(b"");
        respond_run(
            &mut fake,
            &run_request(TINY_SCENARIO.as_bytes(), false),
            None,
            &state,
            false,
        );
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked"), "{text}");
        assert!(text.contains("Content-Type: text/csv"), "{text}");
        assert!(text.contains("job,tech,area_mm2"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text}");
    }

    #[test]
    fn accept_json_streams_jsonl_rows() {
        let state = state();
        let mut fake = Fake::new(b"");
        respond_run(
            &mut fake,
            &run_request(TINY_SCENARIO.as_bytes(), true),
            None,
            &state,
            false,
        );
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("Content-Type: application/jsonl"), "{text}");
        assert!(text.contains("{\"artifact\":"), "{text}");
        assert!(text.contains("\"job\":\"y\""), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text}");
    }

    const REFINE_SCENARIO: &str = concat!(
        "name = \"r\"\n",
        "[explore]\n",
        "name = \"job\"\n",
        "nodes = [\"7nm\"]\n",
        "areas_mm2 = [100, 200, 300, 400, 500, 600, 700, 800]\n",
        "quantities = [1000000, 2000000, 3000000, 4000000, 5000000, 6000000, 7000000, 8000000]\n",
        "integrations = [\"soc\", \"mcm\"]\n",
        "chiplets = [1, 2]\n",
        "mode = \"refine\"\n",
        "quantity_stride = 4\n",
        "outputs = [\"grid\", \"winners\"]\n",
    );

    /// Strips the response head and chunked framing, returning each
    /// chunk's payload separately.
    fn dechunk(output: &[u8]) -> Vec<String> {
        let text = String::from_utf8_lossy(output);
        let (_, mut rest) = text.split_once("\r\n\r\n").expect("a response head");
        let mut chunks = Vec::new();
        loop {
            let (size, tail) = rest.split_once("\r\n").expect("a chunk size line");
            let size = usize::from_str_radix(size, 16).expect("a hex chunk size");
            if size == 0 {
                return chunks;
            }
            chunks.push(tail[..size].to_string());
            rest = &tail[size + 2..];
        }
    }

    #[test]
    fn stream_refine_delivers_incremental_segments_matching_the_batch_body() {
        let batch_state = state();
        let mut batch = Fake::new(b"");
        respond_run(
            &mut batch,
            &run_request(REFINE_SCENARIO.as_bytes(), false),
            None,
            &batch_state,
            false,
        );
        let batch_body = dechunk(&batch.output).concat();

        // A fresh state, so the streamed request cannot lean on the
        // result cache even by accident.
        let state = state();
        let mut streamed = Fake::new(b"");
        let reply = respond_run(
            &mut streamed,
            &run_request(REFINE_SCENARIO.as_bytes(), false),
            Some("stream=refine"),
            &state,
            false,
        );
        assert_eq!(reply.status, 200);
        let text = String::from_utf8_lossy(&streamed.output);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "terminal chunk: {text}");
        let chunks = dechunk(&streamed.output);
        // The coarse segment flushes as its own chunk batch: the first
        // chunk opens the grid but must not already hold the whole run.
        assert!(chunks.len() >= 3, "phase flushes, got {}", chunks.len());
        assert!(chunks[0].starts_with("node,area_mm2,"), "{}", chunks[0]);
        let streamed_body = chunks.concat();
        assert!(chunks[0].lines().count() < streamed_body.lines().count());
        // Same rows, phase-interleaved delivery: every grid row carries
        // its full coordinates, so line-sorting both bodies must agree.
        let mut batch_lines: Vec<&str> = batch_body.lines().collect();
        let mut streamed_lines: Vec<&str> = streamed_body.lines().collect();
        batch_lines.sort_unstable();
        streamed_lines.sort_unstable();
        assert_eq!(batch_lines, streamed_lines);

        // The streamed run still lands in the result cache for later
        // batch requests.
        let mut replay = Fake::new(b"");
        respond_run(
            &mut replay,
            &run_request(REFINE_SCENARIO.as_bytes(), false),
            None,
            &state,
            false,
        );
        assert_eq!(dechunk(&replay.output).concat(), batch_body);
    }

    #[test]
    fn unknown_run_queries_are_rejected_not_ignored() {
        let state = state();
        let mut fake = Fake::new(b"");
        let reply = respond_run(
            &mut fake,
            &run_request(TINY_SCENARIO.as_bytes(), false),
            Some("stream=everything"),
            &state,
            false,
        );
        assert_eq!(reply.status, 400);
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
        assert!(text.contains("stream=refine"), "{text}");
    }

    #[test]
    fn cache_hits_replay_byte_identical_bodies_in_both_encodings() {
        let state = state();
        // Cold miss, then a formatting-only variant (extra whitespace and
        // a comment): same canonical digest, so the second answer comes
        // from the cache and must be byte-identical.
        let reformatted = format!("# a comment\n{}", TINY_SCENARIO.replace(" = ", "   =  "));
        let mut cold = Fake::new(b"");
        respond_run(
            &mut cold,
            &run_request(TINY_SCENARIO.as_bytes(), false),
            None,
            &state,
            false,
        );
        let mut hot = Fake::new(b"");
        respond_run(
            &mut hot,
            &run_request(reformatted.as_bytes(), false),
            None,
            &state,
            false,
        );
        assert_eq!(cold.output, hot.output);

        // The same cached run also serves the JSON-lines encoding.
        let mut json = Fake::new(b"");
        respond_run(
            &mut json,
            &run_request(TINY_SCENARIO.as_bytes(), true),
            None,
            &state,
            false,
        );
        assert!(
            String::from_utf8_lossy(&json.output).contains("application/jsonl"),
            "cache hits honor the requested encoding"
        );

        let stats = state.results.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn keep_alive_serves_two_requests_on_one_connection() {
        let state = state();
        let mut requests = post(TINY_SCENARIO, "");
        requests.extend_from_slice(&post(TINY_SCENARIO, "Connection: close\r\n"));
        let mut fake = Fake::new(&requests);
        serve_connection(&mut fake, None, &state);
        let replies = responses(&fake.output);
        assert_eq!(replies.len(), 2, "{:?}", replies);
        assert!(
            replies[0].contains("Connection: keep-alive"),
            "{}",
            replies[0]
        );
        assert!(replies[1].contains("Connection: close"), "{}", replies[1]);
        // Byte-identical bodies: same scenario, second served from cache.
        let body = |r: &str| r.split_once("\r\n\r\n").map(|(_, b)| b.to_string());
        assert_eq!(body(&replies[0]), {
            let b = body(&replies[1]);
            b.map(|b| b.replace("Connection: close", "Connection: keep-alive"))
        });
        assert_eq!(state.results.stats().hits, 1);
    }

    #[test]
    fn rate_limit_answers_429_with_retry_after() {
        let options = ServeOptions {
            rate_limit: 1,
            ..ServeOptions::default()
        };
        let state = ServerState::new(&options);
        let peer = Some(IpAddr::V4(Ipv4Addr::LOCALHOST));

        let mut requests = post(TINY_SCENARIO, "");
        requests.extend_from_slice(&post(TINY_SCENARIO, ""));
        let mut fake = Fake::new(&requests);
        serve_connection(&mut fake, peer, &state);
        let replies = responses(&fake.output);
        assert_eq!(replies.len(), 2, "{:?}", replies);
        assert!(replies[0].starts_with("HTTP/1.1 200 "), "{}", replies[0]);
        assert!(replies[1].starts_with("HTTP/1.1 429 "), "{}", replies[1]);
        assert!(replies[1].contains("Retry-After: 1"), "{}", replies[1]);
        assert_eq!(state.metrics.rate_limited.get(), 1);

        // /healthz and /statz stay exempt.
        let mut fake = Fake::new(b"GET /healthz HTTP/1.1\r\n\r\n");
        serve_connection(&mut fake, peer, &state);
        assert!(String::from_utf8_lossy(&fake.output).starts_with("HTTP/1.1 200 "));
    }

    #[test]
    fn concurrency_cap_releases_its_slot_after_each_request() {
        let options = ServeOptions {
            max_concurrent: 1,
            ..ServeOptions::default()
        };
        let state = ServerState::new(&options);
        let peer = Some(IpAddr::V4(Ipv4Addr::LOCALHOST));
        // Sequential requests never trip a concurrency cap of 1 — the
        // admission guard must release on drop.
        for _ in 0..3 {
            let admission = state.governor.admit(peer);
            assert!(admission.is_ok());
        }
        // Holding one admission makes the next one bounce with retry 1s.
        let held = state.governor.admit(peer);
        assert!(held.is_ok());
        let bounced = state.governor.admit(peer);
        assert_eq!(bounced.err(), Some(1));
    }

    #[test]
    fn statz_reports_counters_as_json() {
        let state = state();
        let mut fake = Fake::new(b"");
        respond_run(
            &mut fake,
            &run_request(TINY_SCENARIO.as_bytes(), false),
            None,
            &state,
            false,
        );
        let mut fake = Fake::new(b"GET /statz HTTP/1.1\r\nConnection: close\r\n\r\n");
        serve_connection(&mut fake, None, &state);
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("Content-Type: application/json"), "{text}");
        assert!(text.contains("\"requests_total\":1"), "{text}");
        assert!(
            text.contains("\"result_cache\":{\"hits\":0,\"misses\":1"),
            "{text}"
        );
        assert!(text.contains("\"core_cache\":"), "{text}");
        assert!(text.contains("\"saturation_total\":0"), "{text}");
    }

    #[test]
    fn metricsz_serves_valid_exposition_with_request_histograms() {
        let state = state();
        let mut warm = Fake::new(&post(TINY_SCENARIO, ""));
        serve_connection(&mut warm, None, &state);
        let mut fake = Fake::new(b"GET /metricsz HTTP/1.1\r\nConnection: close\r\n\r\n");
        serve_connection(&mut fake, None, &state);
        let text = String::from_utf8_lossy(&fake.output).into_owned();
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(
            text.contains("Content-Type: text/plain; version=0.0.4"),
            "{text}"
        );
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        expo::validate(body).expect("exposition body validates");
        assert!(
            body.contains(
                "actuary_http_request_seconds_bucket{method=\"POST\",route=\"/run\",status=\"200\",le=\"+Inf\"} 1"
            ),
            "{body}"
        );
        assert!(
            body.contains("actuary_http_response_bytes_bucket{route=\"/run\""),
            "{body}"
        );
        assert!(
            body.contains("\nactuary_result_cache_misses_total 1\n"),
            "{body}"
        );
    }

    #[test]
    fn statz_and_metricsz_agree_because_they_share_a_registry() {
        let state = state();
        // Two identical runs: one miss, one hit, three requests total
        // once /statz itself is counted.
        let mut requests = post(TINY_SCENARIO, "");
        requests.extend_from_slice(&post(TINY_SCENARIO, ""));
        let mut fake = Fake::new(&requests);
        serve_connection(&mut fake, None, &state);

        let mut statz = Fake::new(b"GET /statz HTTP/1.1\r\nConnection: close\r\n\r\n");
        serve_connection(&mut statz, None, &state);
        let statz_text = String::from_utf8_lossy(&statz.output).into_owned();
        assert!(
            statz_text.contains("\"result_cache\":{\"hits\":1,\"misses\":1"),
            "{statz_text}"
        );
        assert!(statz_text.contains("\"requests_total\":3"), "{statz_text}");

        // The Prometheus view of the same counters must agree exactly
        // (one more request: /statz above).
        let mut metricsz = Fake::new(b"GET /metricsz HTTP/1.1\r\nConnection: close\r\n\r\n");
        serve_connection(&mut metricsz, None, &state);
        let metrics_text = String::from_utf8_lossy(&metricsz.output).into_owned();
        assert!(
            metrics_text.contains("\nactuary_result_cache_hits_total 1\n"),
            "{metrics_text}"
        );
        assert!(
            metrics_text.contains("\nactuary_result_cache_misses_total 1\n"),
            "{metrics_text}"
        );
        assert!(
            metrics_text.contains("\nactuary_http_requests_total 4\n"),
            "{metrics_text}"
        );
    }

    #[test]
    fn combinatorially_huge_grids_are_refused_before_any_work() {
        // A few hundred bytes of TOML requesting > 10¹⁰ cells: the server
        // must answer 422 naming the cap instead of expanding the grid
        // (this test would hang or abort if evaluation started).
        let axis: Vec<String> = (1..=500).map(|i| format!("{}.0", i * 2)).collect();
        let scenario = format!(
            concat!(
                "name = \"huge\"\n",
                "[explore]\n",
                "nodes = [\"7nm\", \"5nm\", \"14nm\"]\n",
                "areas_mm2 = [{areas}]\n",
                "quantities = [{quantities}]\n",
                "chiplets = [1, 2, 3, 4, 5]\n",
            ),
            areas = axis.join(", "),
            quantities = (1..=500)
                .map(|i| (i * 1000).to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
        let state = state();
        let mut fake = Fake::new(b"");
        respond_run(
            &mut fake,
            &run_request(scenario.as_bytes(), false),
            None,
            &state,
            false,
        );
        let text = String::from_utf8_lossy(&fake.output);
        assert!(text.starts_with("HTTP/1.1 422 "), "{text}");
        assert!(text.contains("capped at 1000000 cells"), "{text}");
    }

    /// Builds a one-job explore scenario with `areas × quantities` grid
    /// cells (single node, SoC only, one chiplet count) in the given mode.
    fn grid_scenario(mode: &str, areas: usize, quantities: usize) -> Scenario {
        let area_axis: Vec<String> = (1..=areas).map(|i| format!("{i}.0")).collect();
        let quantity_axis: Vec<String> = (1..=quantities).map(|i| (i * 1000).to_string()).collect();
        let text = format!(
            concat!(
                "name = \"bound\"\n",
                "[explore]\n",
                "mode = \"{mode}\"\n",
                "nodes = [\"7nm\"]\n",
                "areas_mm2 = [{areas}]\n",
                "quantities = [{quantities}]\n",
                "integrations = [\"soc\"]\n",
                "chiplets = [1]\n",
            ),
            mode = mode,
            areas = area_axis.join(", "),
            quantities = quantity_axis.join(", "),
        );
        Scenario::from_toml(&text).unwrap()
    }

    #[test]
    fn refine_mode_raises_the_served_grid_cap_to_one_hundred_million() {
        // 2,000 × 2,000 = 4 × 10⁶ cells: over the exhaustive cap, under
        // the refine cap. The bound check (not a full run — that is the
        // engine's job) must let the refine job through.
        assert!(check_served_grid_bound(&grid_scenario("refine", 2_000, 2_000)).is_ok());
        let refused = check_served_grid_bound(&grid_scenario("exhaustive", 2_000, 2_000));
        let message = refused.unwrap_err();
        assert!(message.contains("capped at 1000000 cells"), "{message}");
        assert!(message.contains("exhaustive"), "{message}");
    }

    #[test]
    fn even_refine_mode_grids_are_bounded() {
        // 20,000 × 20,000 = 4 × 10⁸ cells exceeds even the refine cap.
        let refused = check_served_grid_bound(&grid_scenario("refine", 20_000, 20_000));
        let message = refused.unwrap_err();
        assert!(message.contains("capped at 100000000 cells"), "{message}");
        assert!(message.contains("refine"), "{message}");
    }
}
