//! `actuary` — command line interface to the chiplet-actuary cost model.
//!
//! Subcommands:
//!
//! * `actuary list` — show the technology library;
//! * `actuary yield --node 7nm --area 400` — die yield and cost;
//! * `actuary cost --node 5nm --area 800 --chiplets 2 --integration mcm
//!   --quantity 2000000` — full cost breakdown of one system;
//! * `actuary sweep --node 5nm --chiplets 2 --integration mcm` — RE cost
//!   over the Figure 4 area grid;
//! * `actuary partition --node 5nm --area 800 --quantity 2000000` — the
//!   optimizer's recommendation;
//! * `actuary explore --threads 0` — the multi-axis (node × area ×
//!   quantity × integration × chiplet count) grid, evaluated in parallel;
//! * `actuary serve --addr 127.0.0.1:8080` — a long-running HTTP process
//!   answering POSTed scenario files with chunk-streamed CSV artifacts;
//! * `actuary mc --node 7nm --area 180 --chiplets 2 --integration 2.5d`
//!   — Monte-Carlo vs analytic;
//! * `actuary repro --figure 2|4|5|6|8|9|10|ext|all [--csv]` — regenerate
//!   the paper's figures (and the extension studies);
//! * `actuary experiments` — the paper-vs-measured Markdown record;
//! * `actuary sensitivity --node 5nm --area 800` — cost elasticities.

#![forbid(unsafe_code)]

mod server;

use std::collections::BTreeMap;
use std::process::ExitCode;

use actuary_arch::{partition::equal_chiplets, Portfolio, System};
use actuary_dse::explore::{explore, ExploreSpace};
use actuary_dse::optimizer::{recommend, SearchSpace};
use actuary_dse::portfolio::{
    explore_portfolio, parse_fsmc_situation, PortfolioSpace, ReuseScheme,
};
use actuary_dse::refine::{explore_portfolio_refined_with, explore_refined_with, RefineOptions};
use actuary_mc::{simulate_system, DefectProcess, McConfig};
use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
use actuary_tech::{IntegrationKind, TechLibrary};
use actuary_units::{Area, Quantity};

fn main() -> ExitCode {
    // `ACTUARY_LOG=debug` surfaces engine phase spans on any subcommand;
    // `actuary serve` re-initializes from its own flags.
    actuary_obs::log::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage: actuary <command> [options]\n\
     commands:\n\
       list                               show the technology library\n\
       yield --node N --area MM2          die yield and yielded cost\n\
       cost  --node N --area MM2 [--chiplets K] [--integration soc|mcm|info|2.5d]\n\
             [--quantity Q] [--flow chip-first|chip-last]\n\
       sweep --node N [--chiplets K] [--integration KIND]\n\
       partition --node N --area MM2 [--quantity Q]\n\
       explore [--nodes N,N2,..] [--areas MM2,..] [--quantities Q,..]\n\
               [--integrations KIND,..] [--chiplets K,..] [--flow F]\n\
               [--schemes none,scms,ocme,fsmc|all] [--flow-axis]\n\
               [--fsmc-situations KxN,..|paper] [--ocme-centers none,NODE,..]\n\
               [--package-reuse] [--refine] [--quantity-stride N] [--threads T]\n\
               [--csv] [--out FILE] [--pareto-out FILE]\n\
                                         multi-axis parallel grid exploration\n\
                                         (T = 0 or omitted: all hardware threads;\n\
                                         --schemes grids the paper's reuse schemes,\n\
                                         --flow-axis grids chip-first vs chip-last,\n\
                                         --fsmc-situations grids Figure 10's (k,n) axis,\n\
                                         --ocme-centers grids mature-node OCME centres,\n\
                                         --refine explores coarse-to-fine over the\n\
                                         area and quantity axes, pruning cells away\n\
                                         from winner/front changes (--quantity-stride\n\
                                         sets its coarse quantity sampling),\n\
                                         --out streams the grid CSV to FILE,\n\
                                         --pareto-out streams the program-total vs\n\
                                         per-unit Pareto front to FILE)\n\
       run SCENARIO.toml [--threads T] [--out-dir DIR] [--csv]\n\
                                         execute a declarative scenario file\n\
       serve [--addr HOST:PORT] [--threads T] [--workers W]\n\
             [--cache-entries N] [--core-cache N]\n\
             [--rate-limit R] [--max-concurrent C]\n\
             [--log-level error|warn|info|debug|trace] [--log-format text|json]\n\
                                         long-running HTTP process: POST /run with a\n\
                                         scenario file, get its artifacts streamed\n\
                                         back as CSV (or JSON lines under\n\
                                         Accept: application/json); keeps connections\n\
                                         alive, caches results content-addressed\n\
                                         (--cache-entries runs, --core-cache cores;\n\
                                         0 disables), limits each client to R req/s\n\
                                         and C concurrent runs (0 = off), serves\n\
                                         counters on GET /statz and Prometheus text\n\
                                         on GET /metricsz, logs one structured\n\
                                         stderr event per request, drains on SIGTERM\n\
                                         (default addr 127.0.0.1:8080; see\n\
                                         docs/http-api.md, docs/operations.md and\n\
                                         docs/observability.md)\n\
       mc    --node N --area MM2 [--chiplets K] [--integration KIND] [--systems S]\n\
       repro --figure 2|4|5|6|8|9|10|ext|all [--csv]\n\
       experiments                        paper-vs-measured Markdown record\n\
       sensitivity --node N --area MM2 [--chiplets K]  cost elasticities\n\
     flags not listed for a command are rejected, not ignored"
}

/// Flags that take no value (present = true).
const BOOLEAN_FLAGS: [&str; 4] = ["csv", "flow-axis", "package-reuse", "refine"];

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let boolean = BOOLEAN_FLAGS.contains(&key);
        if let Some(value) = args.get(i + 1) {
            if value.starts_with("--") && !boolean {
                return Err(format!("flag --{key} is missing a value"));
            }
        }
        if boolean {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} is missing a value"))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

fn parse_integration(s: &str) -> Result<IntegrationKind, String> {
    match s.to_ascii_lowercase().as_str() {
        "soc" => Ok(IntegrationKind::Soc),
        "mcm" => Ok(IntegrationKind::Mcm),
        "info" => Ok(IntegrationKind::Info),
        "2.5d" | "25d" | "interposer" => Ok(IntegrationKind::TwoPointFiveD),
        other => Err(format!("unknown integration {other:?} (soc|mcm|info|2.5d)")),
    }
}

fn parse_flow(s: &str) -> Result<AssemblyFlow, String> {
    s.parse()
}

fn get_f64(flags: &BTreeMap<String, String>, key: &str) -> Result<f64, String> {
    flags
        .get(key)
        .ok_or_else(|| format!("missing required flag --{key}"))?
        .parse()
        .map_err(|e| format!("invalid --{key}: {e}"))
}

fn get_u64_or(flags: &BTreeMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|e| format!("invalid --{key}: {e}")),
        None => Ok(default),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("no command given".to_string());
    };
    // Honor help/version anywhere on the line (so `actuary repro --help`
    // shows usage instead of a flag-parse error).
    if command == "help" || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return Ok(());
    }
    if args.iter().any(|a| a == "--version" || a == "-V") {
        println!("actuary {}", env!("CARGO_PKG_VERSION"));
        return Ok(());
    }
    // `run` takes a positional scenario path and builds its own technology
    // library from the file (`extends` overlay), so it dispatches before
    // the table-driven subcommands below.
    if command == "run" {
        return cmd_run(&args[1..]);
    }
    // `serve` never builds the preset library up front either: every
    // request carries its own scenario (with its own `extends` overlay).
    if command == "serve" {
        return cmd_serve(&args[1..]);
    }
    // Every subcommand declares the flags it accepts alongside its
    // handler; anything else is rejected instead of silently ignored (a
    // misspelled `--quanttiy` used to fall back to the default quantity
    // and print a wrong answer).
    type Handler = fn(&TechLibrary, &BTreeMap<String, String>) -> Result<(), String>;
    let (accepted, handler): (&[&str], Handler) = match command.as_str() {
        "list" => (&[], |lib, _| cmd_list(lib)),
        "yield" => (&["node", "area"], cmd_yield),
        "cost" => (
            &[
                "node",
                "area",
                "chiplets",
                "integration",
                "quantity",
                "flow",
            ],
            cmd_cost,
        ),
        "sweep" => (&["node", "chiplets", "integration"], cmd_sweep),
        "partition" => (&["node", "area", "quantity"], cmd_partition),
        "explore" => (
            &[
                "nodes",
                "areas",
                "quantities",
                "integrations",
                "chiplets",
                "flow",
                "flow-axis",
                "schemes",
                "fsmc-situations",
                "ocme-centers",
                "package-reuse",
                "refine",
                "quantity-stride",
                "threads",
                "csv",
                "out",
                "pareto-out",
            ],
            cmd_explore,
        ),
        "mc" => (
            &["node", "area", "chiplets", "integration", "systems"],
            cmd_mc,
        ),
        "repro" => (&["figure", "csv"], cmd_repro),
        "experiments" => (&[], |lib, _| cmd_experiments(lib)),
        "sensitivity" => (&["node", "area", "chiplets"], cmd_sensitivity),
        other => return Err(format!("unknown command {other:?}")),
    };
    let flags = parse_flags(&args[1..])?;
    reject_unknown_flags(command, &flags, accepted)?;
    let lib = TechLibrary::paper_defaults().map_err(|e| e.to_string())?;
    handler(&lib, &flags)
}

/// Fails with the command's accepted flag list when any parsed flag is not
/// on it.
fn reject_unknown_flags(
    command: &str,
    flags: &BTreeMap<String, String>,
    accepted: &[&str],
) -> Result<(), String> {
    for key in flags.keys() {
        if !accepted.contains(&key.as_str()) {
            let listing = if accepted.is_empty() {
                "none".to_string()
            } else {
                accepted
                    .iter()
                    .map(|a| format!("--{a}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            return Err(format!(
                "unknown flag --{key} for `{command}` (accepted: {listing})"
            ));
        }
    }
    Ok(())
}

fn cmd_list(lib: &TechLibrary) -> Result<(), String> {
    println!("{lib}");
    let mut table = actuary_report::Table::new(vec![
        "node",
        "defect /cm²",
        "cluster",
        "wafer price",
        "density vs 14nm",
        "mask set",
    ]);
    for node in lib.nodes() {
        table.push_row(vec![
            node.id().to_string(),
            format!("{:.2}", node.defect_density().value()),
            format!("{}", node.cluster()),
            node.wafer_price().to_string(),
            format!("{:.2}", node.relative_density()),
            node.nre().mask_set.to_string(),
        ]);
    }
    println!("{table}");
    for p in lib.packagings() {
        match p.interposer() {
            Some(ip) => println!(
                "{}: bond yield {}, attach {}, interposer {}",
                p.kind(),
                p.chip_bond_yield(),
                p.substrate_attach_yield(),
                ip
            ),
            None => println!(
                "{}: bond yield {}, substrate {} per mm² (layer factor {})",
                p.kind(),
                p.chip_bond_yield(),
                p.substrate_cost_per_mm2(),
                p.substrate_layer_factor()
            ),
        }
    }
    Ok(())
}

fn cmd_yield(lib: &TechLibrary, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let node_id = flags.get("node").ok_or("missing required flag --node")?;
    let area_mm2 = get_f64(flags, "area")?;
    let node = lib.node(node_id).map_err(|e| e.to_string())?;
    let area = Area::from_mm2(area_mm2).map_err(|e| e.to_string())?;
    let y = node.die_yield(area);
    let dpw = node
        .wafer()
        .dies_per_wafer(area)
        .map_err(|e| e.to_string())?;
    let raw = node.raw_die_cost(area).map_err(|e| e.to_string())?;
    let yielded = node.yielded_die_cost(area).map_err(|e| e.to_string())?;
    println!("node {node} | die {area}");
    println!("yield (Eq. 1):      {y}");
    println!("dies per wafer:     {dpw:.1}");
    println!("raw die cost:       {raw}");
    println!("cost per good die:  {yielded}");
    Ok(())
}

fn build_single_system(
    node: &str,
    area_mm2: f64,
    chiplets: u32,
    integration: IntegrationKind,
    quantity: u64,
) -> Result<System, String> {
    let area = Area::from_mm2(area_mm2).map_err(|e| e.to_string())?;
    let chips = equal_chiplets("cli", node, area, chiplets).map_err(|e| e.to_string())?;
    let mut builder = System::builder("cli-sys", integration).quantity(Quantity::new(quantity));
    for chip in chips {
        builder = builder.chip(chip, 1);
    }
    builder.build().map_err(|e| e.to_string())
}

fn cmd_cost(lib: &TechLibrary, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let node = flags.get("node").ok_or("missing required flag --node")?;
    let area = get_f64(flags, "area")?;
    let chiplets = get_u64_or(flags, "chiplets", 1)? as u32;
    let integration = match flags.get("integration") {
        Some(s) => parse_integration(s)?,
        None if chiplets > 1 => IntegrationKind::Mcm,
        None => IntegrationKind::Soc,
    };
    let quantity = get_u64_or(flags, "quantity", 1_000_000)?;
    let flow = match flags.get("flow") {
        Some(s) => parse_flow(s)?,
        None => AssemblyFlow::ChipLast,
    };

    let system = build_single_system(node, area, chiplets, integration, quantity)?;
    let re = system.re_cost(lib, flow, None).map_err(|e| e.to_string())?;
    let cost = Portfolio::new(vec![system])
        .cost(lib, flow)
        .map_err(|e| e.to_string())?;
    let sc = &cost.systems()[0];

    println!(
        "{chiplets} × {:.1} mm² modules at {node} on {integration}, {} units, {flow}",
        area / chiplets as f64,
        Quantity::new(quantity)
    );
    println!("\nRE cost per unit (Eq. 4/5):");
    for (label, money) in re.components() {
        println!("  {label:<26} {money}");
    }
    println!("  {:<26} {}", "TOTAL RE", re.total());
    println!("\nNRE amortized per unit (Eq. 6-8):");
    for (label, money) in sc.nre_per_unit().components() {
        println!("  {label:<26} {money}");
    }
    println!("  {:<26} {}", "TOTAL NRE/unit", sc.nre_per_unit().total());
    println!(
        "\nper-unit total: {} (RE share {:.0}%)",
        sc.per_unit_total(),
        sc.re_share() * 100.0
    );
    Ok(())
}

fn cmd_sweep(lib: &TechLibrary, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let node_id = flags.get("node").ok_or("missing required flag --node")?;
    let chiplets = get_u64_or(flags, "chiplets", 2)? as u32;
    let integration = match flags.get("integration") {
        Some(s) => parse_integration(s)?,
        None => IntegrationKind::Mcm,
    };
    let node = lib.node(node_id).map_err(|e| e.to_string())?;
    let packaging = lib.packaging(integration).map_err(|e| e.to_string())?;
    let soc_packaging = lib
        .packaging(IntegrationKind::Soc)
        .map_err(|e| e.to_string())?;

    let mut table = actuary_report::Table::new(vec![
        "area_mm2",
        "SoC RE",
        &format!("{chiplets}-chiplet {integration} RE"),
        "saving",
    ]);
    for area_mm2 in (100..=900).step_by(100) {
        let area = Area::from_mm2(area_mm2 as f64).map_err(|e| e.to_string())?;
        let soc = re_cost(
            &[DiePlacement::new(node, area, 1)],
            soc_packaging,
            AssemblyFlow::ChipLast,
        )
        .map_err(|e| e.to_string())?;
        let die = node
            .d2d()
            .inflate_module_area(area / chiplets as f64)
            .map_err(|e| e.to_string())?;
        let multi = re_cost(
            &[DiePlacement::new(node, die, chiplets)],
            packaging,
            AssemblyFlow::ChipLast,
        )
        .map_err(|e| e.to_string())?;
        let saving = 1.0 - multi.total().usd() / soc.total().usd();
        table.push_row(vec![
            area_mm2.to_string(),
            soc.total().to_string(),
            multi.total().to_string(),
            format!("{:+.1}%", saving * 100.0),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_partition(lib: &TechLibrary, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let node = flags.get("node").ok_or("missing required flag --node")?;
    let area = get_f64(flags, "area")?;
    let quantity = get_u64_or(flags, "quantity", 1_000_000)?;
    let rec = recommend(
        lib,
        node,
        Area::from_mm2(area).map_err(|e| e.to_string())?,
        Quantity::new(quantity),
        &SearchSpace::default(),
    )
    .map_err(|e| e.to_string())?;
    println!("{rec}\n");
    let mut table =
        actuary_report::Table::new(vec!["integration", "chiplets", "per-unit", "RE only"]);
    for c in &rec.candidates {
        table.push_row(vec![
            c.integration.to_string(),
            c.chiplets.to_string(),
            c.per_unit.to_string(),
            c.re_per_unit.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// Parses a comma-separated flag value (`--areas 100,200,300`) through a
/// per-item parser.
fn parse_list<T>(
    raw: &str,
    key: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let items: Vec<&str> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return Err(format!("--{key} needs at least one comma-separated value"));
    }
    items.into_iter().map(parse).collect()
}

fn parse_scheme(s: &str) -> Result<ReuseScheme, String> {
    s.parse()
}

/// Streams `write` into `path` through the library's
/// [`actuary_report::IoSink`] adapter, translating the sink's io error.
fn stream_to_file(
    path: &str,
    write: impl FnOnce(&mut dyn std::fmt::Write) -> std::fmt::Result,
) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path:?}: {e}"))?;
    let mut sink = actuary_report::IoSink::new(std::io::BufWriter::new(file));
    write(&mut sink).map_err(|_| {
        let cause = sink
            .take_error()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "formatting error".to_string());
        format!("writing {path:?} failed: {cause}")
    })?;
    use std::io::Write as _;
    sink.into_inner()
        .flush()
        .map_err(|e| format!("flushing {path:?} failed: {e}"))
}

/// `actuary serve`: parse the flags and hand off to the HTTP server.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    reject_unknown_flags(
        "serve",
        &flags,
        &[
            "addr",
            "threads",
            "workers",
            "cache-entries",
            "core-cache",
            "rate-limit",
            "max-concurrent",
            "log-level",
            "log-format",
        ],
    )?;
    let defaults = server::ServeOptions::default();
    let options = server::ServeOptions {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        engine_threads: get_u64_or(&flags, "threads", 0)? as usize,
        workers: get_u64_or(&flags, "workers", 4)? as usize,
        result_cache_entries: get_u64_or(
            &flags,
            "cache-entries",
            defaults.result_cache_entries as u64,
        )? as usize,
        core_cache_entries: get_u64_or(&flags, "core-cache", defaults.core_cache_entries as u64)?
            as usize,
        rate_limit: get_u64_or(&flags, "rate-limit", u64::from(defaults.rate_limit))? as u32,
        max_concurrent: get_u64_or(&flags, "max-concurrent", u64::from(defaults.max_concurrent))?
            as u32,
        log_level: match flags.get("log-level") {
            Some(raw) => actuary_obs::log::Level::parse(raw).ok_or_else(|| {
                format!("invalid --log-level {raw:?} (error|warn|info|debug|trace)")
            })?,
            None => defaults.log_level,
        },
        log_format: match flags.get("log-format") {
            Some(raw) => actuary_obs::log::Format::parse(raw)
                .ok_or_else(|| format!("invalid --log-format {raw:?} (text|json)"))?,
            None => defaults.log_format,
        },
    };
    if options.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    server::serve(&options)
}

fn cmd_explore(lib: &TechLibrary, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let mut space = PortfolioSpace {
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::None],
        ..PortfolioSpace::default()
    };
    if let Some(raw) = flags.get("nodes") {
        space.nodes = parse_list(raw, "nodes", |s| Ok(s.to_string()))?;
    }
    if let Some(raw) = flags.get("areas") {
        space.areas_mm2 = parse_list(raw, "areas", |s| {
            s.parse().map_err(|e| format!("invalid area {s:?}: {e}"))
        })?;
    }
    if let Some(raw) = flags.get("quantities") {
        space.quantities = parse_list(raw, "quantities", |s| {
            s.parse()
                .map_err(|e| format!("invalid quantity {s:?}: {e}"))
        })?;
        // Quantity axes feed ordered-axis machinery (amortization curves,
        // coarse-to-fine refinement), so an unordered list is a mistake
        // worth naming here rather than deep in the engine.
        for pair in space.quantities.windows(2) {
            if pair[1] <= pair[0] {
                return Err(format!(
                    "--quantities must be strictly increasing ({} follows {})",
                    pair[1], pair[0]
                ));
            }
        }
    }
    if let Some(raw) = flags.get("integrations") {
        space.integrations = parse_list(raw, "integrations", parse_integration)?;
    }
    if let Some(raw) = flags.get("chiplets") {
        space.chiplet_counts = parse_list(raw, "chiplets", |s| {
            s.parse()
                .map_err(|e| format!("invalid chiplet count {s:?}: {e}"))
        })?;
    }
    if flags.contains_key("flow") && flags.contains_key("flow-axis") {
        return Err("choose --flow FLOW or --flow-axis, not both".to_string());
    }
    if flags.contains_key("csv") && flags.contains_key("out") {
        return Err("choose --csv (stdout) or --out FILE, not both".to_string());
    }
    if let Some(raw) = flags.get("flow") {
        space.flows = vec![parse_flow(raw)?];
    }
    if flags.contains_key("flow-axis") {
        space.flows = vec![AssemblyFlow::ChipLast, AssemblyFlow::ChipFirst];
    }
    if let Some(raw) = flags.get("schemes") {
        space.schemes = if raw.eq_ignore_ascii_case("all") {
            ReuseScheme::ALL.to_vec()
        } else {
            parse_list(raw, "schemes", parse_scheme)?
        };
    }
    if let Some(raw) = flags.get("fsmc-situations") {
        space.fsmc_situations = if raw.eq_ignore_ascii_case("paper") {
            PortfolioSpace::FSMC_PAPER_SITUATIONS.to_vec()
        } else {
            parse_list(raw, "fsmc-situations", parse_fsmc_situation)?
        };
    }
    if let Some(raw) = flags.get("ocme-centers") {
        space.ocme_center_nodes = parse_list(raw, "ocme-centers", |s| {
            Ok(if s.eq_ignore_ascii_case("none") {
                None
            } else {
                Some(s.to_string())
            })
        })?;
    }
    if flags.contains_key("package-reuse") {
        space.package_reuse = true;
    }
    // Scheme-parameter flags only act through their scheme; accepting them
    // on a grid that never builds that scheme would silently drop the axis
    // (the reject-don't-ignore rule applies to flag *combinations* too).
    if flags.contains_key("fsmc-situations") && !space.schemes.contains(&ReuseScheme::Fsmc) {
        return Err(
            "--fsmc-situations grids the fsmc scheme; add --schemes fsmc (or all)".to_string(),
        );
    }
    if flags.contains_key("ocme-centers") && !space.schemes.contains(&ReuseScheme::Ocme) {
        return Err(
            "--ocme-centers grids the ocme scheme; add --schemes ocme (or all)".to_string(),
        );
    }
    if flags.contains_key("package-reuse")
        && !space
            .schemes
            .iter()
            .any(|s| matches!(s, ReuseScheme::Scms | ReuseScheme::Ocme))
    {
        return Err(
            "--package-reuse affects only the scms/ocme families; add --schemes scms,ocme (or all)"
                .to_string(),
        );
    }
    if flags.contains_key("quantity-stride") && !flags.contains_key("refine") {
        return Err("--quantity-stride tunes the coarse-to-fine walk; add --refine".to_string());
    }
    let threads = get_u64_or(flags, "threads", 0)? as usize;

    // A portfolio request (a scheme or flow axis) runs the portfolio
    // engine; a plain request stays on the single-system grid and output.
    let portfolio_mode = flags.contains_key("schemes") || flags.contains_key("flow-axis");
    if portfolio_mode {
        return cmd_explore_portfolio(lib, flags, &space, threads);
    }

    let single = ExploreSpace {
        nodes: space.nodes,
        areas_mm2: space.areas_mm2,
        quantities: space.quantities,
        integrations: space.integrations,
        chiplet_counts: space.chiplet_counts,
        flow: space.flows[0],
    };
    let result = if flags.contains_key("refine") {
        explore_refined_with(lib, &single, threads, parse_refine_options(flags)?)
    } else {
        explore(lib, &single, threads)
    }
    .map_err(|e| e.to_string())?;
    if let Some(path) = flags.get("pareto-out") {
        stream_to_file(path, |sink| {
            result.pareto_program_artifact().write_csv_to(sink)
        })?;
        // No point count in the message: counting would recompute the
        // front the artifact write just streamed.
        println!("wrote the program-Pareto front to {path}");
    }
    if let Some(path) = flags.get("out") {
        stream_to_file(path, |sink| result.grid_artifact().write_csv_to(sink))?;
        println!("wrote {} grid cells to {path}", result.len());
        return Ok(());
    }
    if flags.contains_key("csv") {
        print!("{}", result.grid_artifact().csv());
        return Ok(());
    }

    println!("explored {result}\n");
    println!("cheapest configuration per (node, area, quantity):");
    let mut winners = actuary_report::Table::new(vec![
        "node",
        "area_mm2",
        "quantity",
        "integration",
        "chiplets",
        "per-unit",
        "vs SoC",
    ]);
    for w in result.winners() {
        let (integration, chiplets, per_unit) = match &w.best {
            Some(c) => (
                c.integration.to_string(),
                c.chiplets.to_string(),
                c.per_unit.to_string(),
            ),
            None => ("-".to_string(), "-".to_string(), "infeasible".to_string()),
        };
        winners.push_row(vec![
            w.node.clone(),
            format!("{}", w.area_mm2),
            Quantity::new(w.quantity).to_string(),
            integration,
            chiplets,
            per_unit,
            w.saving_vs_soc_display().unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{winners}");

    println!("Pareto front over (per-unit cost, chiplet count):");
    let mut front = actuary_report::Table::new(vec![
        "per-unit",
        "chiplets",
        "node",
        "area_mm2",
        "quantity",
        "integration",
    ]);
    for cell in result.pareto_front() {
        let c = cell.outcome.candidate().expect("Pareto cells are feasible");
        front.push_row(vec![
            c.per_unit.to_string(),
            cell.chiplets.to_string(),
            cell.node.clone(),
            format!("{}", cell.area_mm2),
            Quantity::new(cell.quantity).to_string(),
            cell.integration.to_string(),
        ]);
    }
    println!("{front}");
    println!("(re-run with --csv for the full machine-readable grid)");
    Ok(())
}

/// The refinement options the explore flags select: `--quantity-stride N`
/// sets the coarse sampling stride along the quantity axis (absent = the
/// engine picks from the axis length; the area stride stays
/// engine-picked).
fn parse_refine_options(flags: &BTreeMap<String, String>) -> Result<RefineOptions, String> {
    let quantity_stride = match flags.get("quantity-stride") {
        None => 0,
        Some(raw) => {
            let stride: usize = raw
                .parse()
                .map_err(|e| format!("invalid --quantity-stride {raw:?}: {e}"))?;
            if stride == 0 {
                return Err(
                    "--quantity-stride must be at least 1 (omit it to let the engine pick)"
                        .to_string(),
                );
            }
            stride
        }
    };
    Ok(RefineOptions {
        area_stride: 0,
        quantity_stride,
    })
}

/// The `--schemes` / `--flow-axis` output path: per-scheme winner tables
/// and Pareto fronts over the portfolio grid.
fn cmd_explore_portfolio(
    lib: &TechLibrary,
    flags: &BTreeMap<String, String>,
    space: &PortfolioSpace,
    threads: usize,
) -> Result<(), String> {
    let result = if flags.contains_key("refine") {
        explore_portfolio_refined_with(lib, space, threads, parse_refine_options(flags)?)
    } else {
        explore_portfolio(lib, space, threads)
    }
    .map_err(|e| e.to_string())?;
    if let Some(path) = flags.get("pareto-out") {
        stream_to_file(path, |sink| {
            result.pareto_program_artifact().write_csv_to(sink)
        })?;
        // No point count in the message: counting would recompute every
        // scheme's front the artifact write just streamed.
        println!("wrote the program-Pareto front to {path}");
    }
    if let Some(path) = flags.get("out") {
        stream_to_file(path, |sink| result.grid_artifact().write_csv_to(sink))?;
        println!("wrote {} grid cells to {path}", result.len());
        return Ok(());
    }
    if flags.contains_key("csv") {
        print!("{}", result.grid_artifact().csv());
        return Ok(());
    }

    println!("explored {result}\n");
    for &scheme in &result.space().schemes {
        println!("[{scheme}] cheapest configuration per (node, area, quantity):");
        let mut winners = actuary_report::Table::new(vec![
            "node",
            "area_mm2",
            "quantity",
            "integration",
            "chiplets",
            "flow",
            "per-unit",
            "vs SoC",
        ]);
        for w in result.winners(scheme) {
            let (integration, chiplets, flow, per_unit) = match &w.best {
                Some((c, flow)) => (
                    c.integration.to_string(),
                    c.chiplets.to_string(),
                    flow.to_string(),
                    c.per_unit.to_string(),
                ),
                None => (
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "infeasible".to_string(),
                ),
            };
            winners.push_row(vec![
                w.node.clone(),
                format!("{}", w.area_mm2),
                Quantity::new(w.quantity).to_string(),
                integration,
                chiplets,
                flow,
                per_unit,
                w.saving_vs_soc_display().unwrap_or_else(|| "-".to_string()),
            ]);
        }
        println!("{winners}");
        let front = result.pareto_front(scheme);
        println!(
            "[{scheme}] Pareto front over (per-unit cost, chiplet count): {} point(s)",
            front.len()
        );
        for cell in front {
            let c = cell.outcome.candidate().expect("Pareto cells are feasible");
            println!(
                "  {} at {} chiplet(s): {} / {:.0} mm2 / {} units, {} ({})",
                c.per_unit,
                cell.chiplets,
                cell.node,
                cell.area_mm2,
                Quantity::new(cell.quantity),
                cell.integration,
                cell.flow,
            );
        }
        println!();
    }
    println!("(re-run with --csv or --out FILE for the full machine-readable grid)");
    Ok(())
}

/// `actuary run <scenario.toml>`: parse, lower and execute a declarative
/// scenario file through the scenario subsystem.
fn cmd_run(args: &[String]) -> Result<(), String> {
    // Split the positional scenario path from the `--key value` flags.
    let mut path: Option<&str> = None;
    let mut flag_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(key) = arg.strip_prefix("--") {
            flag_args.push(arg.clone());
            i += 1;
            if !BOOLEAN_FLAGS.contains(&key) {
                if let Some(value) = args.get(i) {
                    flag_args.push(value.clone());
                    i += 1;
                }
            }
        } else if path.is_none() {
            path = Some(arg);
            i += 1;
        } else {
            return Err(format!("unexpected extra argument {arg:?} for `run`"));
        }
    }
    let path = path.ok_or("`run` needs a scenario file: actuary run SCENARIO.toml")?;
    let flags = parse_flags(&flag_args)?;
    reject_unknown_flags("run", &flags, &["threads", "out-dir", "csv"])?;
    if flags.contains_key("csv") && flags.contains_key("out-dir") {
        return Err("choose --csv (stdout) or --out-dir DIR, not both".to_string());
    }
    let threads = get_u64_or(&flags, "threads", 0)? as usize;

    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let scenario =
        actuary_scenario::Scenario::from_toml(&text).map_err(|e| format!("{path}: {e}"))?;
    let run = scenario.run(threads).map_err(|e| e.to_string())?;

    if let Some(dir) = flags.get("out-dir") {
        return write_run_outputs(&run, dir);
    }
    if flags.contains_key("csv") {
        // One concatenated stream, artifact by artifact — the same bytes
        // `actuary serve` chunk-streams back over HTTP.
        for artifact in run.artifacts() {
            print!("{}", artifact.csv());
        }
        return Ok(());
    }

    println!(
        "scenario `{}`: {} job(s) on {}",
        scenario.name,
        scenario.jobs.len(),
        scenario.library
    );
    if let Some(description) = &scenario.description {
        println!("{description}");
    }
    // `last_job` is an Option so the very first row always opens a group,
    // whatever the job is named.
    let mut last_job: Option<&str> = None;
    let mut table: Option<actuary_report::Table> = None;
    let flush = |table: &mut Option<actuary_report::Table>| {
        if let Some(t) = table.take() {
            println!("{t}");
        }
    };
    for row in &run.cost_rows {
        if last_job != Some(&row.job) {
            flush(&mut table);
            println!("\n[{}] per-system cost breakdown ($/unit):", row.job);
            table = Some(actuary_report::Table::new(vec![
                "system", "quantity", "RE", "RE pkg", "NRE mod", "NRE chip", "NRE pkg", "NRE D2D",
                "total",
            ]));
            last_job = Some(&row.job);
        }
        if let Some(t) = table.as_mut() {
            t.push_row(vec![
                row.system.clone(),
                Quantity::new(row.quantity).to_string(),
                format!("{:.2}", row.re_usd),
                format!("{:.2}", row.re_packaging_usd),
                format!("{:.2}", row.nre_modules_usd),
                format!("{:.2}", row.nre_chips_usd),
                format!("{:.2}", row.nre_packages_usd),
                format!("{:.2}", row.nre_d2d_usd),
                format!("{:.2}", row.per_unit_usd),
            ]);
        }
    }
    flush(&mut table);
    let mut last_job: Option<&str> = None;
    let mut table: Option<actuary_report::Table> = None;
    for row in &run.yield_rows {
        if last_job != Some(&row.job) {
            flush(&mut table);
            println!("\n[{}] yield and cost per area:", row.job);
            table = Some(actuary_report::Table::new(vec![
                "tech",
                "area_mm2",
                "yield",
                "$/raw die",
                "$/good die",
                "norm $/mm2",
            ]));
            last_job = Some(&row.job);
        }
        if let Some(t) = table.as_mut() {
            t.push_row(vec![
                row.tech.clone(),
                format!("{}", row.area_mm2),
                format!("{:.4}", row.yield_frac),
                format!("{:.2}", row.raw_die_usd),
                format!("{:.2}", row.yielded_die_usd),
                format!("{:.3}", row.cost_per_area_norm),
            ]);
        }
    }
    flush(&mut table);
    for sweep in &run.sweeps {
        println!(
            "\n[{}] per-unit RE cost over the area grid ($):",
            sweep.name
        );
        let mut headers = vec![sweep.sweep.x_label().to_string()];
        headers.extend(sweep.sweep.series().iter().cloned());
        let mut table = actuary_report::Table::new(headers);
        for p in sweep.sweep.points() {
            let mut row = vec![format!("{}", p.x)];
            row.extend(p.values.iter().map(|v| format!("{v:.2}")));
            table.push_row(row);
        }
        println!("{table}");
    }
    for explore in &run.explores {
        println!("\n[{}] explored {}", explore.name, explore.result);
    }
    if !run.explores.is_empty() || !run.sweeps.is_empty() {
        println!("(re-run with --out-dir DIR or --csv for the machine-readable artifacts)");
    }
    Ok(())
}

/// Writes every artifact of a scenario run into `dir` as
/// `<scenario>-<artifact>.csv` — `<scenario>-costs.csv`,
/// `<scenario>-<job>-grid.csv`, `<scenario>-<job>-winners.csv`,
/// `<scenario>-<job>-sweep.csv`, … exactly the artifact stream, one file
/// each.
fn write_run_outputs(run: &actuary_scenario::ScenarioRun, dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    for artifact in run.artifacts() {
        let path = format!(
            "{}/{}-{}.csv",
            dir.trim_end_matches('/'),
            run.name,
            artifact.name()
        );
        let kind = artifact.kind();
        stream_to_file(&path, |sink| artifact.write_csv_to(sink))?;
        println!("wrote {kind} artifact to {path}");
    }
    Ok(())
}

fn cmd_mc(lib: &TechLibrary, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let node = flags.get("node").ok_or("missing required flag --node")?;
    let area = get_f64(flags, "area")?;
    let chiplets = get_u64_or(flags, "chiplets", 2)? as u32;
    let integration = match flags.get("integration") {
        Some(s) => parse_integration(s)?,
        None => IntegrationKind::Mcm,
    };
    let systems = get_u64_or(flags, "systems", 2_000)? as u32;

    let system = build_single_system(node, area * chiplets as f64, chiplets, integration, 1)?;
    let analytic = system
        .re_cost(lib, AssemblyFlow::ChipLast, None)
        .map_err(|e| e.to_string())?
        .total();
    let cfg = McConfig {
        systems,
        seed: 1,
        defect_process: DefectProcess::Bernoulli,
    };
    let result =
        simulate_system(&system, lib, AssemblyFlow::ChipLast, &cfg).map_err(|e| e.to_string())?;
    println!("analytic expected cost: {analytic}");
    println!("monte-carlo:            {result}");
    println!(
        "dies consumed {} | substrates {} | interposers {}",
        result.dies_consumed(),
        result.substrates_consumed(),
        result.interposers_consumed()
    );
    println!(
        "agreement within 4 standard errors: {}",
        if result.agrees_with(analytic, 4.0) {
            "yes"
        } else {
            "NO"
        }
    );
    Ok(())
}

fn cmd_repro(lib: &TechLibrary, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let figure = flags
        .get("figure")
        .ok_or("missing required flag --figure")?;
    let csv = flags.contains_key("csv");
    let all = figure == "all";
    let mut any = false;
    let mut all_checks = Vec::new();

    if all || figure == "2" {
        let fig = actuary_figures::fig2::compute(lib).map_err(|e| e.to_string())?;
        emit(csv, &fig.to_table(), || fig.render());
        all_checks.extend(fig.checks());
        any = true;
    }
    if all || figure == "4" {
        let fig = actuary_figures::fig4::compute(lib).map_err(|e| e.to_string())?;
        emit(csv, &fig.to_table(), || fig.render());
        all_checks.extend(fig.checks());
        any = true;
    }
    if all || figure == "5" {
        let fig = actuary_figures::fig5::compute(lib).map_err(|e| e.to_string())?;
        emit(csv, &fig.to_table(), || fig.render());
        all_checks.extend(fig.checks());
        any = true;
    }
    if all || figure == "6" {
        let fig = actuary_figures::fig6::compute(lib).map_err(|e| e.to_string())?;
        emit(csv, &fig.to_table(), || fig.render());
        all_checks.extend(fig.checks());
        any = true;
    }
    if all || figure == "8" {
        let fig = actuary_figures::fig8::compute(lib).map_err(|e| e.to_string())?;
        emit(csv, &fig.to_table(), || fig.render());
        all_checks.extend(fig.checks());
        any = true;
    }
    if all || figure == "9" {
        let fig = actuary_figures::fig9::compute(lib).map_err(|e| e.to_string())?;
        emit(csv, &fig.to_table(), || fig.render());
        all_checks.extend(fig.checks());
        any = true;
    }
    if all || figure == "10" {
        let fig = actuary_figures::fig10::compute(lib).map_err(|e| e.to_string())?;
        emit(csv, &fig.to_table(), || fig.render());
        all_checks.extend(fig.checks());
        any = true;
    }
    if all || figure == "ext" {
        let maturity = actuary_figures::ext::maturity_study(lib).map_err(|e| e.to_string())?;
        emit(csv, &maturity.to_table(), || {
            format!(
                "Extension: process-maturity study\n{}",
                maturity.to_table().render()
            )
        });
        all_checks.extend(maturity.checks());
        let harvest = actuary_figures::ext::harvest_study(lib).map_err(|e| e.to_string())?;
        emit(csv, &harvest.to_table(), || {
            format!(
                "Extension: die-harvest (binning) study\n{}",
                harvest.to_table().render()
            )
        });
        all_checks.extend(harvest.checks());
        let ablation =
            actuary_figures::ext::yield_model_ablation(lib).map_err(|e| e.to_string())?;
        emit(csv, &ablation.to_table(), || {
            format!(
                "Extension: yield-model ablation\n{}",
                ablation.to_table().render()
            )
        });
        all_checks.extend(ablation.checks());
        any = true;
    }
    if !any {
        return Err(format!(
            "unknown figure {figure:?} (2|4|5|6|8|9|10|ext|all)"
        ));
    }
    if !csv {
        println!("shape claims vs the paper:");
        let mut failed = 0;
        for check in &all_checks {
            println!("  {check}");
            if !check.pass {
                failed += 1;
            }
        }
        println!(
            "\n{} of {} claims hold",
            all_checks.len() - failed,
            all_checks.len()
        );
    }
    Ok(())
}

fn emit<F: FnOnce() -> String>(csv: bool, table: &actuary_report::Table, render: F) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{}", render());
    }
}

/// Prints cost elasticities d(ln cost)/d(ln param) for the key model
/// parameters of one system — which inputs the user should source most
/// carefully (§4: "include the latest relevant data").
fn cmd_sensitivity(lib: &TechLibrary, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let node_id = flags
        .get("node")
        .ok_or("missing required flag --node")?
        .clone();
    let area_mm2 = get_f64(flags, "area")?;
    let chiplets = get_u64_or(flags, "chiplets", 2)? as u32;
    let integration = if chiplets > 1 {
        IntegrationKind::Mcm
    } else {
        IntegrationKind::Soc
    };

    let base_node = lib.node(&node_id).map_err(|e| e.to_string())?.clone();
    let re_total = |library: &TechLibrary| -> Result<f64, actuary_arch::ArchError> {
        let node = library.node(&node_id)?;
        let packaging = library.packaging(integration)?;
        let area = Area::from_mm2(area_mm2)?;
        let placements = if chiplets > 1 {
            let die = node.d2d().inflate_module_area(area / chiplets as f64)?;
            vec![DiePlacement::new(node, die, chiplets)]
        } else {
            vec![DiePlacement::new(node, area, 1)]
        };
        Ok(re_cost(&placements, packaging, AssemblyFlow::ChipLast)?
            .total()
            .usd())
    };

    let rebuild = |defect: f64, wafer_usd: f64| -> Result<TechLibrary, String> {
        lib.with_modified_node(&node_id, |n| {
            actuary_tech::ProcessNode::builder(n.id().clone())
                .defect_density(defect)
                .cluster(n.cluster())
                .wafer_price(actuary_units::Money::from_usd(wafer_usd)?)
                .wafer(n.wafer())
                .k_module(n.nre().k_module)
                .k_chip(n.nre().k_chip)
                .mask_set(n.nre().mask_set)
                .ip_license(n.nre().ip_license)
                .relative_density(n.relative_density())
                .d2d(*n.d2d())
                .build()
        })
        .map_err(|e| e.to_string())
    };

    let base_d = base_node.defect_density().value();
    let base_w = base_node.wafer_price().usd();
    let sensitivities = actuary_dse::sensitivity::rank_sensitivities(
        vec![
            ("defect density".to_string(), base_d),
            ("wafer price".to_string(), base_w),
        ],
        0.01,
        |name, value| {
            let library = match name {
                "defect density" => rebuild(value, base_w),
                _ => rebuild(base_d, value),
            }
            .map_err(|reason| actuary_arch::ArchError::InvalidArchitecture { reason })?;
            re_total(&library)
        },
    )
    .map_err(|e| e.to_string())?;

    println!(
        "RE-cost elasticities for {chiplets} × {:.1} mm² at {node_id} on {integration}:",
        area_mm2 / chiplets as f64
    );
    let mut table = actuary_report::Table::new(vec!["parameter", "base value", "elasticity"]);
    for s in sensitivities {
        table.push_row(vec![
            s.parameter,
            format!("{:.4}", s.base_value),
            format!("{:+.3}", s.elasticity),
        ]);
    }
    println!("{table}");
    println!("(an elasticity of e means +1% in the parameter moves cost by about e%)");
    Ok(())
}

/// Emits the paper-vs-measured Markdown record behind `EXPERIMENTS.md`:
/// for every figure, every qualitative claim of the paper's prose with the
/// value this reproduction measures.
fn cmd_experiments(lib: &TechLibrary) -> Result<(), String> {
    let sections: Vec<(&str, &str, Vec<actuary_figures::ShapeCheck>)> = vec![
        (
            "Figure 2",
            "Yield / normalized cost-per-area vs die area for six technologies",
            actuary_figures::fig2::compute(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Figure 4",
            "Normalized RE cost breakdown: SoC/MCM/InFO/2.5D × {2,3,5} chiplets × \
             {14,7,5}nm × 100-900mm²",
            actuary_figures::fig4::compute(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Figure 5",
            "AMD validation: 7nm CCD + 12nm IOD MCM vs hypothetical monolithic 7nm, \
             16-64 cores",
            actuary_figures::fig5::compute(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Figure 6",
            "Total cost structure of a single 800mm² system at 14/5nm over \
             500k/2M/10M units",
            actuary_figures::fig6::compute(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Figure 8",
            "SCMS reuse: one 7nm 200mm² chiplet builds 1X/2X/4X on MCM/2.5D, \
             package reuse on/off",
            actuary_figures::fig8::compute(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Figure 9",
            "OCME reuse: center + extensions, package reuse, heterogeneous \
             14nm center",
            actuary_figures::fig9::compute(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Figure 10",
            "FSMC reuse: all collocations of n chiplet types in a k-socket package, \
             five (k,n) situations",
            actuary_figures::fig10::compute(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Extension: process maturity",
            "defect-density learning curve (0.13 → 0.05, τ=12mo) vs the chiplet \
             advantage at 7nm/600mm² — §4.1's 'as yield improves the advantage \
             is smaller'",
            actuary_figures::ext::maturity_study(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Extension: die harvesting",
            "partial-good salvage (binning) on an 8-core CCD vs a 64-core \
             monolithic die at early 7nm — the industry practice behind the \
             paper's EPYC reference",
            actuary_figures::ext::harvest_study(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
        (
            "Extension: yield-model ablation",
            "Poisson vs negative-binomial cluster parameter: how the model \
             choice of §2.2 moves the multi-chip turning point",
            actuary_figures::ext::yield_model_ablation(lib)
                .map_err(|e| e.to_string())?
                .checks(),
        ),
    ];

    let mut total = 0usize;
    let mut passed = 0usize;
    for (figure, description, checks) in &sections {
        println!("## {figure} — {description}\n");
        println!("| paper claim | paper value | measured | verdict |");
        println!("|---|---|---|---|");
        for c in checks {
            println!(
                "| {} | {} | {} | {} |",
                c.claim,
                c.expected,
                c.measured,
                if c.pass { "PASS" } else { "FAIL" }
            );
            total += 1;
            if c.pass {
                passed += 1;
            }
        }
        println!();
    }
    println!("**{passed} / {total} claims hold.**");
    Ok(())
}
