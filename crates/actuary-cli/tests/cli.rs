//! Smoke tests for the `actuary` binary: every subcommand runs on the
//! default library and prints the expected structure.

use std::process::{Command, Output};

fn actuary(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_actuary"))
        .args(args)
        .output()
        .expect("the actuary binary must spawn")
}

fn stdout(args: &[&str]) -> String {
    let out = actuary(args);
    assert!(
        out.status.success(),
        "actuary {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = actuary(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: actuary"));
}

#[test]
fn help_flag_prints_usage_and_succeeds() {
    for invocation in [&["--help"][..], &["-h"], &["help"]] {
        let text = stdout(invocation);
        assert!(text.contains("usage: actuary"), "{invocation:?}: {text}");
        assert!(
            text.contains("repro"),
            "{invocation:?} must list subcommands"
        );
    }
}

#[test]
fn version_flag_prints_version() {
    let text = stdout(&["--version"]);
    assert!(text.starts_with("actuary "), "{text}");
}

#[test]
fn subcommand_help_prints_usage_not_an_error() {
    for invocation in [&["repro", "--help"][..], &["cost", "-h"]] {
        let text = stdout(invocation);
        assert!(text.contains("usage: actuary"), "{invocation:?}: {text}");
    }
}

#[test]
fn help_then_repro_figure_smoke() {
    // The satellite smoke path: `--help` followed by one figure
    // reproduction, neither panicking.
    stdout(&["--help"]);
    let text = stdout(&["repro", "--figure", "4"]);
    assert!(text.contains("Figure 4"), "{text}");
}

#[test]
fn unknown_command_fails_with_message() {
    let out = actuary(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn list_shows_the_library() {
    let text = stdout(&["list"]);
    assert!(text.contains("7 nodes"));
    assert!(text.contains("5nm"));
    assert!(text.contains("2.5D"));
}

#[test]
fn yield_reports_eq1() {
    let text = stdout(&["yield", "--node", "7nm", "--area", "400"]);
    assert!(text.contains("yield (Eq. 1)"));
    assert!(text.contains("dies per wafer"));
}

#[test]
fn yield_requires_node() {
    let out = actuary(&["yield", "--area", "400"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--node"));
}

#[test]
fn cost_prints_both_re_and_nre() {
    let text = stdout(&[
        "cost",
        "--node",
        "5nm",
        "--area",
        "800",
        "--chiplets",
        "2",
        "--integration",
        "mcm",
        "--quantity",
        "2000000",
    ]);
    assert!(text.contains("Cost of Wasted KGD"));
    assert!(text.contains("NRE Cost of D2D Interface"));
    assert!(text.contains("per-unit total"));
}

#[test]
fn sweep_covers_the_area_grid() {
    let text = stdout(&[
        "sweep",
        "--node",
        "5nm",
        "--chiplets",
        "2",
        "--integration",
        "mcm",
    ]);
    assert!(text.contains("100"));
    assert!(text.contains("900"));
    assert!(text.contains("saving"));
}

#[test]
fn partition_recommends() {
    let text = stdout(&[
        "partition",
        "--node",
        "5nm",
        "--area",
        "800",
        "--quantity",
        "10000000",
    ]);
    assert!(text.contains("chiplet"));
    assert!(text.contains("SoC"));
}

#[test]
fn mc_agrees_with_analytic() {
    let text = stdout(&[
        "mc",
        "--node",
        "7nm",
        "--area",
        "150",
        "--chiplets",
        "2",
        "--systems",
        "1500",
    ]);
    assert!(text.contains("monte-carlo"));
    assert!(
        text.contains("agreement within 4 standard errors: yes"),
        "{text}"
    );
}

#[test]
fn repro_figure_2_prints_claims() {
    let text = stdout(&["repro", "--figure", "2"]);
    assert!(text.contains("Figure 2a"));
    assert!(text.contains("[PASS]"));
    assert!(!text.contains("[FAIL]"), "{text}");
}

#[test]
fn repro_figure_8_csv_is_machine_readable() {
    let text = stdout(&["repro", "--figure", "8", "--csv"]);
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "multiplicity,variant,re,re_packaging,nre_modules,nre_chips,nre_packages,nre_d2d,total"
    );
    assert!(text.lines().count() > 10);
}

#[test]
fn repro_rejects_unknown_figure() {
    let out = actuary(&["repro", "--figure", "3"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown figure"));
}

#[test]
fn sensitivity_ranks_parameters() {
    let text = stdout(&[
        "sensitivity",
        "--node",
        "5nm",
        "--area",
        "800",
        "--chiplets",
        "2",
    ]);
    assert!(text.contains("elasticity"));
    assert!(text.contains("defect density"));
    assert!(text.contains("wafer price"));
}

#[test]
fn experiments_emits_markdown_record() {
    let text = stdout(&["experiments"]);
    assert!(text.contains("## Figure 2"));
    assert!(text.contains("## Figure 10"));
    assert!(text.contains("| paper claim |"));
    assert!(!text.contains("| FAIL |"), "all claims must hold:\n{text}");
}

#[test]
fn flags_validation() {
    let out = actuary(&["cost", "--node"]);
    assert!(!out.status.success());
    let out = actuary(&["cost", "node", "5nm"]);
    assert!(!out.status.success());
    let out = actuary(&["cost", "--node", "5nm", "--area", "not-a-number"]);
    assert!(!out.status.success());
}

#[test]
fn misspelled_flag_is_rejected_not_ignored() {
    // Regression: `--quanttiy` used to be dropped silently, so the run
    // proceeded with the default quantity and printed a wrong answer.
    let out = actuary(&[
        "cost",
        "--node",
        "5nm",
        "--area",
        "800",
        "--quanttiy",
        "2000000",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--quanttiy"), "{stderr}");
    assert!(stderr.contains("accepted"), "{stderr}");
    assert!(
        stderr.contains("--quantity"),
        "must list the real flag: {stderr}"
    );
}

#[test]
fn every_subcommand_rejects_foreign_flags() {
    for args in [
        &["list", "--verbose", "x"][..],
        &["yield", "--node", "7nm", "--area", "400", "--quantity", "5"],
        &["sweep", "--node", "5nm", "--area", "800"],
        &[
            "partition",
            "--node",
            "5nm",
            "--area",
            "800",
            "--flow",
            "chip-last",
        ],
        &["explore", "--node", "5nm"],
        &["mc", "--node", "7nm", "--area", "150", "--figure", "2"],
        &["repro", "--figure", "2", "--node", "7nm"],
        &["experiments", "--csv"],
        &[
            "sensitivity",
            "--node",
            "5nm",
            "--area",
            "800",
            "--systems",
            "9",
        ],
        // `serve` rejects foreign flags before ever binding the address.
        &["serve", "--figure", "2"],
    ] {
        let out = actuary(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown flag"), "{args:?}: {stderr}");
    }
}

#[test]
fn explore_summarizes_the_grid() {
    let text = stdout(&[
        "explore",
        "--nodes",
        "7nm,5nm",
        "--areas",
        "400,800",
        "--quantities",
        "2000000",
        "--chiplets",
        "1,2,3",
        "--threads",
        "2",
    ]);
    assert!(text.contains("feasible"), "{text}");
    assert!(text.contains("Pareto front"), "{text}");
    assert!(text.contains("cheapest configuration"), "{text}");
}

#[test]
fn explore_csv_is_byte_identical_across_thread_counts() {
    // The default grid is 1,620 cells — comfortably over the 1,000-cell
    // determinism bar.
    let csv = |threads: &str| stdout(&["explore", "--threads", threads, "--csv"]);
    let serial = csv("1");
    assert_eq!(
        serial.lines().next().unwrap(),
        "node,area_mm2,quantity,integration,chiplets,status,per_unit_usd,re_per_unit_usd,detail"
    );
    assert_eq!(serial.lines().count(), 1_620 + 1);
    assert_eq!(serial, csv("8"), "threads must not change a single byte");
}

#[test]
fn explore_rejects_an_empty_axis() {
    let out = actuary(&["explore", "--nodes", ","]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--nodes"), "{stderr}");
}

#[test]
fn explore_schemes_prints_per_scheme_winner_tables() {
    let text = stdout(&[
        "explore",
        "--nodes",
        "7nm",
        "--areas",
        "400,800",
        "--quantities",
        "500000",
        "--schemes",
        "scms,fsmc",
        "--threads",
        "2",
    ]);
    assert!(text.contains("[scms] cheapest configuration"), "{text}");
    assert!(text.contains("[fsmc] cheapest configuration"), "{text}");
    assert!(
        !text.contains("[ocme]"),
        "unrequested schemes must not appear: {text}"
    );
    assert!(text.contains("Pareto front"), "{text}");
}

#[test]
fn explore_schemes_csv_carries_the_new_axes() {
    let csv = stdout(&[
        "explore",
        "--nodes",
        "7nm",
        "--areas",
        "400",
        "--quantities",
        "500000",
        "--schemes",
        "all",
        "--flow-axis",
        "--threads",
        "1",
        "--csv",
    ]);
    assert_eq!(
        csv.lines().next().unwrap(),
        "node,area_mm2,quantity,integration,chiplets,flow,scheme,scheme_params,status,\
         per_unit_usd,re_per_unit_usd,detail"
    );
    // 1 node × 1 area × 1 quantity × 4 integrations × 5 counts × 2 flows ×
    // 4 schemes.
    assert_eq!(csv.lines().count(), 4 * 5 * 2 * 4 + 1);
    assert!(csv.contains(",chip-first,"), "{csv}");
    assert!(csv.contains(",fsmc,"), "{csv}");
}

#[test]
fn explore_out_streams_the_grid_to_a_file() {
    let path = std::env::temp_dir().join(format!("actuary-explore-{}.csv", std::process::id()));
    let path_str = path.to_str().unwrap();
    let text = stdout(&[
        "explore",
        "--nodes",
        "7nm",
        "--areas",
        "400",
        "--quantities",
        "500000,2000000",
        "--threads",
        "1",
        "--out",
        path_str,
    ]);
    assert!(text.contains("wrote 40 grid cells"), "{text}");
    let written = std::fs::read_to_string(&path).expect("the --out file must exist");
    std::fs::remove_file(&path).ok();
    // Identical bytes to the stdout --csv path.
    let csv = stdout(&[
        "explore",
        "--nodes",
        "7nm",
        "--areas",
        "400",
        "--quantities",
        "500000,2000000",
        "--threads",
        "1",
        "--csv",
    ]);
    assert_eq!(written, csv);
}

#[test]
fn explore_pareto_out_streams_the_program_front() {
    let path = std::env::temp_dir().join(format!("actuary-pareto-{}.csv", std::process::id()));
    let path_str = path.to_str().unwrap();
    let text = stdout(&[
        "explore",
        "--nodes",
        "7nm",
        "--areas",
        "400",
        "--quantities",
        "500000,2000000",
        "--chiplets",
        "1,2",
        "--threads",
        "1",
        "--pareto-out",
        path_str,
    ]);
    assert!(text.contains("program-Pareto"), "{text}");
    let written = std::fs::read_to_string(&path).expect("the --pareto-out file must exist");
    assert_eq!(
        written.lines().next().unwrap(),
        "node,area_mm2,quantity,integration,chiplets,program_total_usd,per_unit_usd"
    );
    assert!(written.lines().count() >= 2, "{written}");

    // The portfolio engine's front carries the scheme axis.
    let scheme_text = stdout(&[
        "explore",
        "--nodes",
        "7nm",
        "--areas",
        "400",
        "--quantities",
        "500000",
        "--chiplets",
        "1,2",
        "--schemes",
        "scms",
        "--threads",
        "1",
        "--pareto-out",
        path_str,
    ]);
    assert!(scheme_text.contains("program-Pareto"), "{scheme_text}");
    let written = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        written.lines().next().unwrap(),
        "scheme,scheme_params,node,area_mm2,quantity,integration,chiplets,flow,\
         program_total_usd,per_unit_usd"
    );
    assert!(written.contains("scms"), "{written}");
}

#[test]
fn run_writes_selected_outputs_and_sweeps_as_artifacts() {
    let dir = std::env::temp_dir().join(format!("actuary-artifacts-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("study.toml");
    std::fs::write(
        &path,
        concat!(
            "name = \"study\"\n",
            "[[sweep]]\n",
            "name = \"fig4\"\n",
            "node = \"7nm\"\n",
            "chiplets = 2\n",
            "integrations = [\"soc\", \"mcm\"]\n",
            "areas_mm2 = [200, 800]\n",
            "[explore]\n",
            "name = \"grid\"\n",
            "nodes = [\"7nm\"]\n",
            "areas_mm2 = [400.0]\n",
            "quantities = [500000, 2000000]\n",
            "integrations = [\"soc\", \"mcm\"]\n",
            "chiplets = [1, 2]\n",
            "outputs = [\"grid\", \"winners\", \"pareto\", \"pareto_program\"]\n",
        ),
    )
    .unwrap();
    let out_dir = dir.join("out");
    stdout(&[
        "run",
        path.to_str().unwrap(),
        "--out-dir",
        out_dir.to_str().unwrap(),
    ]);
    for file in [
        "study-grid-grid.csv",
        "study-grid-winners.csv",
        "study-grid-pareto.csv",
        "study-grid-pareto_program.csv",
        "study-fig4-sweep.csv",
    ] {
        assert!(out_dir.join(file).exists(), "{file} must be written");
    }
    let sweep = std::fs::read_to_string(out_dir.join("study-fig4-sweep.csv")).unwrap();
    assert!(sweep.starts_with("area_mm2,SoC,MCM\n"), "{sweep}");

    // --csv concatenates the same artifacts on stdout, in order.
    let csv = stdout(&["run", path.to_str().unwrap(), "--csv"]);
    assert!(csv.starts_with("node,area_mm2,"), "{csv}");
    assert!(csv.contains("area_mm2,SoC,MCM"), "{csv}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explore_rejects_csv_and_out_together() {
    let out = actuary(&["explore", "--csv", "--out", "/tmp/unused.csv"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--csv"), "{stderr}");
}

#[test]
fn explore_rejects_flow_and_flow_axis_together() {
    let out = actuary(&["explore", "--flow", "chip-first", "--flow-axis"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--flow"), "{stderr}");
}

#[test]
fn explore_rejects_an_unknown_scheme() {
    let out = actuary(&["explore", "--schemes", "scsm"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown reuse scheme"), "{stderr}");
}

#[test]
fn explore_fsmc_situation_axis_lands_in_the_csv() {
    let csv = stdout(&[
        "explore",
        "--nodes",
        "7nm",
        "--areas",
        "320",
        "--quantities",
        "500000",
        "--integrations",
        "mcm",
        "--chiplets",
        "2",
        "--schemes",
        "fsmc",
        "--fsmc-situations",
        "2x2,4x4",
        "--threads",
        "1",
        "--csv",
    ]);
    assert!(csv.contains("\"k=2,n=2\""), "{csv}");
    assert!(csv.contains("\"k=4,n=4\""), "{csv}");
    // One cell per situation plus the header.
    assert_eq!(csv.lines().count(), 3, "{csv}");
}

#[test]
fn explore_ocme_center_axis_accepts_none_and_nodes() {
    let csv = stdout(&[
        "explore",
        "--nodes",
        "7nm",
        "--areas",
        "160",
        "--quantities",
        "500000",
        "--integrations",
        "mcm",
        "--chiplets",
        "1",
        "--schemes",
        "ocme",
        "--ocme-centers",
        "none,14nm",
        "--package-reuse",
        "--threads",
        "1",
        "--csv",
    ]);
    assert!(csv.contains("center=14nm"), "{csv}");
    assert_eq!(csv.lines().count(), 3, "{csv}");
}

#[test]
fn explore_rejects_a_malformed_fsmc_situation() {
    let out = actuary(&["explore", "--fsmc-situations", "4by6"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("KxN"), "{stderr}");
}

#[test]
fn run_executes_a_scenario_file() {
    let dir = std::env::temp_dir().join(format!("actuary-run-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mini.toml");
    std::fs::write(
        &path,
        concat!(
            "name = \"mini\"\n",
            "[nodes.7nm]\n",
            "wafer_price_usd = 11500\n",
            "[[portfolio]]\n",
            "name = \"j\"\n",
            "scheme = \"scms\"\n",
            "node = \"7nm\"\n",
            "chiplet_module_area_mm2 = 200.0\n",
            "multiplicities = [1, 2]\n",
            "integration = \"mcm\"\n",
            "quantity = 500000\n",
        ),
    )
    .unwrap();
    let text = stdout(&["run", path.to_str().unwrap()]);
    assert!(text.contains("scenario `mini`"), "{text}");
    assert!(text.contains("2X"), "{text}");

    // --csv emits the machine-readable cost rows.
    let csv = stdout(&["run", path.to_str().unwrap(), "--csv"]);
    assert!(csv.starts_with("job,system,quantity,"), "{csv}");
    assert_eq!(csv.lines().count(), 3);

    // --out-dir writes the per-scenario files.
    let out_dir = dir.join("out");
    stdout(&[
        "run",
        path.to_str().unwrap(),
        "--out-dir",
        out_dir.to_str().unwrap(),
    ]);
    assert!(out_dir.join("mini-costs.csv").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_reports_scenario_errors_with_positions() {
    let dir = std::env::temp_dir().join(format!("actuary-run-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.toml");
    std::fs::write(&path, "name = \"bad\"\nquanttiy = 1\n").unwrap();
    let out = actuary(&["run", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2, column 1") && stderr.contains("quanttiy"),
        "{stderr}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_rejects_unknown_flags_and_missing_path() {
    let out = actuary(&["run"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a scenario file"));

    let out = actuary(&["run", "x.toml", "--quanttiy", "5"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --quanttiy"), "{stderr}");
}

#[test]
fn explore_rejects_scheme_parameter_flags_without_their_scheme() {
    // The axis flags act only through their scheme; accepting them on a
    // grid that never builds that scheme would silently drop the axis.
    for args in [
        &["explore", "--fsmc-situations", "2x2"][..],
        &["explore", "--ocme-centers", "14nm"],
        &["explore", "--package-reuse"],
        &["explore", "--schemes", "scms", "--fsmc-situations", "2x2"],
        &["explore", "--schemes", "fsmc", "--ocme-centers", "14nm"],
    ] {
        let out = actuary(args);
        assert!(!out.status.success(), "{args:?} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--schemes"), "{args:?}: {stderr}");
    }
}
