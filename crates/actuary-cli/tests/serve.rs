//! Integration tests of `actuary serve` against the real binary over real
//! TCP: the streamed response must be byte-identical to the scenario
//! subsystem's artifact CSV, diagnostics must carry line:column, and two
//! concurrent clients must both be answered.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

/// A running `actuary serve` child on an ephemeral port, killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start() -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_actuary"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("the actuary binary must spawn");
        // The startup handshake: the first stdout line names the bound
        // address (the ephemeral port the OS chose).
        let stdout = child.stdout.as_mut().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("the server must print its address");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in {line:?}"))
            .to_string();
        Server { child, addr }
    }

    /// Sends raw HTTP/1.1 bytes, reads to EOF, returns (status line,
    /// header block, raw body bytes).
    fn request(&self, raw: &[u8]) -> (String, String, Vec<u8>) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream.write_all(raw).expect("write request");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read response");
        let head_end = response
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response head");
        let head = String::from_utf8_lossy(&response[..head_end]).into_owned();
        let (status, headers) = head.split_once("\r\n").unwrap_or((head.as_str(), ""));
        (
            status.to_string(),
            headers.to_string(),
            response[head_end + 4..].to_vec(),
        )
    }

    fn post_run(&self, body: &str) -> (String, String, Vec<u8>) {
        let raw = format!(
            "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        );
        self.request(raw.as_bytes())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Decodes an HTTP/1.1 chunked body; panics on framing errors or a
/// missing terminal chunk (a truncated stream must fail the test).
fn dechunk(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut rest = body;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size_text = std::str::from_utf8(&rest[..line_end]).expect("chunk size is ASCII");
        let size = usize::from_str_radix(size_text.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size {size_text:?}"));
        rest = &rest[line_end + 2..];
        if size == 0 {
            assert_eq!(rest, b"\r\n", "terminal chunk must end the body");
            return out;
        }
        out.extend_from_slice(&rest[..size]);
        assert_eq!(&rest[size..size + 2], b"\r\n", "chunk terminator");
        rest = &rest[size + 2..];
    }
}

fn fig8_toml() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/fig8.toml"
    );
    std::fs::read_to_string(path).expect("the bundled fig8 scenario exists")
}

#[test]
fn healthz_answers_ok() {
    let server = Server::start();
    let (status, _, body) = server.request(
        format!(
            "GET /healthz HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            server.addr
        )
        .as_bytes(),
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, b"ok\n");
}

#[test]
fn posted_scenario_streams_the_exact_artifact_csv() {
    let server = Server::start();
    let toml = fig8_toml();
    let (status, headers, body) = server.post_run(&toml);
    assert_eq!(status, "HTTP/1.1 200 OK", "{headers}");
    assert!(headers.contains("Transfer-Encoding: chunked"), "{headers}");
    assert!(headers.contains("Content-Type: text/csv"), "{headers}");

    // The reference bytes straight from the scenario subsystem — the
    // server must add zero model code and zero formatting of its own.
    let run = actuary_scenario::Scenario::from_toml(&toml)
        .expect("fig8 parses")
        .run(1)
        .expect("fig8 runs");
    let mut expected = String::new();
    for artifact in run.artifacts() {
        expected.push_str(&artifact.csv());
    }
    assert_eq!(dechunk(&body), expected.as_bytes());
}

#[test]
fn malformed_toml_is_a_400_with_the_line_and_column() {
    let server = Server::start();
    let (status, _, body) = server.post_run("name = \"bad\"\nquanttiy = 1\n");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("line 2, column 1"), "{text}");
    assert!(text.contains("quanttiy"), "{text}");
}

#[test]
fn unknown_paths_are_404() {
    let server = Server::start();
    let (status, _, body) = server.request(
        format!(
            "GET /nope HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            server.addr
        )
        .as_bytes(),
    );
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(String::from_utf8_lossy(&body).contains("POST /run"));
}

#[test]
fn two_concurrent_clients_both_get_complete_answers() {
    let server = Server::start();
    let toml = fig8_toml();
    let expected = {
        let run = actuary_scenario::Scenario::from_toml(&toml)
            .unwrap()
            .run(1)
            .unwrap();
        let mut out = String::new();
        for artifact in run.artifacts() {
            out.push_str(&artifact.csv());
        }
        out.into_bytes()
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (server, toml) = (&server, &toml);
                scope.spawn(move || server.post_run(toml))
            })
            .collect();
        for handle in handles {
            let (status, _, body) = handle.join().expect("client thread");
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert_eq!(dechunk(&body), expected);
        }
    });
}
