//! Integration tests of `actuary serve` against the real binary over real
//! TCP: the streamed response must be byte-identical to the scenario
//! subsystem's artifact output (in both encodings), keep-alive must reuse
//! one connection, SIGTERM must drain in-flight requests, the result
//! cache must replay byte-identically, and the rate limiter must answer
//! `429` with `Retry-After`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A running `actuary serve` child on an ephemeral port, killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start() -> Server {
        Server::start_with(&[])
    }

    fn start_with(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_actuary"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("the actuary binary must spawn");
        // The startup handshake: the first stdout line names the bound
        // address (the ephemeral port the OS chose).
        let stdout = child.stdout.as_mut().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("the server must print its address");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in {line:?}"))
            .to_string();
        Server { child, addr }
    }

    /// Sends raw HTTP/1.1 bytes, reads to EOF, returns (status line,
    /// header block, raw body bytes).
    fn request(&self, raw: &[u8]) -> (String, String, Vec<u8>) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream.write_all(raw).expect("write request");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read response");
        split_response(&response)
    }

    fn post_run(&self, body: &str) -> (String, String, Vec<u8>) {
        let raw = format!(
            "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        );
        self.request(raw.as_bytes())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Splits one complete response into (status line, header block, raw
/// body bytes).
fn split_response(response: &[u8]) -> (String, String, Vec<u8>) {
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = String::from_utf8_lossy(&response[..head_end]).into_owned();
    let (status, headers) = head.split_once("\r\n").unwrap_or((head.as_str(), ""));
    (
        status.to_string(),
        headers.to_string(),
        response[head_end + 4..].to_vec(),
    )
}

/// Reads exactly one response off a (possibly still-open) keep-alive
/// connection: the head, then a chunked or `Content-Length`-framed body.
/// Returns (status line, header block, *decoded* body bytes).
fn read_response(reader: &mut impl BufRead) -> (String, String, Vec<u8>) {
    let mut head = Vec::new();
    while !head.ends_with(b"\r\n\r\n") {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte).expect("response head byte");
        head.push(byte[0]);
    }
    let text = String::from_utf8_lossy(&head[..head.len() - 4]).into_owned();
    let mut parts = text.splitn(2, "\r\n");
    let status = parts.next().unwrap_or("").to_string();
    let headers = parts.next().unwrap_or("").to_string();
    let mut body = Vec::new();
    if headers.contains("Transfer-Encoding: chunked") {
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("chunk size line");
            let size = usize::from_str_radix(line.trim(), 16)
                .unwrap_or_else(|_| panic!("bad chunk size {line:?}"));
            let mut chunk = vec![0u8; size + 2];
            reader.read_exact(&mut chunk).expect("chunk payload");
            assert_eq!(&chunk[size..], b"\r\n", "chunk terminator");
            if size == 0 {
                break;
            }
            body.extend_from_slice(&chunk[..size]);
        }
    } else if let Some(length) = headers
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
    {
        let length: usize = length.trim().parse().expect("Content-Length value");
        body = vec![0u8; length];
        reader.read_exact(&mut body).expect("fixed-length body");
    }
    (status, headers, body)
}

/// Decodes an HTTP/1.1 chunked body; panics on framing errors or a
/// missing terminal chunk (a truncated stream must fail the test).
fn dechunk(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut rest = body;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size_text = std::str::from_utf8(&rest[..line_end]).expect("chunk size is ASCII");
        let size = usize::from_str_radix(size_text.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size {size_text:?}"));
        rest = &rest[line_end + 2..];
        if size == 0 {
            assert_eq!(rest, b"\r\n", "terminal chunk must end the body");
            return out;
        }
        out.extend_from_slice(&rest[..size]);
        assert_eq!(&rest[size..size + 2], b"\r\n", "chunk terminator");
        rest = &rest[size + 2..];
    }
}

fn fig8_toml() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/fig8.toml"
    );
    std::fs::read_to_string(path).expect("the bundled fig8 scenario exists")
}

/// A scenario small enough that a request completes in milliseconds.
const TINY_SCENARIO: &str = concat!(
    "name = \"t\"\n",
    "[[yield]]\n",
    "name = \"y\"\n",
    "techs = [\"7nm\"]\n",
    "areas_mm2 = [100]\n",
);

#[test]
fn healthz_answers_ok() {
    let server = Server::start();
    let (status, _, body) = server.request(
        format!(
            "GET /healthz HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            server.addr
        )
        .as_bytes(),
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, b"ok\n");
}

#[test]
fn posted_scenario_streams_the_exact_artifact_csv() {
    let server = Server::start();
    let toml = fig8_toml();
    let (status, headers, body) = server.post_run(&toml);
    assert_eq!(status, "HTTP/1.1 200 OK", "{headers}");
    assert!(headers.contains("Transfer-Encoding: chunked"), "{headers}");
    assert!(headers.contains("Content-Type: text/csv"), "{headers}");

    // The reference bytes straight from the scenario subsystem — the
    // server must add zero model code and zero formatting of its own.
    let run = actuary_scenario::Scenario::from_toml(&toml)
        .expect("fig8 parses")
        .run(1)
        .expect("fig8 runs");
    let mut expected = String::new();
    for artifact in run.artifacts() {
        expected.push_str(&artifact.csv());
    }
    assert_eq!(dechunk(&body), expected.as_bytes());
}

#[test]
fn accept_json_streams_the_jsonl_encoding() {
    let server = Server::start();
    let toml = fig8_toml();
    let raw = format!(
        "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\
         Accept: application/json\r\nConnection: close\r\n\r\n{}",
        server.addr,
        toml.len(),
        toml
    );
    let (status, headers, body) = server.request(raw.as_bytes());
    assert_eq!(status, "HTTP/1.1 200 OK", "{headers}");
    assert!(
        headers.contains("Content-Type: application/jsonl"),
        "{headers}"
    );
    let run = actuary_scenario::Scenario::from_toml(&toml)
        .expect("fig8 parses")
        .run(1)
        .expect("fig8 runs");
    let mut expected = String::new();
    for artifact in run.artifacts() {
        expected.push_str(&artifact.jsonl());
    }
    assert_eq!(dechunk(&body), expected.as_bytes());
}

#[test]
fn keep_alive_serves_two_requests_on_one_connection() {
    let server = Server::start();
    let toml = fig8_toml();
    let request = format!(
        "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n{}",
        server.addr,
        toml.len(),
        toml
    );
    let mut stream = TcpStream::connect(&server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone the socket"));
    stream.write_all(request.as_bytes()).expect("first request");
    let (status1, headers1, body1) = read_response(&mut reader);
    assert_eq!(status1, "HTTP/1.1 200 OK", "{headers1}");
    assert!(headers1.contains("Connection: keep-alive"), "{headers1}");
    // Same socket, second request: the replay (a cache hit) must be
    // byte-identical to the cold answer.
    stream
        .write_all(request.as_bytes())
        .expect("second request");
    let (status2, headers2, body2) = read_response(&mut reader);
    assert_eq!(status2, "HTTP/1.1 200 OK", "{headers2}");
    assert_eq!(body1, body2, "keep-alive replay must be byte-identical");
}

#[test]
fn repeated_scenarios_hit_the_cache_and_statz_reports_it() {
    let server = Server::start();
    let toml = fig8_toml();
    let (status1, _, body1) = server.post_run(&toml);
    let (status2, _, body2) = server.post_run(&toml);
    assert_eq!(status1, "HTTP/1.1 200 OK");
    assert_eq!(status2, "HTTP/1.1 200 OK");
    assert_eq!(
        dechunk(&body1),
        dechunk(&body2),
        "a cache hit must replay the cold bytes exactly"
    );
    let (status, headers, body) = server.request(
        format!(
            "GET /statz HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            server.addr
        )
        .as_bytes(),
    );
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        headers.contains("Content-Type: application/json"),
        "{headers}"
    );
    let text = String::from_utf8_lossy(&body);
    assert!(
        text.contains("\"result_cache\":{\"hits\":1,\"misses\":1"),
        "{text}"
    );
    // The statz request itself is the third counted request.
    assert!(text.contains("\"requests_total\":3"), "{text}");
    assert!(text.contains("\"core_cache\":"), "{text}");
}

#[test]
fn rate_limited_clients_get_429_with_retry_after() {
    let server = Server::start_with(&["--rate-limit", "1"]);
    let mut saw_429 = false;
    for _ in 0..5 {
        let (status, headers, body) = server.post_run(TINY_SCENARIO);
        if status.starts_with("HTTP/1.1 429 ") {
            assert!(headers.contains("Retry-After: "), "{headers}");
            assert!(
                String::from_utf8_lossy(&body).contains("rate limit"),
                "{body:?}"
            );
            saw_429 = true;
            break;
        }
        assert_eq!(status, "HTTP/1.1 200 OK");
    }
    assert!(
        saw_429,
        "five back-to-back requests at --rate-limit 1 must trip the limiter"
    );
}

#[cfg(unix)]
#[test]
fn sigterm_drains_the_in_flight_request_then_exits_cleanly() {
    let mut server = Server::start();
    let toml = fig8_toml();
    let request = format!(
        "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        server.addr,
        toml.len(),
        toml
    );
    let mut stream = TcpStream::connect(&server.addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("write request");
    // Give the worker a moment to pick the request up, then ask the
    // server to stop while the run is (most likely) still in flight.
    std::thread::sleep(Duration::from_millis(50));
    let killed = Command::new("kill")
        .arg("-TERM")
        .arg(server.child.id().to_string())
        .status()
        .expect("kill(1) exists on unix");
    assert!(killed.success());
    // The in-flight request must still be answered in full…
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let (status, _, body) = split_response(&response);
    assert_eq!(status, "HTTP/1.1 200 OK", "drained response must complete");
    // …with an intact terminal chunk (dechunk panics on truncation)…
    let decoded = dechunk(&body);
    assert!(!decoded.is_empty());
    // …and the process must then exit cleanly on its own.
    let exit = server.child.wait().expect("server exits after SIGTERM");
    assert!(exit.success(), "graceful shutdown exits 0, got {exit:?}");
}

#[test]
fn malformed_toml_is_a_400_with_the_line_and_column() {
    let server = Server::start();
    let (status, _, body) = server.post_run("name = \"bad\"\nquanttiy = 1\n");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let text = String::from_utf8_lossy(&body);
    assert!(text.contains("line 2, column 1"), "{text}");
    assert!(text.contains("quanttiy"), "{text}");
}

#[test]
fn unknown_paths_are_404_and_unknown_methods_405() {
    let server = Server::start();
    let (status, _, body) = server.request(
        format!(
            "GET /nope HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            server.addr
        )
        .as_bytes(),
    );
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(String::from_utf8_lossy(&body).contains("POST /run"));

    let (status, _, _) = server.request(
        format!(
            "PUT /run HTTP/1.1\r\nHost: {}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            server.addr
        )
        .as_bytes(),
    );
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
}

#[test]
fn two_concurrent_clients_both_get_complete_answers() {
    let server = Server::start();
    let toml = fig8_toml();
    let expected = {
        let run = actuary_scenario::Scenario::from_toml(&toml)
            .unwrap()
            .run(1)
            .unwrap();
        let mut out = String::new();
        for artifact in run.artifacts() {
            out.push_str(&artifact.csv());
        }
        out.into_bytes()
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (server, toml) = (&server, &toml);
                scope.spawn(move || server.post_run(toml))
            })
            .collect();
        for handle in handles {
            let (status, _, body) = handle.join().expect("client thread");
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert_eq!(dechunk(&body), expected);
        }
    });
}
