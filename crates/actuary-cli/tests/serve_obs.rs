//! Integration tests of the observability surface against the real
//! binary over real TCP: `/metricsz` must serve valid Prometheus text
//! exposition including the engine phase histogram, `/statz` must agree
//! with it (same registry), and turning logging all the way up must not
//! perturb a single artifact byte.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

/// A running `actuary serve` child on an ephemeral port, killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start_with(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_actuary"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("the actuary binary must spawn");
        let stdout = child.stdout.as_mut().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("the server must print its address");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in {line:?}"))
            .to_string();
        Server { child, addr }
    }

    fn request(&self, raw: &[u8]) -> (String, String, Vec<u8>) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream.write_all(raw).expect("write request");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read response");
        let head_end = response
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response head");
        let head = String::from_utf8_lossy(&response[..head_end]).into_owned();
        let (status, headers) = head.split_once("\r\n").unwrap_or((head.as_str(), ""));
        (
            status.to_string(),
            headers.to_string(),
            response[head_end + 4..].to_vec(),
        )
    }

    fn post_run(&self, body: &str) -> (String, String, Vec<u8>) {
        let raw = format!(
            "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        );
        self.request(raw.as_bytes())
    }

    fn get(&self, path: &str) -> (String, String, Vec<u8>) {
        let raw = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        );
        self.request(raw.as_bytes())
    }

    /// Kills the child and returns everything it wrote to stderr.
    fn stop_and_read_stderr(mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let mut err = String::new();
        if let Some(stderr) = self.child.stderr.as_mut() {
            let _ = stderr.read_to_string(&mut err);
        }
        err
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Decodes an HTTP/1.1 chunked body; panics on framing errors.
fn dechunk(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut rest = body;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size_text = std::str::from_utf8(&rest[..line_end]).expect("chunk size is ASCII");
        let size = usize::from_str_radix(size_text.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size {size_text:?}"));
        rest = &rest[line_end + 2..];
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    }
}

/// An explore scenario small enough to finish in milliseconds but real
/// enough to exercise the engine phases (classify → evaluate → amortize).
const EXPLORE_SCENARIO: &str = concat!(
    "name = \"obs\"\n",
    "[explore]\n",
    "nodes = [\"7nm\"]\n",
    "areas_mm2 = [100.0, 200.0]\n",
    "quantities = [10000]\n",
    "integrations = [\"soc\"]\n",
    "chiplets = [1, 2]\n",
);

#[test]
fn metricsz_over_tcp_is_valid_exposition_with_engine_phase_spans() {
    let server = Server::start_with(&[]);
    let (status, _, _) = server.post_run(EXPLORE_SCENARIO);
    assert_eq!(status, "HTTP/1.1 200 OK");

    let (status, headers, body) = server.get("/metricsz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(
        headers.contains("Content-Type: text/plain; version=0.0.4"),
        "{headers}"
    );
    let text = String::from_utf8_lossy(&body).into_owned();
    actuary_obs::expo::validate(&text).expect("served exposition must validate");
    // The request-path instruments…
    assert!(
        text.contains("actuary_http_request_seconds_bucket{method=\"POST\",route=\"/run\","),
        "{text}"
    );
    assert!(
        text.contains("actuary_result_cache_misses_total 1"),
        "{text}"
    );
    // …and the engine phase spans recorded while the explore ran.
    for phase in [
        "scenario.explore",
        "dse.classify",
        "dse.evaluate",
        "dse.amortize",
    ] {
        assert!(
            text.contains(&format!(
                "actuary_engine_phase_seconds_bucket{{phase=\"{phase}\",le=\"+Inf\"}} 1"
            )),
            "missing phase {phase} in:\n{text}"
        );
    }
}

#[test]
fn statz_and_metricsz_agree_over_tcp() {
    let server = Server::start_with(&[]);
    let (status, _, _) = server.post_run(EXPLORE_SCENARIO);
    assert_eq!(status, "HTTP/1.1 200 OK");
    let (status, _, _) = server.post_run(EXPLORE_SCENARIO);
    assert_eq!(status, "HTTP/1.1 200 OK");

    let (_, _, statz) = server.get("/statz");
    let statz = String::from_utf8_lossy(&statz).into_owned();
    assert!(
        statz.contains("\"result_cache\":{\"hits\":1,\"misses\":1"),
        "{statz}"
    );

    let (_, _, metricsz) = server.get("/metricsz");
    let metricsz = String::from_utf8_lossy(&metricsz).into_owned();
    assert!(
        metricsz.contains("actuary_result_cache_hits_total 1"),
        "{metricsz}"
    );
    assert!(
        metricsz.contains("actuary_result_cache_misses_total 1"),
        "{metricsz}"
    );
    // Two runs + the statz + this metricsz request itself.
    assert!(
        metricsz.contains("actuary_http_requests_total 4"),
        "{metricsz}"
    );
}

#[test]
fn debug_json_logging_does_not_perturb_artifact_bytes() {
    // The determinism claim, end to end: every instrument armed, log
    // firehose on, and the served bytes still match the scenario
    // subsystem byte for byte.
    let server = Server::start_with(&["--log-level", "debug", "--log-format", "json"]);
    let (status, _, body) = server.post_run(EXPLORE_SCENARIO);
    assert_eq!(status, "HTTP/1.1 200 OK");

    let run = actuary_scenario::Scenario::from_toml(EXPLORE_SCENARIO)
        .expect("scenario parses")
        .run(1)
        .expect("scenario runs");
    let mut expected = String::new();
    for artifact in run.artifacts() {
        expected.push_str(&artifact.csv());
    }
    assert_eq!(
        dechunk(&body),
        expected.as_bytes(),
        "observability must stay off the result path"
    );

    // And the firehose actually fired: structured JSON events for the
    // request and the span closings are on stderr.
    let stderr = server.stop_and_read_stderr();
    assert!(stderr.contains("\"event\":\"http.request\""), "{stderr}");
    assert!(stderr.contains("\"event\":\"span.close\""), "{stderr}");
    assert!(stderr.contains("\"phase\":\"dse.classify\""), "{stderr}");
}
