use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::{Area, Money, Prob};
use actuary_yield::{DefectDensity, NegativeBinomial, WaferSpec, YieldModel};

use crate::d2d::D2dSpec;
use crate::error::TechError;

/// Identifier of a process node, e.g. `"7nm"` or `"12nm"`.
///
/// # Examples
///
/// ```
/// use actuary_tech::NodeId;
///
/// let id = NodeId::new("7nm");
/// assert_eq!(id.as_str(), "7nm");
/// assert_eq!(id.to_string(), "7nm");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(String);

impl NodeId {
    /// Creates a node id from any string-like value.
    pub fn new(id: impl Into<String>) -> Self {
        NodeId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId::new(s)
    }
}

impl From<String> for NodeId {
    fn from(s: String) -> Self {
        NodeId(s)
    }
}

impl AsRef<str> for NodeId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Per-area and fixed NRE cost factors of a process node (the `K` and `C`
/// constants of the paper's Eq. (6)).
///
/// * `k_module` — NRE per mm² of *module* design: RTL plus block-level
///   verification (`K_m`).
/// * `k_chip` — NRE per mm² of *chip-level* work: system verification and
///   physical design (`K_c`).
/// * `mask_set` + `ip_license` — the fixed per-chip cost `C` (full mask set,
///   IP licensing), paid once for every distinct chip taped out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NreFactors {
    /// `K_m`: module design + block verification, $ per mm².
    pub k_module: Money,
    /// `K_c`: system verification + chip physical design, $ per mm².
    pub k_chip: Money,
    /// Full mask-set price (part of the fixed per-chip `C`).
    pub mask_set: Money,
    /// IP licensing and other fixed per-chip costs (rest of `C`).
    pub ip_license: Money,
}

impl NreFactors {
    /// The total fixed per-chip NRE `C = mask set + IP licensing`.
    pub fn fixed_per_chip(&self) -> Money {
        self.mask_set + self.ip_license
    }
}

/// One silicon process node with its manufacturing and NRE parameters.
///
/// Constructed through [`ProcessNode::builder`]; prefabricated nodes come
/// from [`crate::TechLibrary::paper_defaults`].
///
/// # Examples
///
/// ```
/// use actuary_units::{Area, Money};
/// use actuary_tech::ProcessNode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let node = ProcessNode::builder("7nm")
///     .defect_density(0.09)
///     .cluster(10.0)
///     .wafer_price(Money::from_usd(9_346.0)?)
///     .k_module(Money::from_usd(550_000.0)?)
///     .k_chip(Money::from_usd(330_000.0)?)
///     .mask_set(Money::from_musd(10.0)?)
///     .ip_license(Money::from_musd(4.0)?)
///     .relative_density(2.8)
///     .build()?;
/// let y = node.die_yield(Area::from_mm2(100.0)?);
/// assert!(y.value() > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessNode {
    id: NodeId,
    defect_density: DefectDensity,
    cluster: f64,
    wafer_price: Money,
    wafer: WaferSpec,
    nre: NreFactors,
    relative_density: f64,
    d2d: D2dSpec,
}

impl ProcessNode {
    /// Starts building a node with the given id.
    pub fn builder(id: impl Into<NodeId>) -> ProcessNodeBuilder {
        ProcessNodeBuilder::new(id)
    }

    /// The node id.
    pub fn id(&self) -> &NodeId {
        &self.id
    }

    /// Defect density `D` of Eq. (1).
    pub fn defect_density(&self) -> DefectDensity {
        self.defect_density
    }

    /// Cluster parameter `c` of Eq. (1).
    pub fn cluster(&self) -> f64 {
        self.cluster
    }

    /// Price of one raw wafer.
    pub fn wafer_price(&self) -> Money {
        self.wafer_price
    }

    /// Wafer geometry used by this node.
    pub fn wafer(&self) -> WaferSpec {
        self.wafer
    }

    /// NRE cost factors.
    pub fn nre(&self) -> &NreFactors {
        &self.nre
    }

    /// Transistor density relative to the 14 nm reference (1.0). Used to
    /// re-scale module areas when porting a module across nodes
    /// (heterogeneity studies, Figure 5 and 9).
    pub fn relative_density(&self) -> f64 {
        self.relative_density
    }

    /// D2D interface parameters at this node.
    pub fn d2d(&self) -> &D2dSpec {
        &self.d2d
    }

    /// The negative-binomial yield model configured for this node.
    pub fn yield_model(&self) -> NegativeBinomial {
        NegativeBinomial::new(self.cluster).expect("cluster parameter validated at construction")
    }

    /// Die yield for a die of the given area, per Eq. (1).
    pub fn die_yield(&self, die: Area) -> Prob {
        self.yield_model().die_yield(self.defect_density, die)
    }

    /// Cost of one raw (unyielded) die of the given area.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Yield`] if the die does not fit the wafer.
    pub fn raw_die_cost(&self, die: Area) -> Result<Money, TechError> {
        Ok(self.wafer.raw_die_cost(self.wafer_price, die)?)
    }

    /// Effective cost of one *good* die: `raw / yield`.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Yield`] if the die does not fit the wafer, or
    /// [`TechError::Unit`] if the yield underflows to zero.
    pub fn yielded_die_cost(&self, die: Area) -> Result<Money, TechError> {
        let raw = self.raw_die_cost(die)?;
        let y = self.die_yield(die);
        Ok(raw * y.reciprocal()?)
    }

    /// Raw-wafer cost per usable mm² — the paper's Figure 2 normalization
    /// basis for this node.
    pub fn cost_per_mm2(&self) -> Money {
        self.wafer.cost_per_usable_mm2(self.wafer_price)
    }

    /// Re-scales an area designed at `from` node to this node according to
    /// the relative transistor densities (same transistor count, different
    /// footprint).
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Unit`] if the scaled area is invalid.
    pub fn port_area_from(&self, area: Area, from: &ProcessNode) -> Result<Area, TechError> {
        let factor = from.relative_density / self.relative_density;
        Ok(area.scaled(factor)?)
    }
}

impl fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (D={}, c={}, wafer {})",
            self.id, self.defect_density, self.cluster, self.wafer_price
        )
    }
}

/// Builder for [`ProcessNode`] (see C-BUILDER).
#[derive(Debug, Clone)]
pub struct ProcessNodeBuilder {
    id: NodeId,
    defect_density: Option<f64>,
    cluster: f64,
    wafer_price: Option<Money>,
    wafer: Option<WaferSpec>,
    k_module: Option<Money>,
    k_chip: Option<Money>,
    mask_set: Option<Money>,
    ip_license: Money,
    relative_density: f64,
    d2d: Option<D2dSpec>,
}

impl ProcessNodeBuilder {
    fn new(id: impl Into<NodeId>) -> Self {
        ProcessNodeBuilder {
            id: id.into(),
            defect_density: None,
            cluster: 10.0,
            wafer_price: None,
            wafer: None,
            k_module: None,
            k_chip: None,
            mask_set: None,
            ip_license: Money::ZERO,
            relative_density: 1.0,
            d2d: None,
        }
    }

    /// Sets the defect density in defects/cm² (required).
    pub fn defect_density(mut self, d: f64) -> Self {
        self.defect_density = Some(d);
        self
    }

    /// Sets the negative-binomial cluster parameter (default 10, the paper's
    /// value for logic processes).
    pub fn cluster(mut self, c: f64) -> Self {
        self.cluster = c;
        self
    }

    /// Sets the raw wafer price (required).
    pub fn wafer_price(mut self, price: Money) -> Self {
        self.wafer_price = Some(price);
        self
    }

    /// Sets the wafer geometry (default: 300 mm production wafer).
    pub fn wafer(mut self, wafer: WaferSpec) -> Self {
        self.wafer = Some(wafer);
        self
    }

    /// Sets `K_m`, the module-design NRE per mm² (required).
    pub fn k_module(mut self, k: Money) -> Self {
        self.k_module = Some(k);
        self
    }

    /// Sets `K_c`, the chip-level NRE per mm² (required).
    pub fn k_chip(mut self, k: Money) -> Self {
        self.k_chip = Some(k);
        self
    }

    /// Sets the full mask-set price (required).
    pub fn mask_set(mut self, cost: Money) -> Self {
        self.mask_set = Some(cost);
        self
    }

    /// Sets the fixed IP-licensing cost per chip (default $0).
    pub fn ip_license(mut self, cost: Money) -> Self {
        self.ip_license = cost;
        self
    }

    /// Sets the transistor density relative to 14 nm (default 1.0).
    pub fn relative_density(mut self, density: f64) -> Self {
        self.relative_density = density;
        self
    }

    /// Sets the D2D interface spec (default: 10 % area overhead, zero NRE).
    pub fn d2d(mut self, d2d: D2dSpec) -> Self {
        self.d2d = Some(d2d);
        self
    }

    /// Finalizes the node.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidSpec`] if a required field is missing or
    /// a parameter is out of range.
    pub fn build(self) -> Result<ProcessNode, TechError> {
        let defect = self.defect_density.ok_or_else(|| TechError::InvalidSpec {
            reason: format!("node {}: defect density is required", self.id),
        })?;
        let defect_density = DefectDensity::per_cm2(defect)?;
        if !self.cluster.is_finite() || self.cluster <= 0.0 {
            return Err(TechError::InvalidSpec {
                reason: format!("node {}: cluster parameter must be positive", self.id),
            });
        }
        let wafer_price = self.wafer_price.ok_or_else(|| TechError::InvalidSpec {
            reason: format!("node {}: wafer price is required", self.id),
        })?;
        if wafer_price.is_negative() {
            return Err(TechError::InvalidSpec {
                reason: format!("node {}: wafer price must be non-negative", self.id),
            });
        }
        let k_module = self.k_module.ok_or_else(|| TechError::InvalidSpec {
            reason: format!("node {}: k_module is required", self.id),
        })?;
        let k_chip = self.k_chip.ok_or_else(|| TechError::InvalidSpec {
            reason: format!("node {}: k_chip is required", self.id),
        })?;
        let mask_set = self.mask_set.ok_or_else(|| TechError::InvalidSpec {
            reason: format!("node {}: mask_set is required", self.id),
        })?;
        if k_module.is_negative()
            || k_chip.is_negative()
            || mask_set.is_negative()
            || self.ip_license.is_negative()
        {
            return Err(TechError::InvalidSpec {
                reason: format!("node {}: NRE factors must be non-negative", self.id),
            });
        }
        if !self.relative_density.is_finite() || self.relative_density <= 0.0 {
            return Err(TechError::InvalidSpec {
                reason: format!("node {}: relative density must be positive", self.id),
            });
        }
        let wafer = match self.wafer {
            Some(w) => w,
            None => WaferSpec::mm300()?,
        };
        Ok(ProcessNode {
            id: self.id,
            defect_density,
            cluster: self.cluster,
            wafer_price,
            wafer,
            nre: NreFactors {
                k_module,
                k_chip,
                mask_set,
                ip_license: self.ip_license,
            },
            relative_density: self.relative_density,
            d2d: self.d2d.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usd(v: f64) -> Money {
        Money::from_usd(v).unwrap()
    }

    fn sample_node() -> ProcessNode {
        ProcessNode::builder("7nm")
            .defect_density(0.09)
            .cluster(10.0)
            .wafer_price(usd(9_346.0))
            .k_module(usd(550_000.0))
            .k_chip(usd(330_000.0))
            .mask_set(usd(10.0e6))
            .ip_license(usd(4.0e6))
            .relative_density(2.8)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_mandatory_fields() {
        let missing_d = ProcessNode::builder("x").wafer_price(usd(1.0)).build();
        assert!(missing_d.is_err());
        let missing_price = ProcessNode::builder("x").defect_density(0.1).build();
        assert!(missing_price.is_err());
        let missing_k = ProcessNode::builder("x")
            .defect_density(0.1)
            .wafer_price(usd(1.0))
            .build();
        assert!(missing_k.is_err());
    }

    #[test]
    fn builder_rejects_bad_values() {
        let base = || {
            ProcessNode::builder("x")
                .defect_density(0.1)
                .wafer_price(usd(1000.0))
                .k_module(usd(1.0))
                .k_chip(usd(1.0))
                .mask_set(usd(1.0))
        };
        assert!(base().cluster(0.0).build().is_err());
        assert!(base().relative_density(0.0).build().is_err());
        assert!(base().wafer_price(usd(-5.0)).build().is_err());
        assert!(base().build().is_ok());
    }

    #[test]
    fn yield_and_cost_queries() {
        let node = sample_node();
        let die = Area::from_mm2(100.0).unwrap();
        let y = node.die_yield(die);
        let expected = (1.0 + 0.09 / 10.0f64).powi(-10);
        assert!((y.value() - expected).abs() < 1e-12);
        let raw = node.raw_die_cost(die).unwrap();
        let yielded = node.yielded_die_cost(die).unwrap();
        assert!(yielded > raw);
        assert!((yielded.usd() - raw.usd() / expected).abs() < 1e-9);
    }

    #[test]
    fn fixed_per_chip_sums_masks_and_ip() {
        let node = sample_node();
        assert_eq!(node.nre().fixed_per_chip().usd(), 14.0e6);
    }

    #[test]
    fn area_porting_follows_density_ratio() {
        let n7 = sample_node();
        let n14 = ProcessNode::builder("14nm")
            .defect_density(0.08)
            .wafer_price(usd(3_984.0))
            .k_module(usd(200_000.0))
            .k_chip(usd(120_000.0))
            .mask_set(usd(3.0e6))
            .relative_density(1.0)
            .build()
            .unwrap();
        // A 100 mm² module at 14 nm shrinks by 2.8× at 7 nm.
        let at14 = Area::from_mm2(100.0).unwrap();
        let at7 = n7.port_area_from(at14, &n14).unwrap();
        assert!((at7.mm2() - 100.0 / 2.8).abs() < 1e-9);
        // Round trip returns the original.
        let back = n14.port_area_from(at7, &n7).unwrap();
        assert!((back.mm2() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn node_id_conversions() {
        let a: NodeId = "5nm".into();
        let b = NodeId::new(String::from("5nm"));
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), "5nm");
    }

    #[test]
    fn display() {
        let node = sample_node();
        let s = node.to_string();
        assert!(s.contains("7nm") && s.contains("0.09"), "{s}");
    }
}
