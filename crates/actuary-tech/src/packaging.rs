use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::{Area, Money, Prob};
use actuary_yield::{DefectDensity, NegativeBinomial, WaferSpec, YieldModel};

use crate::error::TechError;

/// The four integration schemes compared throughout the paper (Figure 1).
///
/// * [`IntegrationKind::Soc`] — a single monolithic die flip-chipped on an
///   ordinary organic substrate (the baseline).
/// * [`IntegrationKind::Mcm`] — multiple bare dies on a unified organic
///   substrate with extra routing layers (a.k.a. SiP).
/// * [`IntegrationKind::Info`] — integrated fan-out: dies on a
///   redistribution layer (RDL) manufactured in a wafer-level process.
/// * [`IntegrationKind::TwoPointFiveD`] — dies on a silicon interposer
///   (CoWoS-style 2.5D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IntegrationKind {
    /// Monolithic SoC in a single-die package.
    Soc,
    /// Multi-chip module on an organic substrate.
    Mcm,
    /// Integrated fan-out (RDL-based).
    Info,
    /// 2.5D integration on a silicon interposer.
    TwoPointFiveD,
}

impl IntegrationKind {
    /// All four schemes, in the paper's display order.
    pub const ALL: [IntegrationKind; 4] = [
        IntegrationKind::Soc,
        IntegrationKind::Mcm,
        IntegrationKind::Info,
        IntegrationKind::TwoPointFiveD,
    ];

    /// The three multi-chip schemes (everything but SoC).
    pub const MULTI_CHIP: [IntegrationKind; 3] = [
        IntegrationKind::Mcm,
        IntegrationKind::Info,
        IntegrationKind::TwoPointFiveD,
    ];

    /// Whether this scheme integrates more than one die.
    pub fn is_multi_chip(self) -> bool {
        !matches!(self, IntegrationKind::Soc)
    }

    /// Whether this scheme uses a wafer-level interposer (RDL or silicon).
    pub fn has_interposer(self) -> bool {
        matches!(self, IntegrationKind::Info | IntegrationKind::TwoPointFiveD)
    }

    /// Short label used in tables and figures ("SoC", "MCM", "InFO", "2.5D").
    pub fn label(self) -> &'static str {
        match self {
            IntegrationKind::Soc => "SoC",
            IntegrationKind::Mcm => "MCM",
            IntegrationKind::Info => "InFO",
            IntegrationKind::TwoPointFiveD => "2.5D",
        }
    }
}

impl fmt::Display for IntegrationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The wafer-level interposer process of an advanced packaging technology:
/// a fan-out RDL (InFO) or a silicon interposer (2.5D).
///
/// The paper's Figure 2 gives the defect parameters: RDL `D = 0.05, c = 3`;
/// silicon interposer `D = 0.06, c = 6`. The interposer is "calculated
/// similarly with the die cost" (§3.2): its raw cost comes from a wafer
/// price and dies-per-wafer, and its yield `y₁` from Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterposerSpec {
    defect_density: DefectDensity,
    cluster: f64,
    wafer_price: Money,
    wafer: WaferSpec,
    area_factor: f64,
}

impl InterposerSpec {
    /// Creates an interposer process spec.
    ///
    /// `area_factor` is the ratio of interposer area to the total silicon
    /// area it carries (≥ 1; accounts for inter-die spacing and fan-out).
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidSpec`] if a parameter is out of range.
    pub fn new(
        defect_density: DefectDensity,
        cluster: f64,
        wafer_price: Money,
        wafer: WaferSpec,
        area_factor: f64,
    ) -> Result<Self, TechError> {
        if !cluster.is_finite() || cluster <= 0.0 {
            return Err(TechError::InvalidSpec {
                reason: format!("interposer cluster parameter {cluster} must be positive"),
            });
        }
        if wafer_price.is_negative() {
            return Err(TechError::InvalidSpec {
                reason: "interposer wafer price must be non-negative".to_string(),
            });
        }
        if !area_factor.is_finite() || area_factor < 1.0 {
            return Err(TechError::InvalidSpec {
                reason: format!("interposer area factor {area_factor} must be at least 1"),
            });
        }
        Ok(InterposerSpec {
            defect_density,
            cluster,
            wafer_price,
            wafer,
            area_factor,
        })
    }

    /// Defect density of the interposer process.
    pub fn defect_density(&self) -> DefectDensity {
        self.defect_density
    }

    /// Cluster parameter of the interposer process.
    pub fn cluster(&self) -> f64 {
        self.cluster
    }

    /// Price of one raw interposer wafer.
    pub fn wafer_price(&self) -> Money {
        self.wafer_price
    }

    /// Wafer geometry of the interposer process.
    pub fn wafer(&self) -> WaferSpec {
        self.wafer
    }

    /// Ratio of interposer area to carried silicon area.
    pub fn area_factor(&self) -> f64 {
        self.area_factor
    }

    /// Interposer area needed to carry the given total die area.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Unit`] if the scaled area is invalid.
    pub fn interposer_area(&self, total_die_area: Area) -> Result<Area, TechError> {
        Ok(total_die_area.scaled(self.area_factor)?)
    }

    /// Raw manufacturing cost of one interposer of the given area.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Yield`] if the interposer does not fit the wafer.
    pub fn raw_cost(&self, interposer_area: Area) -> Result<Money, TechError> {
        Ok(self.wafer.raw_die_cost(self.wafer_price, interposer_area)?)
    }

    /// Manufacturing yield `y₁` of one interposer of the given area, per the
    /// paper's Eq. (1).
    pub fn manufacturing_yield(&self, interposer_area: Area) -> Prob {
        NegativeBinomial::new(self.cluster)
            .expect("cluster validated at construction")
            .die_yield(self.defect_density, interposer_area)
    }
}

impl fmt::Display for InterposerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interposer (D={}, c={}, wafer {}, {}x area)",
            self.defect_density, self.cluster, self.wafer_price, self.area_factor
        )
    }
}

/// One packaging / integration technology with its cost and yield
/// parameters.
///
/// Constructed through [`PackagingTech::builder`]; the paper's calibration
/// lives in [`crate::TechLibrary::paper_defaults`].
///
/// # Examples
///
/// ```
/// use actuary_tech::{IntegrationKind, TechLibrary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TechLibrary::paper_defaults()?;
/// let p25d = lib.packaging(IntegrationKind::TwoPointFiveD)?;
/// assert!(p25d.interposer().is_some());
/// assert!(lib.packaging(IntegrationKind::Mcm)?.interposer().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackagingTech {
    kind: IntegrationKind,
    substrate_cost_per_mm2: Money,
    substrate_layer_factor: f64,
    package_body_factor: f64,
    chip_bond_yield: Prob,
    substrate_attach_yield: Prob,
    package_test_yield: Prob,
    bond_cost_per_chip: Money,
    assembly_cost: Money,
    interposer: Option<InterposerSpec>,
    k_package_per_mm2: Money,
    fixed_package_nre: Money,
}

impl PackagingTech {
    /// Starts building a packaging technology of the given kind.
    pub fn builder(kind: IntegrationKind) -> PackagingTechBuilder {
        PackagingTechBuilder::new(kind)
    }

    /// The integration scheme this technology implements.
    pub fn kind(&self) -> IntegrationKind {
        self.kind
    }

    /// Organic substrate cost per mm² of package body (single routing-layer
    /// pair baseline, before the layer factor).
    pub fn substrate_cost_per_mm2(&self) -> Money {
        self.substrate_cost_per_mm2
    }

    /// Multiplier on substrate cost for extra routing layers (the paper's
    /// "growth factor on substrate RE cost" for MCM; 1.0 for SoC).
    pub fn substrate_layer_factor(&self) -> f64 {
        self.substrate_layer_factor
    }

    /// Ratio of package body area to total carried silicon area.
    pub fn package_body_factor(&self) -> f64 {
        self.package_body_factor
    }

    /// Bonding yield per chip, the `y₂` of Eq. (4) (applied once per die).
    pub fn chip_bond_yield(&self) -> Prob {
        self.chip_bond_yield
    }

    /// Attach yield of the interposer (or of the assembled module) onto the
    /// substrate — the `y₃` of Eq. (4).
    pub fn substrate_attach_yield(&self) -> Prob {
        self.substrate_attach_yield
    }

    /// Final package assembly / test yield.
    pub fn package_test_yield(&self) -> Prob {
        self.package_test_yield
    }

    /// Per-chip bonding cost (`C_bond` in the chip-last flow of Eq. (5)).
    pub fn bond_cost_per_chip(&self) -> Money {
        self.bond_cost_per_chip
    }

    /// Fixed assembly overhead per package.
    pub fn assembly_cost(&self) -> Money {
        self.assembly_cost
    }

    /// The interposer process, if this technology uses one.
    pub fn interposer(&self) -> Option<&InterposerSpec> {
        self.interposer.as_ref()
    }

    /// `K_p`: package design NRE per mm² of package (or interposer) area.
    pub fn k_package_per_mm2(&self) -> Money {
        self.k_package_per_mm2
    }

    /// `C_p`: fixed package NRE (tooling, interposer mask set, …).
    pub fn fixed_package_nre(&self) -> Money {
        self.fixed_package_nre
    }

    /// Package body area for the given total silicon area.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Unit`] if the scaled area is invalid.
    pub fn package_area(&self, total_die_area: Area) -> Result<Area, TechError> {
        Ok(total_die_area.scaled(self.package_body_factor)?)
    }

    /// Raw substrate cost for a package of the given body area, including
    /// the layer factor.
    pub fn substrate_cost(&self, package_area: Area) -> Money {
        self.substrate_cost_per_mm2 * package_area.mm2() * self.substrate_layer_factor
    }
}

impl fmt::Display for PackagingTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} packaging", self.kind)
    }
}

/// Builder for [`PackagingTech`] (see C-BUILDER).
#[derive(Debug, Clone)]
pub struct PackagingTechBuilder {
    kind: IntegrationKind,
    substrate_cost_per_mm2: Money,
    substrate_layer_factor: f64,
    package_body_factor: f64,
    chip_bond_yield: Prob,
    substrate_attach_yield: Prob,
    package_test_yield: Prob,
    bond_cost_per_chip: Money,
    assembly_cost: Money,
    interposer: Option<InterposerSpec>,
    k_package_per_mm2: Money,
    fixed_package_nre: Money,
}

impl PackagingTechBuilder {
    fn new(kind: IntegrationKind) -> Self {
        PackagingTechBuilder {
            kind,
            substrate_cost_per_mm2: Money::ZERO,
            substrate_layer_factor: 1.0,
            package_body_factor: 4.0,
            chip_bond_yield: Prob::ONE,
            substrate_attach_yield: Prob::ONE,
            package_test_yield: Prob::ONE,
            bond_cost_per_chip: Money::ZERO,
            assembly_cost: Money::ZERO,
            interposer: None,
            k_package_per_mm2: Money::ZERO,
            fixed_package_nre: Money::ZERO,
        }
    }

    /// Sets the substrate cost per mm² of package body.
    pub fn substrate_cost_per_mm2(mut self, cost: Money) -> Self {
        self.substrate_cost_per_mm2 = cost;
        self
    }

    /// Sets the substrate layer growth factor (≥ 1).
    pub fn substrate_layer_factor(mut self, factor: f64) -> Self {
        self.substrate_layer_factor = factor;
        self
    }

    /// Sets the package-body to silicon area ratio (≥ 1).
    pub fn package_body_factor(mut self, factor: f64) -> Self {
        self.package_body_factor = factor;
        self
    }

    /// Sets the per-chip bonding yield `y₂`.
    pub fn chip_bond_yield(mut self, y: Prob) -> Self {
        self.chip_bond_yield = y;
        self
    }

    /// Sets the interposer-to-substrate attach yield `y₃`.
    pub fn substrate_attach_yield(mut self, y: Prob) -> Self {
        self.substrate_attach_yield = y;
        self
    }

    /// Sets the final package assembly/test yield.
    pub fn package_test_yield(mut self, y: Prob) -> Self {
        self.package_test_yield = y;
        self
    }

    /// Sets the per-chip bonding cost `C_bond`.
    pub fn bond_cost_per_chip(mut self, cost: Money) -> Self {
        self.bond_cost_per_chip = cost;
        self
    }

    /// Sets the fixed assembly overhead per package.
    pub fn assembly_cost(mut self, cost: Money) -> Self {
        self.assembly_cost = cost;
        self
    }

    /// Sets the interposer process (required for InFO / 2.5D).
    pub fn interposer(mut self, spec: InterposerSpec) -> Self {
        self.interposer = Some(spec);
        self
    }

    /// Sets `K_p`, the package design NRE per mm².
    pub fn k_package_per_mm2(mut self, k: Money) -> Self {
        self.k_package_per_mm2 = k;
        self
    }

    /// Sets `C_p`, the fixed package NRE.
    pub fn fixed_package_nre(mut self, c: Money) -> Self {
        self.fixed_package_nre = c;
        self
    }

    /// Finalizes the technology.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidSpec`] if factors are out of range, costs
    /// are negative, or an interposer is missing/superfluous for the kind.
    pub fn build(self) -> Result<PackagingTech, TechError> {
        if !self.substrate_layer_factor.is_finite() || self.substrate_layer_factor < 1.0 {
            return Err(TechError::InvalidSpec {
                reason: format!(
                    "substrate layer factor {} must be at least 1",
                    self.substrate_layer_factor
                ),
            });
        }
        if !self.package_body_factor.is_finite() || self.package_body_factor < 1.0 {
            return Err(TechError::InvalidSpec {
                reason: format!(
                    "package body factor {} must be at least 1",
                    self.package_body_factor
                ),
            });
        }
        for (name, m) in [
            ("substrate cost", self.substrate_cost_per_mm2),
            ("bond cost", self.bond_cost_per_chip),
            ("assembly cost", self.assembly_cost),
            ("package NRE factor", self.k_package_per_mm2),
            ("fixed package NRE", self.fixed_package_nre),
        ] {
            if m.is_negative() {
                return Err(TechError::InvalidSpec {
                    reason: format!("{name} must be non-negative"),
                });
            }
        }
        if self.kind.has_interposer() && self.interposer.is_none() {
            return Err(TechError::InvalidSpec {
                reason: format!("{} packaging requires an interposer spec", self.kind),
            });
        }
        if !self.kind.has_interposer() && self.interposer.is_some() {
            return Err(TechError::InvalidSpec {
                reason: format!("{} packaging must not define an interposer", self.kind),
            });
        }
        Ok(PackagingTech {
            kind: self.kind,
            substrate_cost_per_mm2: self.substrate_cost_per_mm2,
            substrate_layer_factor: self.substrate_layer_factor,
            package_body_factor: self.package_body_factor,
            chip_bond_yield: self.chip_bond_yield,
            substrate_attach_yield: self.substrate_attach_yield,
            package_test_yield: self.package_test_yield,
            bond_cost_per_chip: self.bond_cost_per_chip,
            assembly_cost: self.assembly_cost,
            interposer: self.interposer,
            k_package_per_mm2: self.k_package_per_mm2,
            fixed_package_nre: self.fixed_package_nre,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usd(v: f64) -> Money {
        Money::from_usd(v).unwrap()
    }

    fn sample_interposer() -> InterposerSpec {
        InterposerSpec::new(
            DefectDensity::per_cm2(0.06).unwrap(),
            6.0,
            usd(1_900.0),
            WaferSpec::mm300().unwrap(),
            1.1,
        )
        .unwrap()
    }

    #[test]
    fn kind_predicates() {
        assert!(!IntegrationKind::Soc.is_multi_chip());
        assert!(IntegrationKind::Mcm.is_multi_chip());
        assert!(!IntegrationKind::Mcm.has_interposer());
        assert!(IntegrationKind::Info.has_interposer());
        assert!(IntegrationKind::TwoPointFiveD.has_interposer());
        assert_eq!(IntegrationKind::ALL.len(), 4);
        assert_eq!(IntegrationKind::MULTI_CHIP.len(), 3);
        assert_eq!(IntegrationKind::TwoPointFiveD.to_string(), "2.5D");
    }

    #[test]
    fn interposer_spec_validates() {
        let d = DefectDensity::per_cm2(0.06).unwrap();
        let w = WaferSpec::mm300().unwrap();
        assert!(InterposerSpec::new(d, 6.0, usd(1900.0), w, 1.1).is_ok());
        assert!(InterposerSpec::new(d, 0.0, usd(1900.0), w, 1.1).is_err());
        assert!(InterposerSpec::new(d, 6.0, usd(-1.0), w, 1.1).is_err());
        assert!(InterposerSpec::new(d, 6.0, usd(1900.0), w, 0.9).is_err());
    }

    #[test]
    fn interposer_yield_matches_figure2() {
        let si = sample_interposer();
        let y = si.manufacturing_yield(Area::from_mm2(800.0).unwrap());
        assert!((y.value() - 0.630).abs() < 0.01);
    }

    #[test]
    fn interposer_area_and_cost() {
        let si = sample_interposer();
        let carried = Area::from_mm2(800.0).unwrap();
        let area = si.interposer_area(carried).unwrap();
        assert!((area.mm2() - 880.0).abs() < 1e-9);
        let cost = si.raw_cost(area).unwrap();
        assert!(cost.usd() > 0.0);
    }

    #[test]
    fn builder_enforces_interposer_consistency() {
        // 2.5D without interposer fails.
        assert!(PackagingTech::builder(IntegrationKind::TwoPointFiveD)
            .build()
            .is_err());
        // MCM with interposer fails.
        assert!(PackagingTech::builder(IntegrationKind::Mcm)
            .interposer(sample_interposer())
            .build()
            .is_err());
        // Consistent configurations pass.
        assert!(PackagingTech::builder(IntegrationKind::Mcm).build().is_ok());
        assert!(PackagingTech::builder(IntegrationKind::TwoPointFiveD)
            .interposer(sample_interposer())
            .build()
            .is_ok());
    }

    #[test]
    fn builder_validates_ranges() {
        assert!(PackagingTech::builder(IntegrationKind::Soc)
            .substrate_layer_factor(0.5)
            .build()
            .is_err());
        assert!(PackagingTech::builder(IntegrationKind::Soc)
            .package_body_factor(0.0)
            .build()
            .is_err());
        assert!(PackagingTech::builder(IntegrationKind::Soc)
            .assembly_cost(usd(-1.0))
            .build()
            .is_err());
    }

    #[test]
    fn derived_areas_and_costs() {
        let mcm = PackagingTech::builder(IntegrationKind::Mcm)
            .substrate_cost_per_mm2(usd(0.005))
            .substrate_layer_factor(2.0)
            .package_body_factor(4.0)
            .build()
            .unwrap();
        let silicon = Area::from_mm2(200.0).unwrap();
        let pkg = mcm.package_area(silicon).unwrap();
        assert_eq!(pkg.mm2(), 800.0);
        let substrate = mcm.substrate_cost(pkg);
        assert!((substrate.usd() - 0.005 * 800.0 * 2.0).abs() < 1e-12);
    }
}
