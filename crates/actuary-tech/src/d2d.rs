use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::{Area, Money};

use crate::error::TechError;

/// Die-to-die interface parameters for one process node.
///
/// The paper treats the D2D interface as "a particular module shared by all
/// chiplets" (§3.1) that "takes a certain percentage of the chip area"
/// (§3.2); the experiments assume 10 % per chiplet, referencing AMD EPYC.
/// Designing the interface once per node costs `C_D2D` of NRE (Eq. (8)).
///
/// `area_fraction` is the fraction of the *chip* area occupied by the D2D
/// interface, so a chiplet carrying `m` mm² of functional modules has die
/// area `m / (1 − area_fraction)`.
///
/// # Examples
///
/// ```
/// use actuary_units::{Area, Money};
/// use actuary_tech::D2dSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d2d = D2dSpec::new(0.10, Money::from_musd(10.0)?)?;
/// let die = d2d.inflate_module_area(Area::from_mm2(90.0)?)?;
/// assert!((die.mm2() - 100.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct D2dSpec {
    area_fraction: f64,
    nre_cost: Money,
}

impl D2dSpec {
    /// Creates a D2D spec.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidSpec`] if `area_fraction` is outside
    /// `[0, 1)` or the NRE cost is negative.
    pub fn new(area_fraction: f64, nre_cost: Money) -> Result<Self, TechError> {
        if !area_fraction.is_finite() || !(0.0..1.0).contains(&area_fraction) {
            return Err(TechError::InvalidSpec {
                reason: format!("d2d area fraction {area_fraction} must be within [0, 1)"),
            });
        }
        if nre_cost.is_negative() {
            return Err(TechError::InvalidSpec {
                reason: "d2d NRE cost must be non-negative".to_string(),
            });
        }
        Ok(D2dSpec {
            area_fraction,
            nre_cost,
        })
    }

    /// A D2D interface with zero overhead and zero NRE (what a monolithic
    /// SoC effectively has).
    pub fn none() -> Self {
        D2dSpec {
            area_fraction: 0.0,
            nre_cost: Money::ZERO,
        }
    }

    /// Fraction of the chip area occupied by the D2D interface.
    #[inline]
    pub fn area_fraction(self) -> f64 {
        self.area_fraction
    }

    /// One-time NRE cost of designing this node's D2D interface (`C_D2D`).
    #[inline]
    pub fn nre_cost(self) -> Money {
        self.nre_cost
    }

    /// Die area of a chiplet that carries `module_area` of functional logic
    /// plus this D2D interface: `module / (1 − fraction)`.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::Unit`] if the inflated area is invalid.
    pub fn inflate_module_area(self, module_area: Area) -> Result<Area, TechError> {
        Ok(module_area.scaled(1.0 / (1.0 - self.area_fraction))?)
    }

    /// The D2D interface area on a chip of the given total die area.
    pub fn interface_area(self, die_area: Area) -> Area {
        die_area * self.area_fraction
    }
}

impl Default for D2dSpec {
    /// Defaults to the paper's experimental assumption: 10 % area overhead,
    /// zero NRE (NRE is configured per node in the presets).
    fn default() -> Self {
        D2dSpec {
            area_fraction: 0.10,
            nre_cost: Money::ZERO,
        }
    }
}

impl fmt::Display for D2dSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "D2D {:.0}% area, {} NRE",
            self.area_fraction * 100.0,
            self.nre_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation() {
        assert!(D2dSpec::new(0.0, Money::ZERO).is_ok());
        assert!(D2dSpec::new(0.5, Money::ZERO).is_ok());
        assert!(D2dSpec::new(1.0, Money::ZERO).is_err());
        assert!(D2dSpec::new(-0.1, Money::ZERO).is_err());
        assert!(D2dSpec::new(0.1, Money::from_usd(-1.0).unwrap()).is_err());
    }

    #[test]
    fn inflation_matches_paper_convention() {
        // 10% of the *chip* area is D2D: 90 mm² of modules → 100 mm² die.
        let d2d = D2dSpec::new(0.10, Money::ZERO).unwrap();
        let die = d2d
            .inflate_module_area(Area::from_mm2(90.0).unwrap())
            .unwrap();
        assert!((die.mm2() - 100.0).abs() < 1e-9);
        assert!((d2d.interface_area(die).mm2() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn none_is_identity() {
        let d2d = D2dSpec::none();
        let a = Area::from_mm2(123.0).unwrap();
        assert_eq!(d2d.inflate_module_area(a).unwrap(), a);
        assert_eq!(d2d.interface_area(a), Area::ZERO);
    }

    #[test]
    fn default_is_ten_percent() {
        assert_eq!(D2dSpec::default().area_fraction(), 0.10);
    }

    #[test]
    fn display() {
        let d2d = D2dSpec::new(0.10, Money::from_musd(10.0).unwrap()).unwrap();
        assert_eq!(d2d.to_string(), "D2D 10% area, $10,000,000 NRE");
    }

    proptest! {
        #[test]
        fn inflate_then_extract_is_consistent(
            frac in 0.0f64..0.9,
            mm2 in 1.0f64..1000.0,
        ) {
            let d2d = D2dSpec::new(frac, Money::ZERO).unwrap();
            let module = Area::from_mm2(mm2).unwrap();
            let die = d2d.inflate_module_area(module).unwrap();
            let iface = d2d.interface_area(die);
            // modules + interface = die
            prop_assert!((module.mm2() + iface.mm2() - die.mm2()).abs() < 1e-6);
        }
    }
}
