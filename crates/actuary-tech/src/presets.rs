//! The paper's default calibration.
//!
//! Sources (see `DESIGN.md` §5 for the full discussion):
//!
//! * Defect densities and cluster parameters: the paper's Figure 2 legend
//!   (3 nm 0.20/10, 5 nm 0.11/10, 7 nm 0.09/10, 14 nm 0.08/10, fan-out RDL
//!   0.05/3, silicon interposer 0.06/6) and §4.1 for 12 nm (0.12).
//! * Wafer prices: CSET *AI Chips* report (5 nm ≈ $16,988, 7 nm ≈ $9,346,
//!   10 nm ≈ $5,992, 12/14/16 nm ≈ $3,984, 28 nm ≈ $2,891 per 300 mm wafer);
//!   3 nm extrapolated to $30,000.
//! * NRE factors: public IBS design-cost magnitudes, calibrated so the
//!   paper's Figure 6 shape claims hold (RE share of an 800 mm² 14 nm SoC
//!   ≈ 22 % at 500 k units, ≈ 53 % at 2 M, ≈ 85 % at 10 M).
//! * Packaging: organic substrate ≈ $0.005 / mm², MCM layer factor 2.0,
//!   bonding yields 99 % (HIR roadmap range), interposer wafers $1,200 (RDL)
//!   and $1,900 (65 nm-class silicon).

use actuary_units::Money;
use actuary_yield::{DefectDensity, WaferSpec};

use crate::d2d::D2dSpec;
use crate::error::TechError;
use crate::library::TechLibrary;
use crate::node::ProcessNode;
use crate::packaging::{IntegrationKind, InterposerSpec, PackagingTech};

/// One logic-node row of the preset table.
struct NodeRow {
    id: &'static str,
    defect: f64,
    cluster: f64,
    wafer_usd: f64,
    k_module_usd: f64,
    k_chip_usd: f64,
    mask_musd: f64,
    ip_musd: f64,
    density: f64,
    d2d_nre_musd: f64,
}

/// Logic process nodes of the preset library.
const NODE_ROWS: &[NodeRow] = &[
    NodeRow {
        id: "3nm",
        defect: 0.20,
        cluster: 10.0,
        wafer_usd: 30_000.0,
        k_module_usd: 1_500_000.0,
        k_chip_usd: 900_000.0,
        mask_musd: 35.0,
        ip_musd: 8.0,
        density: 6.0,
        d2d_nre_musd: 20.0,
    },
    NodeRow {
        id: "5nm",
        defect: 0.11,
        cluster: 10.0,
        wafer_usd: 16_988.0,
        k_module_usd: 1_000_000.0,
        k_chip_usd: 600_000.0,
        mask_musd: 20.0,
        ip_musd: 5.0,
        density: 4.5,
        d2d_nre_musd: 15.0,
    },
    NodeRow {
        id: "7nm",
        defect: 0.09,
        cluster: 10.0,
        wafer_usd: 9_346.0,
        k_module_usd: 550_000.0,
        k_chip_usd: 330_000.0,
        mask_musd: 10.0,
        ip_musd: 4.0,
        density: 2.8,
        d2d_nre_musd: 10.0,
    },
    NodeRow {
        id: "10nm",
        defect: 0.08,
        cluster: 10.0,
        wafer_usd: 5_992.0,
        k_module_usd: 350_000.0,
        k_chip_usd: 210_000.0,
        mask_musd: 6.0,
        ip_musd: 3.0,
        density: 1.8,
        d2d_nre_musd: 8.0,
    },
    NodeRow {
        id: "12nm",
        defect: 0.12,
        cluster: 10.0,
        wafer_usd: 3_984.0,
        k_module_usd: 230_000.0,
        k_chip_usd: 140_000.0,
        mask_musd: 3.5,
        ip_musd: 2.5,
        density: 1.1,
        d2d_nre_musd: 6.0,
    },
    NodeRow {
        id: "14nm",
        defect: 0.08,
        cluster: 10.0,
        wafer_usd: 3_984.0,
        k_module_usd: 200_000.0,
        k_chip_usd: 120_000.0,
        mask_musd: 3.0,
        ip_musd: 2.0,
        density: 1.0,
        d2d_nre_musd: 6.0,
    },
    NodeRow {
        id: "28nm",
        defect: 0.05,
        cluster: 10.0,
        wafer_usd: 2_891.0,
        k_module_usd: 100_000.0,
        k_chip_usd: 60_000.0,
        mask_musd: 1.5,
        ip_musd: 1.0,
        density: 0.55,
        d2d_nre_musd: 4.0,
    },
];

fn usd(v: f64) -> Money {
    Money::from_usd(v).expect("preset constants are finite")
}

fn musd(v: f64) -> Money {
    Money::from_musd(v).expect("preset constants are finite")
}

/// Builds the full default library. See module docs for sources.
pub(crate) fn paper_defaults() -> Result<TechLibrary, TechError> {
    let mut lib = TechLibrary::new();
    for row in NODE_ROWS {
        let node = ProcessNode::builder(row.id)
            .defect_density(row.defect)
            .cluster(row.cluster)
            .wafer_price(usd(row.wafer_usd))
            .wafer(WaferSpec::mm300()?)
            .k_module(usd(row.k_module_usd))
            .k_chip(usd(row.k_chip_usd))
            .mask_set(musd(row.mask_musd))
            .ip_license(musd(row.ip_musd))
            .relative_density(row.density)
            .d2d(D2dSpec::new(0.10, musd(row.d2d_nre_musd))?)
            .build()?;
        lib.insert_node(node);
    }

    let y99 = actuary_units::Prob::new(0.99).expect("0.99 is a valid probability");

    // Single-die SoC package: plain organic substrate, one bond.
    lib.insert_packaging(
        PackagingTech::builder(IntegrationKind::Soc)
            .substrate_cost_per_mm2(usd(0.005))
            .substrate_layer_factor(1.0)
            .package_body_factor(4.0)
            .chip_bond_yield(y99)
            .substrate_attach_yield(actuary_units::Prob::ONE)
            .package_test_yield(y99)
            .bond_cost_per_chip(usd(0.5))
            .assembly_cost(usd(5.0))
            .k_package_per_mm2(usd(5_000.0))
            .fixed_package_nre(musd(2.0))
            .build()?,
    );

    // MCM: more routing layers on the substrate (growth factor 2.0).
    lib.insert_packaging(
        PackagingTech::builder(IntegrationKind::Mcm)
            .substrate_cost_per_mm2(usd(0.005))
            .substrate_layer_factor(2.0)
            .package_body_factor(4.0)
            .chip_bond_yield(y99)
            .substrate_attach_yield(actuary_units::Prob::ONE)
            .package_test_yield(y99)
            .bond_cost_per_chip(usd(0.5))
            .assembly_cost(usd(5.0))
            .k_package_per_mm2(usd(8_000.0))
            .fixed_package_nre(musd(3.0))
            .build()?,
    );

    // InFO: fan-out RDL (D=0.05, c=3 per Figure 2) on a $1,200 wafer-level
    // process, thin substrate underneath.
    lib.insert_packaging(
        PackagingTech::builder(IntegrationKind::Info)
            .substrate_cost_per_mm2(usd(0.005))
            .substrate_layer_factor(1.0)
            .package_body_factor(4.0)
            .chip_bond_yield(y99)
            .substrate_attach_yield(y99)
            .package_test_yield(y99)
            .bond_cost_per_chip(usd(1.0))
            .assembly_cost(usd(8.0))
            .interposer(InterposerSpec::new(
                DefectDensity::per_cm2(0.05)?,
                3.0,
                usd(1_200.0),
                WaferSpec::mm300()?,
                1.2,
            )?)
            .k_package_per_mm2(usd(20_000.0))
            .fixed_package_nre(musd(3.0))
            .build()?,
    );

    // 2.5D: silicon interposer (D=0.06, c=6 per Figure 2) on a 65 nm-class
    // wafer whose TSV etching and multi-layer metallization push the price
    // to ≈ $4,000, micro-bumped on both sides with a slightly less mature
    // bond yield than standard flip-chip. Calibrated so that the paper's
    // "cost of packaging is comparable with the chip cost" at 7 nm/900 mm²
    // (≈ 50 %) holds.
    let y98 = actuary_units::Prob::new(0.98).expect("0.98 is a valid probability");
    lib.insert_packaging(
        PackagingTech::builder(IntegrationKind::TwoPointFiveD)
            .substrate_cost_per_mm2(usd(0.005))
            .substrate_layer_factor(1.5)
            .package_body_factor(4.0)
            .chip_bond_yield(y98)
            .substrate_attach_yield(y98)
            .package_test_yield(y99)
            .bond_cost_per_chip(usd(1.5))
            .assembly_cost(usd(10.0))
            .interposer(InterposerSpec::new(
                DefectDensity::per_cm2(0.06)?,
                6.0,
                usd(4_000.0),
                WaferSpec::mm300()?,
                1.1,
            )?)
            .k_package_per_mm2(usd(30_000.0))
            .fixed_package_nre(musd(5.0))
            .build()?,
    );

    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_units::Area;

    #[test]
    fn figure2_defect_parameters_verbatim() {
        let lib = paper_defaults().unwrap();
        let expect = [
            ("3nm", 0.20, 10.0),
            ("5nm", 0.11, 10.0),
            ("7nm", 0.09, 10.0),
            ("14nm", 0.08, 10.0),
        ];
        for (id, d, c) in expect {
            let n = lib.node(id).unwrap();
            assert_eq!(n.defect_density().value(), d, "{id} defect density");
            assert_eq!(n.cluster(), c, "{id} cluster");
        }
    }

    #[test]
    fn interposer_parameters_match_figure2() {
        let lib = paper_defaults().unwrap();
        let info = lib.packaging(IntegrationKind::Info).unwrap();
        let rdl = info.interposer().unwrap();
        assert_eq!(rdl.defect_density().value(), 0.05);
        assert_eq!(rdl.cluster(), 3.0);
        let p25 = lib.packaging(IntegrationKind::TwoPointFiveD).unwrap();
        let si = p25.interposer().unwrap();
        assert_eq!(si.defect_density().value(), 0.06);
        assert_eq!(si.cluster(), 6.0);
    }

    #[test]
    fn cset_wafer_prices() {
        let lib = paper_defaults().unwrap();
        assert_eq!(lib.node("5nm").unwrap().wafer_price().usd(), 16_988.0);
        assert_eq!(lib.node("7nm").unwrap().wafer_price().usd(), 9_346.0);
        assert_eq!(lib.node("10nm").unwrap().wafer_price().usd(), 5_992.0);
        assert_eq!(lib.node("14nm").unwrap().wafer_price().usd(), 3_984.0);
        assert_eq!(lib.node("28nm").unwrap().wafer_price().usd(), 2_891.0);
    }

    #[test]
    fn d2d_defaults_to_ten_percent_everywhere() {
        let lib = paper_defaults().unwrap();
        for node in lib.nodes() {
            assert_eq!(node.d2d().area_fraction(), 0.10, "{}", node.id());
            assert!(!node.d2d().nre_cost().is_zero(), "{}", node.id());
        }
    }

    #[test]
    fn packaging_cost_ordering() {
        // The paper's Figure 1: cost & complexity rise from organic
        // substrate through InFO to silicon interposer.
        let lib = paper_defaults().unwrap();
        let die = Area::from_mm2(400.0).unwrap();
        let kinds = [
            IntegrationKind::Mcm,
            IntegrationKind::Info,
            IntegrationKind::TwoPointFiveD,
        ];
        let mut costs = Vec::new();
        for kind in kinds {
            let p = lib.packaging(kind).unwrap();
            let mut cost = p.substrate_cost(p.package_area(die).unwrap());
            if let Some(ip) = p.interposer() {
                let ia = ip.interposer_area(die).unwrap();
                cost += ip.raw_cost(ia).unwrap();
            }
            costs.push((kind, cost));
        }
        assert!(
            costs[0].1 < costs[1].1,
            "MCM substrate must be cheaper than InFO: {costs:?}"
        );
        assert!(
            costs[1].1 < costs[2].1,
            "InFO must be cheaper than 2.5D: {costs:?}"
        );
    }

    #[test]
    fn mature_nodes_have_cheaper_nre() {
        let lib = paper_defaults().unwrap();
        let pairs = [
            ("3nm", "5nm"),
            ("5nm", "7nm"),
            ("7nm", "14nm"),
            ("14nm", "28nm"),
        ];
        for (advanced, mature) in pairs {
            let a = lib.node(advanced).unwrap().nre();
            let m = lib.node(mature).unwrap().nre();
            assert!(a.k_module > m.k_module, "{advanced} vs {mature}");
            assert!(
                a.fixed_per_chip() > m.fixed_per_chip(),
                "{advanced} vs {mature}"
            );
        }
    }
}
