//! Process, packaging and D2D technology library for `chiplet-actuary`.
//!
//! The cost model of *Chiplet Actuary* (DAC 2022) is parameterized by
//! manufacturing data: per-node defect densities and wafer prices, packaging
//! technology properties (substrate costs, bonding yields, interposer
//! processes) and die-to-die (D2D) interface overheads. This crate holds all
//! of that data behind typed, validated APIs:
//!
//! * [`ProcessNode`] — one silicon process (defect density, cluster
//!   parameter, wafer price, NRE factors, relative transistor density);
//! * [`PackagingTech`] + [`IntegrationKind`] — the four integration schemes
//!   compared by the paper (single-die SoC package, MCM, InFO, 2.5D);
//! * [`InterposerSpec`] — the RDL or silicon-interposer process used by
//!   advanced packaging;
//! * [`D2dSpec`] — D2D interface area overhead and NRE;
//! * [`TechLibrary`] — a registry bundling the above, with
//!   [`TechLibrary::paper_defaults`] reproducing the paper's calibration.
//!
//! Every default can be overridden through the builder APIs, so the library
//! doubles as the "latest relevant data" entry point the paper recommends
//! for applying the model to new cases (§4).
//!
//! # Examples
//!
//! ```
//! use actuary_tech::{IntegrationKind, TechLibrary};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let n5 = lib.node("5nm")?;
//! assert_eq!(n5.defect_density().value(), 0.11);
//! let mcm = lib.packaging(IntegrationKind::Mcm)?;
//! assert!(mcm.substrate_layer_factor() > 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod d2d;
mod error;
mod library;
mod node;
mod packaging;
mod presets;

pub use d2d::D2dSpec;
pub use error::TechError;
pub use library::TechLibrary;
pub use node::{NodeId, NreFactors, ProcessNode, ProcessNodeBuilder};
pub use packaging::{IntegrationKind, InterposerSpec, PackagingTech, PackagingTechBuilder};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TechError>;
