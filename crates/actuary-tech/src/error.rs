use std::error::Error;
use std::fmt;

use actuary_units::UnitError;
use actuary_yield::YieldError;

/// Error produced by technology-library construction and lookups.
#[derive(Debug, Clone, PartialEq)]
pub enum TechError {
    /// A process node id was not found in the library.
    UnknownNode {
        /// The requested node id.
        id: String,
    },
    /// A packaging technology was not found in the library.
    UnknownPackaging {
        /// Display name of the requested integration kind.
        kind: String,
    },
    /// A builder was finalized with a missing or inconsistent field.
    InvalidSpec {
        /// What was wrong.
        reason: String,
    },
    /// An underlying unit value was invalid.
    Unit(UnitError),
    /// An underlying yield/wafer parameter was invalid.
    Yield(YieldError),
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::UnknownNode { id } => write!(f, "unknown process node: {id:?}"),
            TechError::UnknownPackaging { kind } => {
                write!(f, "unknown packaging technology: {kind}")
            }
            TechError::InvalidSpec { reason } => write!(f, "invalid technology spec: {reason}"),
            TechError::Unit(e) => write!(f, "{e}"),
            TechError::Yield(e) => write!(f, "{e}"),
        }
    }
}

impl Error for TechError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TechError::Unit(e) => Some(e),
            TechError::Yield(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnitError> for TechError {
    fn from(e: UnitError) -> Self {
        TechError::Unit(e)
    }
}

impl From<YieldError> for TechError {
    fn from(e: YieldError) -> Self {
        TechError::Yield(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(TechError::UnknownNode { id: "9nm".into() }
            .to_string()
            .contains("9nm"));
        assert!(TechError::UnknownPackaging { kind: "MCM".into() }
            .to_string()
            .contains("MCM"));
        assert!(TechError::InvalidSpec { reason: "x".into() }
            .to_string()
            .contains("x"));
    }

    #[test]
    fn sources_chain() {
        let e = TechError::from(UnitError::InvalidArea { value: -1.0 });
        assert!(Error::source(&e).is_some());
        let e = TechError::from(YieldError::InvalidDefectDensity { value: -1.0 });
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<TechError>();
    }
}
