use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TechError;
use crate::node::{NodeId, ProcessNode};
use crate::packaging::{IntegrationKind, PackagingTech};
use crate::presets;

/// Registry of process nodes and packaging technologies used by the cost
/// engine.
///
/// A library owns the full parameterization of an experiment. The shipped
/// [`TechLibrary::paper_defaults`] reproduces the calibration of the paper
/// (defect densities of Figure 2, CSET wafer prices, HIR-range bonding
/// yields — see `DESIGN.md` §5); every entry can be replaced to study other
/// assumptions, as the paper recommends when "applying the model to other
/// cases" (§4).
///
/// # Examples
///
/// ```
/// use actuary_tech::{IntegrationKind, TechLibrary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TechLibrary::paper_defaults()?;
/// assert!(lib.node("5nm").is_ok());
/// assert!(lib.node("9nm").is_err());
/// for kind in IntegrationKind::ALL {
///     assert!(lib.packaging(kind).is_ok());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TechLibrary {
    nodes: BTreeMap<NodeId, ProcessNode>,
    packaging: BTreeMap<IntegrationKind, PackagingTech>,
}

impl TechLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        TechLibrary::default()
    }

    /// The paper's default calibration: logic nodes 3/5/7/10/12/14/28 nm and
    /// all four packaging technologies.
    ///
    /// # Errors
    ///
    /// Never fails with the shipped constants; the fallible signature guards
    /// against future preset edits violating validation.
    pub fn paper_defaults() -> Result<Self, TechError> {
        presets::paper_defaults()
    }

    /// Inserts (or replaces) a process node, returning the previous entry if
    /// one existed.
    pub fn insert_node(&mut self, node: ProcessNode) -> Option<ProcessNode> {
        self.nodes.insert(node.id().clone(), node)
    }

    /// Inserts (or replaces) a packaging technology, returning the previous
    /// entry if one existed.
    pub fn insert_packaging(&mut self, tech: PackagingTech) -> Option<PackagingTech> {
        self.packaging.insert(tech.kind(), tech)
    }

    /// Looks up a process node by id.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownNode`] if the id is not registered.
    pub fn node(&self, id: impl AsRef<str>) -> Result<&ProcessNode, TechError> {
        let key = NodeId::new(id.as_ref());
        self.nodes.get(&key).ok_or_else(|| TechError::UnknownNode {
            id: key.to_string(),
        })
    }

    /// Looks up a packaging technology.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownPackaging`] if the kind is not
    /// registered.
    pub fn packaging(&self, kind: IntegrationKind) -> Result<&PackagingTech, TechError> {
        self.packaging
            .get(&kind)
            .ok_or_else(|| TechError::UnknownPackaging {
                kind: kind.to_string(),
            })
    }

    /// Iterates over all registered nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &ProcessNode> {
        self.nodes.values()
    }

    /// Iterates over all registered packaging technologies.
    pub fn packagings(&self) -> impl Iterator<Item = &PackagingTech> {
        self.packaging.values()
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns a copy of the library with one node replaced by the result of
    /// applying `f` to it — convenient for what-if studies.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownNode`] if the id is not registered, or
    /// any error produced by `f`.
    pub fn with_modified_node<F>(&self, id: impl AsRef<str>, f: F) -> Result<Self, TechError>
    where
        F: FnOnce(&ProcessNode) -> Result<ProcessNode, TechError>,
    {
        let node = self.node(id)?;
        let replacement = f(node)?;
        let mut out = self.clone();
        out.insert_node(replacement);
        Ok(out)
    }
}

impl fmt::Display for TechLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tech library ({} nodes, {} packaging technologies)",
            self.nodes.len(),
            self.packaging.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_units::Money;

    #[test]
    fn defaults_are_complete() {
        let lib = TechLibrary::paper_defaults().unwrap();
        for id in ["3nm", "5nm", "7nm", "10nm", "12nm", "14nm", "28nm"] {
            assert!(lib.node(id).is_ok(), "missing node {id}");
        }
        for kind in IntegrationKind::ALL {
            assert!(lib.packaging(kind).is_ok(), "missing packaging {kind}");
        }
        assert_eq!(lib.node_count(), 7);
    }

    #[test]
    fn unknown_lookups_error() {
        let lib = TechLibrary::paper_defaults().unwrap();
        assert!(matches!(
            lib.node("9nm"),
            Err(TechError::UnknownNode { .. })
        ));
        let empty = TechLibrary::new();
        assert!(matches!(
            empty.packaging(IntegrationKind::Mcm),
            Err(TechError::UnknownPackaging { .. })
        ));
    }

    #[test]
    fn insert_replaces() {
        let mut lib = TechLibrary::paper_defaults().unwrap();
        let n7 = lib.node("7nm").unwrap().clone();
        let previous = lib.insert_node(n7);
        assert!(previous.is_some());
    }

    #[test]
    fn with_modified_node_leaves_original_untouched() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let original_d = lib.node("7nm").unwrap().defect_density().value();
        let modified = lib
            .with_modified_node("7nm", |n| {
                ProcessNode::builder(n.id().clone())
                    .defect_density(0.13)
                    .cluster(n.cluster())
                    .wafer_price(n.wafer_price())
                    .k_module(n.nre().k_module)
                    .k_chip(n.nre().k_chip)
                    .mask_set(n.nre().mask_set)
                    .ip_license(n.nre().ip_license)
                    .relative_density(n.relative_density())
                    .d2d(*n.d2d())
                    .build()
            })
            .unwrap();
        assert_eq!(modified.node("7nm").unwrap().defect_density().value(), 0.13);
        assert_eq!(
            lib.node("7nm").unwrap().defect_density().value(),
            original_d
        );
    }

    #[test]
    fn display() {
        let lib = TechLibrary::paper_defaults().unwrap();
        assert_eq!(
            lib.to_string(),
            "tech library (7 nodes, 4 packaging technologies)"
        );
    }

    #[test]
    fn defaults_have_sane_economics() {
        let lib = TechLibrary::paper_defaults().unwrap();
        // Wafer price must rise monotonically with node advancement.
        let order = ["28nm", "14nm", "10nm", "7nm", "5nm", "3nm"];
        let mut last = Money::ZERO;
        for id in order {
            let price = lib.node(id).unwrap().wafer_price();
            assert!(
                price > last,
                "wafer price must increase towards advanced nodes ({id})"
            );
            last = price;
        }
        // NRE factors rise with node advancement as well.
        let k5 = lib.node("5nm").unwrap().nre().k_module;
        let k14 = lib.node("14nm").unwrap().nre().k_module;
        assert!(k5 > k14);
    }
}
