use std::error::Error;
use std::fmt;

use actuary_units::UnitError;

/// Error produced by yield-model construction or wafer-geometry queries.
#[derive(Debug, Clone, PartialEq)]
pub enum YieldError {
    /// A defect density was negative or not finite.
    InvalidDefectDensity {
        /// The offending value in defects/cm².
        value: f64,
    },
    /// A model shape parameter (cluster parameter, critical-level count) was
    /// non-positive or not finite.
    InvalidModelParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Wafer geometry was inconsistent (e.g. edge exclusion larger than the
    /// wafer radius, non-positive diameter).
    InvalidWaferGeometry {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A die does not fit the wafer or the reticle.
    DieTooLarge {
        /// Die area in mm².
        die_mm2: f64,
        /// The limiting area in mm².
        limit_mm2: f64,
    },
    /// An underlying unit value was invalid.
    Unit(UnitError),
}

impl fmt::Display for YieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YieldError::InvalidDefectDensity { value } => {
                write!(
                    f,
                    "invalid defect density: {value} /cm² (must be finite and non-negative)"
                )
            }
            YieldError::InvalidModelParameter { name, value } => {
                write!(
                    f,
                    "invalid yield-model parameter {name}: {value} (must be finite and positive)"
                )
            }
            YieldError::InvalidWaferGeometry { reason } => {
                write!(f, "invalid wafer geometry: {reason}")
            }
            YieldError::DieTooLarge { die_mm2, limit_mm2 } => {
                write!(f, "die of {die_mm2} mm² exceeds the {limit_mm2} mm² limit")
            }
            YieldError::Unit(e) => write!(f, "{e}"),
        }
    }
}

impl Error for YieldError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            YieldError::Unit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnitError> for YieldError {
    fn from(e: UnitError) -> Self {
        YieldError::Unit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = YieldError::InvalidDefectDensity { value: -0.1 };
        assert!(e.to_string().contains("defect density"));
        let e = YieldError::DieTooLarge {
            die_mm2: 900.0,
            limit_mm2: 858.0,
        };
        assert!(e.to_string().contains("858"));
    }

    #[test]
    fn unit_error_chains_as_source() {
        let inner = UnitError::InvalidArea { value: -1.0 };
        let outer = YieldError::from(inner.clone());
        assert_eq!(outer.to_string(), inner.to_string());
        assert!(Error::source(&outer).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<YieldError>();
    }
}
