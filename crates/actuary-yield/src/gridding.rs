//! Exact die placement on a circular wafer.
//!
//! The analytic dies-per-wafer formula is an approximation; this module
//! computes the exact number of `w × h` rectangles (plus scribe lanes) that
//! fit inside a disc, trying the four standard grid alignments (die grid
//! centered on the wafer center, or offset by half a pitch in either axis).

use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::Area;

use crate::error::YieldError;

/// The rectangular outline of a die in mm, excluding scribe lanes.
///
/// # Examples
///
/// ```
/// use actuary_units::Area;
/// use actuary_yield::DieFootprint;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let square = DieFootprint::square_of_area(Area::from_mm2(100.0)?)?;
/// assert_eq!(square.width_mm(), 10.0);
/// let wide = DieFootprint::of_area_with_aspect(Area::from_mm2(100.0)?, 4.0)?;
/// assert!((wide.width_mm() - 20.0).abs() < 1e-12);
/// assert!((wide.height_mm() - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieFootprint {
    width_mm: f64,
    height_mm: f64,
}

impl DieFootprint {
    /// Creates a footprint from explicit width and height in mm.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidWaferGeometry`] if either side is not
    /// finite and positive.
    pub fn new(width_mm: f64, height_mm: f64) -> Result<Self, YieldError> {
        if !width_mm.is_finite() || width_mm <= 0.0 || !height_mm.is_finite() || height_mm <= 0.0 {
            return Err(YieldError::InvalidWaferGeometry {
                reason: format!("die footprint {width_mm} × {height_mm} mm must be positive"),
            });
        }
        Ok(DieFootprint {
            width_mm,
            height_mm,
        })
    }

    /// A square die of the given area.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidWaferGeometry`] if the area is zero.
    pub fn square_of_area(area: Area) -> Result<Self, YieldError> {
        let side = area.square_side_mm();
        Self::new(side, side)
    }

    /// A die of the given area with `aspect = width / height`.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidWaferGeometry`] if the area is zero or
    /// the aspect ratio is not finite and positive.
    pub fn of_area_with_aspect(area: Area, aspect: f64) -> Result<Self, YieldError> {
        if !aspect.is_finite() || aspect <= 0.0 {
            return Err(YieldError::InvalidWaferGeometry {
                reason: format!("aspect ratio {aspect} must be positive"),
            });
        }
        let height = (area.mm2() / aspect).sqrt();
        let width = height * aspect;
        Self::new(width, height)
    }

    /// Die width in mm.
    #[inline]
    pub fn width_mm(self) -> f64 {
        self.width_mm
    }

    /// Die height in mm.
    #[inline]
    pub fn height_mm(self) -> f64 {
        self.height_mm
    }

    /// Die area.
    pub fn area(self) -> Area {
        Area::from_mm2(self.width_mm * self.height_mm)
            .expect("footprint sides are positive and finite by construction")
    }

    /// The footprint rotated by 90°.
    #[inline]
    pub fn rotated(self) -> DieFootprint {
        DieFootprint {
            width_mm: self.height_mm,
            height_mm: self.width_mm,
        }
    }

    /// Aspect ratio `width / height`.
    #[inline]
    pub fn aspect(self) -> f64 {
        self.width_mm / self.height_mm
    }
}

impl fmt::Display for DieFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} × {:.2} mm", self.width_mm, self.height_mm)
    }
}

/// Grid alignment offset (as a fraction of the die pitch) that produced a
/// particular placement count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridOffset {
    /// Horizontal offset of the grid origin, as a fraction of the x pitch.
    pub dx_frac: f64,
    /// Vertical offset of the grid origin, as a fraction of the y pitch.
    pub dy_frac: f64,
}

impl fmt::Display for GridOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offset ({:.2}, {:.2}) pitch", self.dx_frac, self.dy_frac)
    }
}

/// Result of an exact die-placement count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridCount {
    count: u32,
    offset: GridOffset,
}

impl GridCount {
    /// Number of whole dies placed.
    #[inline]
    pub fn count(self) -> u32 {
        self.count
    }

    /// The grid alignment that achieved the count.
    #[inline]
    pub fn offset(self) -> GridOffset {
        self.offset
    }
}

impl fmt::Display for GridCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dies ({})", self.count, self.offset)
    }
}

/// Counts how many `die` rectangles (inflated by the scribe lane) fit fully
/// inside a disc of the given radius, trying the four standard alignments.
///
/// # Errors
///
/// Returns [`YieldError::InvalidWaferGeometry`] if the radius is not positive
/// or the scribe lane is negative.
pub fn count_dies_in_circle(
    radius_mm: f64,
    die: DieFootprint,
    scribe_lane_mm: f64,
) -> Result<GridCount, YieldError> {
    if !radius_mm.is_finite() || radius_mm <= 0.0 {
        return Err(YieldError::InvalidWaferGeometry {
            reason: format!("circle radius {radius_mm} mm must be positive"),
        });
    }
    if !scribe_lane_mm.is_finite() || scribe_lane_mm < 0.0 {
        return Err(YieldError::InvalidWaferGeometry {
            reason: format!("scribe lane {scribe_lane_mm} mm must be non-negative"),
        });
    }
    let pitch_x = die.width_mm() + scribe_lane_mm;
    let pitch_y = die.height_mm() + scribe_lane_mm;

    let offsets = [(0.0, 0.0), (0.5, 0.0), (0.0, 0.5), (0.5, 0.5)];
    let mut best = GridCount {
        count: 0,
        offset: GridOffset {
            dx_frac: 0.0,
            dy_frac: 0.0,
        },
    };
    for (fx, fy) in offsets {
        let count = count_for_offset(radius_mm, die, pitch_x, pitch_y, fx, fy);
        if count > best.count {
            best = GridCount {
                count,
                offset: GridOffset {
                    dx_frac: fx,
                    dy_frac: fy,
                },
            };
        }
    }
    Ok(best)
}

/// Counts dies for a single grid alignment. The grid origin is the wafer
/// center shifted by `(fx·pitch_x, fy·pitch_y)`; die `(i, j)` occupies
/// `[x0 + i·px, x0 + i·px + w] × [y0 + j·py, y0 + j·py + h]` and counts when
/// all four corners lie inside the disc.
fn count_for_offset(
    radius_mm: f64,
    die: DieFootprint,
    pitch_x: f64,
    pitch_y: f64,
    fx: f64,
    fy: f64,
) -> u32 {
    let r2 = radius_mm * radius_mm;
    let x0 = fx * pitch_x;
    let y0 = fy * pitch_y;
    let max_i = (radius_mm / pitch_x).ceil() as i64 + 1;
    let max_j = (radius_mm / pitch_y).ceil() as i64 + 1;
    let mut count = 0u32;
    for j in -max_j..=max_j {
        let y1 = y0 + j as f64 * pitch_y;
        let y2 = y1 + die.height_mm();
        let y_extent = y1.abs().max(y2.abs());
        if y_extent * y_extent > r2 {
            continue;
        }
        for i in -max_i..=max_i {
            let x1 = x0 + i as f64 * pitch_x;
            let x2 = x1 + die.width_mm();
            let x_extent = x1.abs().max(x2.abs());
            // The farthest corner from the center decides whether the
            // rectangle fits inside the disc.
            if x_extent * x_extent + y_extent * y_extent <= r2 {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn footprint_construction_validates() {
        assert!(DieFootprint::new(10.0, 10.0).is_ok());
        assert!(DieFootprint::new(0.0, 10.0).is_err());
        assert!(DieFootprint::new(10.0, -1.0).is_err());
        assert!(DieFootprint::new(f64::NAN, 1.0).is_err());
        assert!(DieFootprint::of_area_with_aspect(Area::from_mm2(100.0).unwrap(), 0.0).is_err());
    }

    #[test]
    fn footprint_geometry() {
        let d = DieFootprint::new(20.0, 5.0).unwrap();
        assert_eq!(d.area().mm2(), 100.0);
        assert_eq!(d.aspect(), 4.0);
        let r = d.rotated();
        assert_eq!(r.width_mm(), 5.0);
        assert_eq!(r.height_mm(), 20.0);
        assert_eq!(r.area().mm2(), 100.0);
    }

    #[test]
    fn tiny_die_on_big_circle_matches_area_ratio() {
        // 1×1 mm dies on a 100 mm radius circle: packing efficiency is high.
        let die = DieFootprint::new(1.0, 1.0).unwrap();
        let got = count_dies_in_circle(100.0, die, 0.0).unwrap().count();
        let disc_area = std::f64::consts::PI * 100.0 * 100.0;
        let ratio = got as f64 / disc_area;
        assert!(ratio > 0.97 && ratio <= 1.0, "packing ratio {ratio}");
    }

    #[test]
    fn die_larger_than_circle_counts_zero() {
        let die = DieFootprint::new(300.0, 300.0).unwrap();
        assert_eq!(count_dies_in_circle(100.0, die, 0.0).unwrap().count(), 0);
    }

    #[test]
    fn single_die_exactly_fits() {
        // A square of side s fits a circle of radius s·√2/2.
        let die = DieFootprint::new(10.0, 10.0).unwrap();
        let r_fit = 10.0 * std::f64::consts::SQRT_2 / 2.0 + 1e-9;
        let c = count_dies_in_circle(r_fit, die, 0.0).unwrap();
        assert!(c.count() >= 1, "die must fit at offset (0.5, 0.5): {c}");
        let r_too_small = 10.0 * std::f64::consts::SQRT_2 / 2.0 - 0.1;
        assert_eq!(
            count_dies_in_circle(r_too_small, die, 0.0).unwrap().count(),
            0
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let die = DieFootprint::new(10.0, 10.0).unwrap();
        assert!(count_dies_in_circle(0.0, die, 0.0).is_err());
        assert!(count_dies_in_circle(-5.0, die, 0.0).is_err());
        assert!(count_dies_in_circle(100.0, die, -0.1).is_err());
    }

    #[test]
    fn offset_search_helps() {
        // For a die about as big as the circle, the centered grid places 0
        // but the half-offset grid places 1. The search must find it.
        let die = DieFootprint::new(10.0, 10.0).unwrap();
        let r = 7.2; // between s/√2 ≈ 7.07 (1 die centered on origin) and 10
        let best = count_dies_in_circle(r, die, 0.0).unwrap();
        assert_eq!(best.count(), 1);
        assert_eq!(best.offset().dx_frac, 0.5);
        assert_eq!(best.offset().dy_frac, 0.5);
    }

    #[test]
    fn rotation_can_matter_for_rectangles() {
        let die = DieFootprint::new(30.0, 10.0).unwrap();
        let a = count_dies_in_circle(50.0, die, 0.0).unwrap().count();
        let b = count_dies_in_circle(50.0, die.rotated(), 0.0)
            .unwrap()
            .count();
        // Same area and symmetric disc: counts must match under rotation.
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn count_bounded_by_area(
            r in 20.0f64..160.0,
            w in 2.0f64..40.0,
            h in 2.0f64..40.0,
            scribe in 0.0f64..0.5,
        ) {
            let die = DieFootprint::new(w, h).unwrap();
            let count = count_dies_in_circle(r, die, scribe).unwrap().count();
            let bound = std::f64::consts::PI * r * r / (w * h);
            prop_assert!((count as f64) <= bound + 1e-9);
        }

        #[test]
        fn count_monotone_in_radius(
            r in 20.0f64..100.0,
            w in 2.0f64..30.0,
            h in 2.0f64..30.0,
        ) {
            let die = DieFootprint::new(w, h).unwrap();
            let small = count_dies_in_circle(r, die, 0.1).unwrap().count();
            let large = count_dies_in_circle(r * 1.3, die, 0.1).unwrap().count();
            prop_assert!(large >= small);
        }

        #[test]
        fn scribe_lane_never_increases_count(
            r in 20.0f64..120.0,
            w in 2.0f64..30.0,
            h in 2.0f64..30.0,
        ) {
            let die = DieFootprint::new(w, h).unwrap();
            let no_scribe = count_dies_in_circle(r, die, 0.0).unwrap().count();
            let with_scribe = count_dies_in_circle(r, die, 0.3).unwrap().count();
            prop_assert!(with_scribe <= no_scribe);
        }
    }
}
