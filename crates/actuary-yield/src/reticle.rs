use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::Area;

use crate::error::YieldError;
use crate::gridding::DieFootprint;

/// The lithographic reticle (exposure field) limit.
///
/// A monolithic die cannot exceed the scanner's maximum field; the standard
/// full field is 26 × 33 mm = 858 mm². The paper calls the largest die at the
/// most advanced node the "Moore Limit" — systems near it are exactly where
/// multi-chip integration pays off most (§6).
///
/// # Examples
///
/// ```
/// use actuary_units::Area;
/// use actuary_yield::Reticle;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let reticle = Reticle::standard();
/// assert_eq!(reticle.max_area().mm2(), 858.0);
/// assert!(reticle.fits_area(Area::from_mm2(800.0)?));
/// assert!(!reticle.fits_area(Area::from_mm2(900.0)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reticle {
    width_mm: f64,
    height_mm: f64,
}

impl Reticle {
    /// The standard full-field reticle: 26 × 33 mm.
    pub fn standard() -> Self {
        Reticle {
            width_mm: 26.0,
            height_mm: 33.0,
        }
    }

    /// Creates a custom reticle field.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidWaferGeometry`] if either side is not
    /// finite and positive.
    pub fn new(width_mm: f64, height_mm: f64) -> Result<Self, YieldError> {
        if !width_mm.is_finite() || width_mm <= 0.0 || !height_mm.is_finite() || height_mm <= 0.0 {
            return Err(YieldError::InvalidWaferGeometry {
                reason: format!("reticle field {width_mm} × {height_mm} mm must be positive"),
            });
        }
        Ok(Reticle {
            width_mm,
            height_mm,
        })
    }

    /// Field width in mm.
    #[inline]
    pub fn width_mm(self) -> f64 {
        self.width_mm
    }

    /// Field height in mm.
    #[inline]
    pub fn height_mm(self) -> f64 {
        self.height_mm
    }

    /// Maximum exposable area (the "Moore Limit" for a monolithic die).
    pub fn max_area(self) -> Area {
        Area::from_mm2(self.width_mm * self.height_mm)
            .expect("reticle sides are positive and finite by construction")
    }

    /// Whether a die *area* can possibly fit (area comparison only; a long
    /// thin die of smaller area may still violate a side limit — use
    /// [`Reticle::fits_footprint`] for the exact check).
    pub fn fits_area(self, die: Area) -> bool {
        die.mm2() <= self.max_area().mm2()
    }

    /// Whether the exact die footprint fits the field, allowing 90°
    /// rotation.
    pub fn fits_footprint(self, die: DieFootprint) -> bool {
        let fits =
            |d: DieFootprint| d.width_mm() <= self.width_mm && d.height_mm() <= self.height_mm;
        fits(die) || fits(die.rotated())
    }

    /// Checks a die area against the limit, returning an error suitable for
    /// propagation out of cost pipelines.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::DieTooLarge`] when the area exceeds the field.
    pub fn check_area(self, die: Area) -> Result<(), YieldError> {
        if self.fits_area(die) {
            Ok(())
        } else {
            Err(YieldError::DieTooLarge {
                die_mm2: die.mm2(),
                limit_mm2: self.max_area().mm2(),
            })
        }
    }

    /// Number of exposure fields needed to pattern the given area with
    /// reticle stitching — how large silicon interposers beyond the single
    /// field limit are made (§6: "with a monolithic interposer, advanced
    /// packaging technologies still suffer from poor yield and area limit").
    ///
    /// Returns 1 for anything that fits one field; never returns 0.
    pub fn fields_required(self, area: Area) -> u32 {
        let fields = (area.mm2() / self.max_area().mm2()).ceil();
        (fields as u32).max(1)
    }
}

impl Default for Reticle {
    fn default() -> Self {
        Reticle::standard()
    }
}

impl fmt::Display for Reticle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} mm reticle ({} mm² max)",
            self.width_mm,
            self.height_mm,
            self.width_mm * self.height_mm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    #[test]
    fn standard_field_is_858mm2() {
        let r = Reticle::standard();
        assert_eq!(r.max_area().mm2(), 858.0);
        assert_eq!(Reticle::default(), r);
    }

    #[test]
    fn construction_validates() {
        assert!(Reticle::new(26.0, 33.0).is_ok());
        assert!(Reticle::new(0.0, 33.0).is_err());
        assert!(Reticle::new(26.0, -1.0).is_err());
    }

    #[test]
    fn area_checks() {
        let r = Reticle::standard();
        assert!(r.fits_area(area(858.0)));
        assert!(!r.fits_area(area(858.1)));
        assert!(r.check_area(area(500.0)).is_ok());
        assert!(matches!(
            r.check_area(area(900.0)),
            Err(YieldError::DieTooLarge { .. })
        ));
    }

    #[test]
    fn footprint_checks_allow_rotation() {
        let r = Reticle::standard();
        // 30 × 20 fits only after rotating to 20 × 30.
        let die = DieFootprint::new(30.0, 20.0).unwrap();
        assert!(r.fits_footprint(die));
        // 34 mm side can never fit.
        let too_long = DieFootprint::new(34.0, 5.0).unwrap();
        assert!(!r.fits_footprint(too_long));
        // Small area but exceeding both sides in one dimension.
        let sliver = DieFootprint::new(40.0, 1.0).unwrap();
        assert!(r.fits_area(sliver.area()));
        assert!(!r.fits_footprint(sliver));
    }

    #[test]
    fn display() {
        assert_eq!(
            Reticle::standard().to_string(),
            "26 × 33 mm reticle (858 mm² max)"
        );
    }

    #[test]
    fn stitching_field_counts() {
        let r = Reticle::standard();
        assert_eq!(r.fields_required(area(100.0)), 1);
        assert_eq!(r.fields_required(area(858.0)), 1);
        assert_eq!(r.fields_required(area(859.0)), 2);
        assert_eq!(r.fields_required(area(1716.0)), 2);
        assert_eq!(r.fields_required(area(2000.0)), 3);
        assert_eq!(
            r.fields_required(Area::ZERO),
            1,
            "degenerate areas still take a field"
        );
    }
}
