//! Die harvesting (partial-good salvage / binning).
//!
//! Real chiplet products rarely scrap a die over one defect: a CCD with one
//! bad core out of eight is sold as a 6-core part. This module extends the
//! paper's all-or-nothing yield with a salvage model: a die is divided into
//! `units` identical redundant units (cores) plus an unrepairable common
//! region (uncore); the die is *sellable* when the common region is clean
//! and at least `min_good_units` units are clean.
//!
//! With the negative-binomial model the per-wafer defect rate is a shared
//! Gamma multiplier, so unit outcomes are correlated; the closed form below
//! integrates the binomial over the Gamma mixture by Gauss-Laguerre-free
//! binomial expansion: conditional on rate `λ·G`, each unit is clean with
//! probability `exp(−λ_u·G)` and the common region with `exp(−λ_c·G)`, so
//!
//! `P(sellable) = Σ_{k=min}^{n} C(n,k) Σ_{j=0}^{n−k} C(n−k,j) (−1)^j ·
//!  E[exp(−(λ_c + (k+j)·λ_u)·G)]`
//!
//! where `E[exp(−s·G)] = (1 + s/c)^(−c)` is the Gamma Laplace transform —
//! i.e. every term is an Eq. (1) evaluation. No sampling required.

use serde::{Deserialize, Serialize};

use actuary_units::{Area, Money, Prob};

use crate::defect::DefectDensity;
use crate::error::YieldError;

/// A salvage (binning) scheme for a die with redundant units.
///
/// # Examples
///
/// ```
/// use actuary_units::Area;
/// use actuary_yield::{DefectDensity, HarvestSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // An 8-core CCD sold down to 6 cores; 60% of the die is core area.
/// let spec = HarvestSpec::new(8, 6, 0.60)?;
/// let d = DefectDensity::per_cm2(0.13)?;
/// let die = Area::from_mm2(74.0)?;
/// let strict = spec.full_yield(d, die, 10.0)?;
/// let salvaged = spec.sellable_yield(d, die, 10.0)?;
/// assert!(salvaged.value() > strict.value());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarvestSpec {
    units: u32,
    min_good_units: u32,
    unit_area_fraction: f64,
}

impl HarvestSpec {
    /// Creates a salvage scheme: `units` redundant units of which
    /// `min_good_units` must be clean; `unit_area_fraction` of the die is
    /// covered by the units (the rest is the unrepairable common region).
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidModelParameter`] if `units` is zero,
    /// `min_good_units` is zero or exceeds `units`, or the area fraction is
    /// outside `(0, 1]`.
    pub fn new(
        units: u32,
        min_good_units: u32,
        unit_area_fraction: f64,
    ) -> Result<Self, YieldError> {
        if units == 0 {
            return Err(YieldError::InvalidModelParameter {
                name: "units",
                value: units as f64,
            });
        }
        if min_good_units == 0 || min_good_units > units {
            return Err(YieldError::InvalidModelParameter {
                name: "min_good_units",
                value: min_good_units as f64,
            });
        }
        if !unit_area_fraction.is_finite()
            || !(0.0..=1.0).contains(&unit_area_fraction)
            // lint:allow(determinism): rejecting exactly-zero input is validation, not comparison drift
            || unit_area_fraction == 0.0
        {
            return Err(YieldError::InvalidModelParameter {
                name: "unit_area_fraction",
                value: unit_area_fraction,
            });
        }
        Ok(HarvestSpec {
            units,
            min_good_units,
            unit_area_fraction,
        })
    }

    /// Number of redundant units on the die.
    pub fn units(self) -> u32 {
        self.units
    }

    /// Minimum clean units for the die to be sellable.
    pub fn min_good_units(self) -> u32 {
        self.min_good_units
    }

    /// Fraction of the die area covered by the redundant units.
    pub fn unit_area_fraction(self) -> f64 {
        self.unit_area_fraction
    }

    /// Gamma Laplace transform `E[exp(−s·G)] = (1 + s/c)^(−c)` — the
    /// negative-binomial kernel of Eq. (1).
    fn laplace(s: f64, cluster: f64) -> f64 {
        (1.0 + s / cluster).powf(-cluster)
    }

    /// Probability that *every* unit and the common region are clean —
    /// identical to the plain Eq. (1) yield of the whole die.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidModelParameter`] if `cluster` is not
    /// positive.
    pub fn full_yield(
        self,
        density: DefectDensity,
        die: Area,
        cluster: f64,
    ) -> Result<Prob, YieldError> {
        if !cluster.is_finite() || cluster <= 0.0 {
            return Err(YieldError::InvalidModelParameter {
                name: "cluster",
                value: cluster,
            });
        }
        let lambda = density.expected_defects(die);
        Ok(Prob::new(Self::laplace(lambda, cluster)).expect("laplace transform is within [0, 1]"))
    }

    /// Probability that the die is sellable: clean common region and at
    /// least `min_good_units` clean units.
    ///
    /// Uses the exact inclusion-exclusion closed form for up to 20 units;
    /// beyond that the alternating binomial sums cancel catastrophically in
    /// `f64`, so a stable Simpson quadrature over the Gamma mixture is used
    /// instead (relative error below 1e-6 for practical parameters).
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidModelParameter`] if `cluster` is not
    /// positive.
    pub fn sellable_yield(
        self,
        density: DefectDensity,
        die: Area,
        cluster: f64,
    ) -> Result<Prob, YieldError> {
        if !cluster.is_finite() || cluster <= 0.0 {
            return Err(YieldError::InvalidModelParameter {
                name: "cluster",
                value: cluster,
            });
        }
        let lambda = density.expected_defects(die);
        let lambda_unit = lambda * self.unit_area_fraction / self.units as f64;
        let lambda_common = lambda * (1.0 - self.unit_area_fraction);
        let p = if self.units <= 20 {
            self.sellable_closed_form(lambda_unit, lambda_common, cluster)
        } else {
            self.sellable_quadrature(lambda_unit, lambda_common, cluster)
        };
        // Guard against floating point dust outside [0, 1].
        Ok(Prob::new(p.clamp(0.0, 1.0)).expect("clamped probability is valid"))
    }

    /// Exact inclusion-exclusion form (small unit counts):
    /// `Σ_{k=min}^{n} C(n,k) Σ_{j=0}^{n−k} C(n−k,j) (−1)^j L(λc+(k+j)λu)`.
    fn sellable_closed_form(self, lambda_unit: f64, lambda_common: f64, cluster: f64) -> f64 {
        let n = self.units as i64;
        let mut p = 0.0f64;
        for k in self.min_good_units as i64..=n {
            let c_nk = binomial_f64(n, k);
            let mut inner = 0.0f64;
            for j in 0..=(n - k) {
                let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
                let s = lambda_common + (k + j) as f64 * lambda_unit;
                inner += sign * binomial_f64(n - k, j) * Self::laplace(s, cluster);
            }
            p += c_nk * inner;
        }
        p
    }

    /// Stable Simpson quadrature over the Gamma(c, 1/c) mixture:
    /// `∫ f_G(g) · e^(−λc·g) · P(Binom(n, e^(−λu·g)) ≥ m) dg`.
    fn sellable_quadrature(self, lambda_unit: f64, lambda_common: f64, cluster: f64) -> f64 {
        // Integrate to the far tail of Gamma(c, 1/c): mean 1, sd 1/√c.
        let upper = 1.0 + 12.0 / cluster.sqrt();
        let steps = 512usize; // even
        let h = upper / steps as f64;
        let ln_norm = cluster * cluster.ln() - ln_gamma(cluster);
        let integrand = |g: f64| -> f64 {
            if g <= 0.0 {
                return 0.0;
            }
            let ln_pdf = ln_norm + (cluster - 1.0) * g.ln() - cluster * g;
            let p_unit = (-lambda_unit * g).exp();
            ln_pdf.exp()
                * (-lambda_common * g).exp()
                * binomial_tail(self.units, self.min_good_units, p_unit)
        };
        let mut sum = integrand(0.0) + integrand(upper);
        for i in 1..steps {
            let weight = if i % 2 == 1 { 4.0 } else { 2.0 };
            sum += weight * integrand(i as f64 * h);
        }
        sum * h / 3.0
    }

    /// Effective cost per *sellable* die: `raw / sellable_yield`. Compare
    /// with `raw / full_yield` to quantify the salvage benefit.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidModelParameter`] for a bad cluster or a
    /// zero sellable yield.
    pub fn cost_per_sellable_die(
        self,
        raw_die_cost: Money,
        density: DefectDensity,
        die: Area,
        cluster: f64,
    ) -> Result<Money, YieldError> {
        let y = self.sellable_yield(density, die, cluster)?;
        if y.is_zero() {
            return Err(YieldError::InvalidModelParameter {
                name: "sellable_yield",
                value: 0.0,
            });
        }
        Ok(raw_die_cost * (1.0 / y.value()))
    }
}

/// Binomial coefficient as f64 (exact for the small `n` used here).
fn binomial_f64(n: i64, k: i64) -> f64 {
    if k < 0 || k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// `P(Binom(n, p) ≥ m)` computed by a stable multiplicative term
/// recurrence seeded in log space.
fn binomial_tail(n: u32, m: u32, p: f64) -> f64 {
    if m == 0 {
        return 1.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let n_f = n as f64;
    let q = 1.0 - p;
    // Seed at k = m: ln C(n,m) + m ln p + (n−m) ln q.
    let ln_term = ln_gamma(n_f + 1.0) - ln_gamma(m as f64 + 1.0) - ln_gamma((n - m) as f64 + 1.0)
        + m as f64 * p.ln()
        + (n - m) as f64 * q.ln();
    let mut term = ln_term.exp();
    let mut sum = term;
    for k in m..n {
        term *= (n - k) as f64 / (k + 1) as f64 * (p / q);
        sum += term;
    }
    sum.min(1.0)
}

/// Natural log of the Gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9_f64;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dd(v: f64) -> DefectDensity {
        DefectDensity::per_cm2(v).unwrap()
    }

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(HarvestSpec::new(8, 6, 0.6).is_ok());
        assert!(HarvestSpec::new(0, 1, 0.6).is_err());
        assert!(HarvestSpec::new(8, 0, 0.6).is_err());
        assert!(HarvestSpec::new(8, 9, 0.6).is_err());
        assert!(HarvestSpec::new(8, 6, 0.0).is_err());
        assert!(HarvestSpec::new(8, 6, 1.2).is_err());
    }

    #[test]
    fn requiring_all_units_equals_plain_yield() {
        // min = n and the whole die covered by units ⇒ exactly Eq. (1).
        let spec = HarvestSpec::new(8, 8, 1.0).unwrap();
        let y_salvage = spec.sellable_yield(dd(0.13), area(74.0), 10.0).unwrap();
        let y_plain = spec.full_yield(dd(0.13), area(74.0), 10.0).unwrap();
        assert!(
            (y_salvage.value() - y_plain.value()).abs() < 1e-10,
            "{} vs {}",
            y_salvage,
            y_plain
        );
    }

    #[test]
    fn salvage_always_helps() {
        let strict = HarvestSpec::new(8, 8, 0.6).unwrap();
        let salvage = HarvestSpec::new(8, 6, 0.6).unwrap();
        let d = dd(0.13);
        let s = area(74.0);
        let y_strict = strict.sellable_yield(d, s, 10.0).unwrap();
        let y_salvage = salvage.sellable_yield(d, s, 10.0).unwrap();
        assert!(y_salvage.value() > y_strict.value());
    }

    #[test]
    fn epyc_style_numbers_are_plausible() {
        // 8-core 74 mm² CCD at early 7 nm (D = 0.13): plain yield ≈ 91 %;
        // with 6-of-8 salvage the sellable rate approaches the
        // common-region (uncore) bound of ≈ 96.2 %.
        let spec = HarvestSpec::new(8, 6, 0.60).unwrap();
        let plain = spec.full_yield(dd(0.13), area(74.0), 10.0).unwrap();
        let sellable = spec.sellable_yield(dd(0.13), area(74.0), 10.0).unwrap();
        assert!((plain.value() - 0.909).abs() < 0.01, "plain {plain}");
        let lambda_common = dd(0.13).expected_defects(area(74.0)) * 0.40;
        let uncore_bound = (1.0 + lambda_common / 10.0).powf(-10.0);
        assert!(sellable.value() > 0.955, "sellable {sellable}");
        assert!(
            (sellable.value() - uncore_bound).abs() < 0.005,
            "salvage should approach the uncore bound: {sellable} vs {uncore_bound:.4}"
        );
    }

    #[test]
    fn cost_per_sellable_die() {
        let spec = HarvestSpec::new(8, 6, 0.60).unwrap();
        let raw = Money::from_usd(12.0).unwrap();
        let cost = spec
            .cost_per_sellable_die(raw, dd(0.13), area(74.0), 10.0)
            .unwrap();
        assert!(cost > raw);
        let strict = HarvestSpec::new(8, 8, 0.60).unwrap();
        let strict_cost = strict
            .cost_per_sellable_die(raw, dd(0.13), area(74.0), 10.0)
            .unwrap();
        assert!(cost < strict_cost, "salvage must cut the effective cost");
    }

    #[test]
    fn monte_carlo_cross_check() {
        // Verify the closed form against direct simulation of the
        // Gamma-Poisson process.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let spec = HarvestSpec::new(8, 6, 0.60).unwrap();
        let d = dd(0.20);
        let s = area(80.0);
        let cluster = 10.0;
        let analytic = spec.sellable_yield(d, s, cluster).unwrap().value();

        let lambda = d.expected_defects(s);
        let lambda_unit = lambda * 0.60 / 8.0;
        let lambda_common = lambda * 0.40;
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 200_000;
        let mut sellable = 0u32;
        for _ in 0..trials {
            // Gamma(c, 1/c) via sum of exponentials is wrong for non-integer
            // c; use the Marsaglia-Tsang-free approach: for c = 10 (integer)
            // the sum of 10 Exp(1) / 10 is exact.
            let g: f64 = (0..10)
                .map(|_| -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln())
                .sum::<f64>()
                / 10.0;
            let common_clean = rng.gen::<f64>() < (-lambda_common * g).exp();
            if !common_clean {
                continue;
            }
            let p_unit = (-lambda_unit * g).exp();
            let good_units = (0..8).filter(|_| rng.gen::<f64>() < p_unit).count();
            if good_units >= 6 {
                sellable += 1;
            }
        }
        let empirical = sellable as f64 / trials as f64;
        assert!(
            (empirical - analytic).abs() < 0.005,
            "closed form {analytic} vs simulation {empirical}"
        );
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        assert!((ln_gamma(10.0) - 362_880.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn binomial_tail_basics() {
        assert_eq!(binomial_tail(8, 0, 0.5), 1.0);
        assert_eq!(binomial_tail(8, 3, 0.0), 0.0);
        assert_eq!(binomial_tail(8, 3, 1.0), 1.0);
        // P(Binom(2, 0.5) >= 1) = 0.75.
        assert!((binomial_tail(2, 1, 0.5) - 0.75).abs() < 1e-12);
        // P(Binom(8, 0.9) >= 8) = 0.9^8.
        assert!((binomial_tail(8, 8, 0.9) - 0.9f64.powi(8)).abs() < 1e-12);
    }

    #[test]
    fn quadrature_agrees_with_closed_form_on_small_n() {
        // Force both paths on the same n=8 configuration and compare.
        let spec = HarvestSpec::new(8, 6, 0.60).unwrap();
        let lambda = dd(0.20).expected_defects(area(100.0));
        let lambda_unit = lambda * 0.60 / 8.0;
        let lambda_common = lambda * 0.40;
        let exact = spec.sellable_closed_form(lambda_unit, lambda_common, 10.0);
        let quad = spec.sellable_quadrature(lambda_unit, lambda_common, 10.0);
        assert!(
            (exact - quad).abs() < 1e-5,
            "closed form {exact} vs quadrature {quad}"
        );
    }

    #[test]
    fn large_unit_counts_are_stable() {
        // 64 harvestable cores: the inclusion-exclusion form collapses here;
        // the quadrature must return a sane probability.
        let spec = HarvestSpec::new(64, 48, 0.60).unwrap();
        let y = spec.sellable_yield(dd(0.13), area(700.0), 10.0).unwrap();
        assert!(y.value() > 0.0 && y.value() <= 1.0, "{y}");
        // Bounded by the uncore yield.
        let lambda_common = dd(0.13).expected_defects(area(700.0)) * 0.40;
        let bound = (1.0 + lambda_common / 10.0).powf(-10.0);
        assert!(y.value() <= bound + 1e-6, "{y} vs bound {bound:.4}");
        // And salvage helps: well above the all-64-cores-perfect yield.
        let strict = HarvestSpec::new(64, 64, 0.60).unwrap();
        let y_strict = strict.sellable_yield(dd(0.13), area(700.0), 10.0).unwrap();
        assert!(y.value() > y_strict.value());
    }

    proptest! {
        #[test]
        fn sellable_yield_is_valid_probability(
            d in 0.01f64..1.0,
            mm2 in 20.0f64..400.0,
            units in 2u32..12,
            frac in 0.1f64..1.0,
        ) {
            let min = units.max(2) - 1;
            let spec = HarvestSpec::new(units, min, frac).unwrap();
            let y = spec.sellable_yield(dd(d), area(mm2), 10.0).unwrap();
            prop_assert!((0.0..=1.0).contains(&y.value()));
        }

        #[test]
        fn lower_bin_requirements_never_hurt(
            d in 0.01f64..0.6,
            mm2 in 20.0f64..300.0,
        ) {
            let tight = HarvestSpec::new(8, 8, 0.6).unwrap();
            let mid = HarvestSpec::new(8, 7, 0.6).unwrap();
            let loose = HarvestSpec::new(8, 6, 0.6).unwrap();
            let y_tight = tight.sellable_yield(dd(d), area(mm2), 10.0).unwrap().value();
            let y_mid = mid.sellable_yield(dd(d), area(mm2), 10.0).unwrap().value();
            let y_loose = loose.sellable_yield(dd(d), area(mm2), 10.0).unwrap().value();
            prop_assert!(y_loose + 1e-12 >= y_mid && y_mid + 1e-12 >= y_tight);
        }

        #[test]
        fn sellable_bounded_by_common_region_yield(
            d in 0.01f64..0.6,
            mm2 in 20.0f64..300.0,
            frac in 0.2f64..0.9,
        ) {
            let spec = HarvestSpec::new(8, 4, frac).unwrap();
            let y = spec.sellable_yield(dd(d), area(mm2), 10.0).unwrap().value();
            // The common region alone yields (1 + λc/c)^(−c); salvage can
            // never beat that bound.
            let lambda_common = dd(d).expected_defects(area(mm2)) * (1.0 - frac);
            let bound = (1.0 + lambda_common / 10.0).powf(-10.0);
            prop_assert!(y <= bound + 1e-9);
        }
    }
}
