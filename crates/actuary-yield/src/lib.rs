//! Yield models and wafer geometry for the `chiplet-actuary` cost model.
//!
//! This crate is the manufacturing-statistics substrate of the paper
//! *Chiplet Actuary* (DAC 2022). It provides:
//!
//! * [`DefectDensity`] — defects per cm², the `D` of the paper's Eq. (1);
//! * the [`YieldModel`] trait with the negative-binomial / Seed's model used
//!   by the paper ([`NegativeBinomial`]) plus the classical alternatives
//!   ([`Poisson`], [`Murphy`], [`SeedsExponential`], [`BoseEinstein`]) so the
//!   model choice itself can be ablated;
//! * [`WaferSpec`] — wafer diameter, edge exclusion and scribe lanes, with
//!   both the standard analytic dies-per-wafer estimate and an exact
//!   rectangular-grid placement count ([`WaferSpec::dies_per_wafer_grid`]);
//! * [`Reticle`] — lithographic field-size limits ("Moore Limit" checks).
//!
//! # Examples
//!
//! Reproducing an anchor point of the paper's Figure 2 (3 nm, `D = 0.20`,
//! `c = 10`, 800 mm² die → ≈ 22.7 % yield):
//!
//! ```
//! use actuary_units::Area;
//! use actuary_yield::{DefectDensity, NegativeBinomial, YieldModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = NegativeBinomial::new(10.0)?;
//! let d = DefectDensity::per_cm2(0.20)?;
//! let y = model.die_yield(d, Area::from_mm2(800.0)?);
//! assert!((y.value() - 0.2267).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod defect;
mod error;
mod gridding;
mod harvest;
mod model;
mod reticle;
mod wafer;

pub use defect::DefectDensity;
pub use error::YieldError;
pub use gridding::{DieFootprint, GridCount, GridOffset};
pub use harvest::HarvestSpec;
pub use model::{BoseEinstein, Murphy, NegativeBinomial, Poisson, SeedsExponential, YieldModel};
pub use reticle::Reticle;
pub use wafer::WaferSpec;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, YieldError>;
