use std::fmt::Debug;

use serde::{Deserialize, Serialize};

use actuary_units::{Area, Prob};

use crate::defect::DefectDensity;
use crate::error::YieldError;

/// A die-yield model: maps defect density and die area to a probability that
/// a die is good.
///
/// The paper (§2.2) adopts the negative-binomial form of Eq. (1); the other
/// classical models are provided so that the *choice of model* can itself be
/// explored (see the `yield_model_ablation` bench).
///
/// Implementations must be monotone: yield never increases with area or with
/// defect density. The property suite in this module asserts this for every
/// shipped model.
pub trait YieldModel: Debug {
    /// Yield of a die of area `die` under defect density `density`.
    ///
    /// Implementations must return a valid probability for any non-negative
    /// inputs; zero-area dies yield 1.
    fn die_yield(&self, density: DefectDensity, die: Area) -> Prob;

    /// A short human-readable name for reports ("negative binomial", …).
    fn name(&self) -> &'static str;
}

/// The negative-binomial / Seed's model of the paper's Eq. (1):
///
/// `Y = (1 + D·S / c)^(−c)`
///
/// where `c` is the cluster parameter (negative binomial) or the number of
/// critical mask levels (Seed's interpretation). The paper uses `c = 10` for
/// logic processes, `c = 3` for fan-out RDL and `c = 6` for silicon
/// interposers.
///
/// # Examples
///
/// ```
/// use actuary_units::Area;
/// use actuary_yield::{DefectDensity, NegativeBinomial, YieldModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = NegativeBinomial::new(10.0)?;
/// let y = m.die_yield(DefectDensity::per_cm2(0.09)?, Area::from_mm2(100.0)?);
/// assert!((y.value() - (1.0 + 0.09 / 10.0f64).powi(-10)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegativeBinomial {
    cluster: f64,
}

impl NegativeBinomial {
    /// Creates the model with cluster parameter `c`.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidModelParameter`] if `c` is not finite and
    /// positive.
    pub fn new(cluster: f64) -> Result<Self, YieldError> {
        if cluster.is_finite() && cluster > 0.0 {
            Ok(NegativeBinomial { cluster })
        } else {
            Err(YieldError::InvalidModelParameter {
                name: "cluster",
                value: cluster,
            })
        }
    }

    /// The cluster parameter `c`.
    #[inline]
    pub fn cluster(self) -> f64 {
        self.cluster
    }
}

impl YieldModel for NegativeBinomial {
    fn die_yield(&self, density: DefectDensity, die: Area) -> Prob {
        let ds = density.expected_defects(die);
        let y = (1.0 + ds / self.cluster).powf(-self.cluster);
        // The formula is mathematically confined to (0, 1] for ds >= 0.
        Prob::new(y).expect("negative-binomial yield is always within [0, 1]")
    }

    fn name(&self) -> &'static str {
        "negative binomial"
    }
}

/// The Poisson yield model `Y = e^(−D·S)`, the `c → ∞` limit of
/// [`NegativeBinomial`]. Pessimistic for large dies because it ignores defect
/// clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Poisson;

impl Poisson {
    /// Creates the Poisson model.
    pub fn new() -> Self {
        Poisson
    }
}

impl YieldModel for Poisson {
    fn die_yield(&self, density: DefectDensity, die: Area) -> Prob {
        let ds = density.expected_defects(die);
        Prob::new((-ds).exp()).expect("poisson yield is always within [0, 1]")
    }

    fn name(&self) -> &'static str {
        "poisson"
    }
}

/// Murphy's model `Y = ((1 − e^(−D·S)) / (D·S))²`, a classical compromise
/// between Poisson and uniform defect distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Murphy;

impl Murphy {
    /// Creates Murphy's model.
    pub fn new() -> Self {
        Murphy
    }
}

impl YieldModel for Murphy {
    fn die_yield(&self, density: DefectDensity, die: Area) -> Prob {
        let ds = density.expected_defects(die);
        // lint:allow(determinism): removable singularity of (1 - e^-x)/x at exactly zero
        if ds == 0.0 {
            return Prob::ONE;
        }
        let base = (1.0 - (-ds).exp()) / ds;
        Prob::new(base * base).expect("murphy yield is always within [0, 1]")
    }

    fn name(&self) -> &'static str {
        "murphy"
    }
}

/// The exponential (Seeds) model `Y = 1 / (1 + D·S)`, the most optimistic of
/// the classical models for very large dies (maximum clustering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SeedsExponential;

impl SeedsExponential {
    /// Creates the exponential model.
    pub fn new() -> Self {
        SeedsExponential
    }
}

impl YieldModel for SeedsExponential {
    fn die_yield(&self, density: DefectDensity, die: Area) -> Prob {
        let ds = density.expected_defects(die);
        Prob::new(1.0 / (1.0 + ds)).expect("exponential yield is always within [0, 1]")
    }

    fn name(&self) -> &'static str {
        "seeds exponential"
    }
}

/// The Bose-Einstein model `Y = (1 + D·S)^(−n)` for `n` critical mask
/// levels; equivalent to [`SeedsExponential`] at `n = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoseEinstein {
    levels: f64,
}

impl BoseEinstein {
    /// Creates the model with `levels` critical mask levels.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidModelParameter`] if `levels` is not
    /// finite and positive.
    pub fn new(levels: f64) -> Result<Self, YieldError> {
        if levels.is_finite() && levels > 0.0 {
            Ok(BoseEinstein { levels })
        } else {
            Err(YieldError::InvalidModelParameter {
                name: "levels",
                value: levels,
            })
        }
    }

    /// The number of critical mask levels.
    #[inline]
    pub fn levels(self) -> f64 {
        self.levels
    }
}

impl YieldModel for BoseEinstein {
    fn die_yield(&self, density: DefectDensity, die: Area) -> Prob {
        let ds = density.expected_defects(die);
        Prob::new((1.0 + ds).powf(-self.levels))
            .expect("bose-einstein yield is always within [0, 1]")
    }

    fn name(&self) -> &'static str {
        "bose-einstein"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    fn dd(v: f64) -> DefectDensity {
        DefectDensity::per_cm2(v).unwrap()
    }

    /// Anchor points read off the paper's Figure 2 (±1 % yield tolerance).
    #[test]
    fn paper_figure2_anchor_points() {
        let nb10 = NegativeBinomial::new(10.0).unwrap();
        let cases = [
            (0.20, 800.0, 0.2267), // 3 nm
            (0.11, 800.0, 0.4303), // 5 nm
            (0.09, 800.0, 0.4991), // 7 nm
            (0.08, 800.0, 0.5377), // 14 nm
        ];
        for (d, s, expected) in cases {
            let y = nb10.die_yield(dd(d), area(s)).value();
            assert!(
                (y - expected).abs() < 0.01,
                "D={d} S={s}: got {y}, expected {expected}"
            );
        }
        let rdl = NegativeBinomial::new(3.0).unwrap();
        let y = rdl.die_yield(dd(0.05), area(800.0)).value();
        assert!((y - 0.687).abs() < 0.01, "RDL: got {y}");
        let si = NegativeBinomial::new(6.0).unwrap();
        let y = si.die_yield(dd(0.06), area(800.0)).value();
        assert!((y - 0.630).abs() < 0.01, "SI: got {y}");
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(NegativeBinomial::new(0.0).is_err());
        assert!(NegativeBinomial::new(-3.0).is_err());
        assert!(NegativeBinomial::new(f64::NAN).is_err());
        assert!(BoseEinstein::new(0.0).is_err());
        assert!(NegativeBinomial::new(10.0).is_ok());
    }

    #[test]
    fn zero_area_and_zero_defects_yield_one() {
        let models: Vec<Box<dyn YieldModel>> = vec![
            Box::new(NegativeBinomial::new(10.0).unwrap()),
            Box::new(Poisson::new()),
            Box::new(Murphy::new()),
            Box::new(SeedsExponential::new()),
            Box::new(BoseEinstein::new(5.0).unwrap()),
        ];
        for m in &models {
            assert_eq!(m.die_yield(dd(0.2), Area::ZERO), Prob::ONE, "{}", m.name());
            assert_eq!(
                m.die_yield(DefectDensity::ZERO, area(500.0)),
                Prob::ONE,
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn negative_binomial_limits() {
        // c → ∞ approaches Poisson.
        let nb = NegativeBinomial::new(1e7).unwrap();
        let p = Poisson::new();
        let y_nb = nb.die_yield(dd(0.1), area(400.0)).value();
        let y_p = p.die_yield(dd(0.1), area(400.0)).value();
        assert!((y_nb - y_p).abs() < 1e-5);
        // c = 1 equals the exponential model.
        let nb1 = NegativeBinomial::new(1.0).unwrap();
        let se = SeedsExponential::new();
        let y1 = nb1.die_yield(dd(0.1), area(400.0)).value();
        let y2 = se.die_yield(dd(0.1), area(400.0)).value();
        assert!((y1 - y2).abs() < 1e-12);
    }

    #[test]
    fn model_ordering_for_large_dies() {
        // With clustering, large dies yield better than Poisson predicts.
        let nb = NegativeBinomial::new(10.0).unwrap();
        let p = Poisson::new();
        let se = SeedsExponential::new();
        let d = dd(0.2);
        let s = area(800.0);
        let y_p = p.die_yield(d, s).value();
        let y_nb = nb.die_yield(d, s).value();
        let y_se = se.die_yield(d, s).value();
        assert!(y_p < y_nb, "poisson must be most pessimistic");
        assert!(y_nb < y_se, "exponential must be most optimistic");
    }

    #[test]
    fn murphy_between_poisson_and_exponential() {
        let d = dd(0.15);
        let s = area(600.0);
        let y_p = Poisson::new().die_yield(d, s).value();
        let y_m = Murphy::new().die_yield(d, s).value();
        let y_e = SeedsExponential::new().die_yield(d, s).value();
        assert!(y_p < y_m && y_m < y_e);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            NegativeBinomial::new(10.0).unwrap().name(),
            "negative binomial"
        );
        assert_eq!(Poisson::new().name(), "poisson");
        assert_eq!(Murphy::new().name(), "murphy");
        assert_eq!(SeedsExponential::new().name(), "seeds exponential");
        assert_eq!(BoseEinstein::new(2.0).unwrap().name(), "bose-einstein");
    }

    #[test]
    fn trait_is_object_safe() {
        let m: &dyn YieldModel = &Poisson::new();
        assert!(m.die_yield(dd(0.1), area(100.0)).value() > 0.0);
    }

    proptest! {
        #[test]
        fn all_models_return_valid_probabilities(
            d in 0.0f64..5.0,
            s in 0.0f64..2000.0,
            c in 0.5f64..50.0,
        ) {
            let models: Vec<Box<dyn YieldModel>> = vec![
                Box::new(NegativeBinomial::new(c).unwrap()),
                Box::new(Poisson::new()),
                Box::new(Murphy::new()),
                Box::new(SeedsExponential::new()),
                Box::new(BoseEinstein::new(c).unwrap()),
            ];
            for m in &models {
                let y = m.die_yield(dd(d), area(s)).value();
                prop_assert!((0.0..=1.0).contains(&y), "{} returned {y}", m.name());
            }
        }

        #[test]
        fn yield_monotone_decreasing_in_area(
            d in 0.01f64..2.0,
            s in 1.0f64..1000.0,
            c in 1.0f64..30.0,
        ) {
            let models: Vec<Box<dyn YieldModel>> = vec![
                Box::new(NegativeBinomial::new(c).unwrap()),
                Box::new(Poisson::new()),
                Box::new(Murphy::new()),
                Box::new(SeedsExponential::new()),
                Box::new(BoseEinstein::new(c).unwrap()),
            ];
            for m in &models {
                let y_small = m.die_yield(dd(d), area(s)).value();
                let y_big = m.die_yield(dd(d), area(s * 1.5)).value();
                prop_assert!(y_big <= y_small + 1e-12, "{} not monotone in area", m.name());
            }
        }

        #[test]
        fn yield_monotone_decreasing_in_density(
            d in 0.01f64..2.0,
            s in 1.0f64..1000.0,
        ) {
            let nb = NegativeBinomial::new(10.0).unwrap();
            let y_low = nb.die_yield(dd(d), area(s)).value();
            let y_high = nb.die_yield(dd(d * 2.0), area(s)).value();
            prop_assert!(y_high <= y_low + 1e-12);
        }

        #[test]
        fn clustering_helps_yield(
            d in 0.01f64..1.0,
            s in 10.0f64..1000.0,
            c_small in 1.0f64..5.0,
        ) {
            // Smaller cluster parameter = more clustering = better yield.
            let c_large = c_small * 4.0;
            let m_small = NegativeBinomial::new(c_small).unwrap();
            let m_large = NegativeBinomial::new(c_large).unwrap();
            let y_small = m_small.die_yield(dd(d), area(s)).value();
            let y_large = m_large.die_yield(dd(d), area(s)).value();
            prop_assert!(y_small >= y_large - 1e-12);
        }
    }
}
