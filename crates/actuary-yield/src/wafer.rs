use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::{Area, Money};

use crate::error::YieldError;
use crate::gridding::{count_dies_in_circle, DieFootprint, GridCount};

/// Physical wafer geometry: diameter, edge exclusion and scribe-lane width.
///
/// Two dies-per-wafer estimators are provided:
///
/// * [`WaferSpec::dies_per_wafer`] — the standard analytic approximation
///   `DPW = π·(d/2)²/S − π·d/√(2·S)` over the usable diameter, which is what
///   cost models (including the paper's) typically use; and
/// * [`WaferSpec::dies_per_wafer_grid`] — an exact rectangular-grid placement
///   count that actually tiles dies onto the usable disc, for checking the
///   approximation and for aspect-ratio studies.
///
/// # Examples
///
/// ```
/// use actuary_units::Area;
/// use actuary_yield::WaferSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let wafer = WaferSpec::mm300()?;
/// let dpw = wafer.dies_per_wafer(Area::from_mm2(100.0)?)?;
/// assert!(dpw > 550.0 && dpw < 650.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaferSpec {
    diameter_mm: f64,
    edge_exclusion_mm: f64,
    scribe_lane_mm: f64,
}

impl WaferSpec {
    /// Creates a wafer specification.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidWaferGeometry`] if the diameter is not
    /// positive, any parameter is not finite, the edge exclusion consumes the
    /// whole wafer, or the scribe lane is negative.
    pub fn new(
        diameter_mm: f64,
        edge_exclusion_mm: f64,
        scribe_lane_mm: f64,
    ) -> Result<Self, YieldError> {
        if !diameter_mm.is_finite() || diameter_mm <= 0.0 {
            return Err(YieldError::InvalidWaferGeometry {
                reason: format!("diameter {diameter_mm} mm must be positive"),
            });
        }
        if !edge_exclusion_mm.is_finite() || edge_exclusion_mm < 0.0 {
            return Err(YieldError::InvalidWaferGeometry {
                reason: format!("edge exclusion {edge_exclusion_mm} mm must be non-negative"),
            });
        }
        if 2.0 * edge_exclusion_mm >= diameter_mm {
            return Err(YieldError::InvalidWaferGeometry {
                reason: format!(
                    "edge exclusion {edge_exclusion_mm} mm leaves no usable area on a \
                     {diameter_mm} mm wafer"
                ),
            });
        }
        if !scribe_lane_mm.is_finite() || scribe_lane_mm < 0.0 {
            return Err(YieldError::InvalidWaferGeometry {
                reason: format!("scribe lane {scribe_lane_mm} mm must be non-negative"),
            });
        }
        Ok(WaferSpec {
            diameter_mm,
            edge_exclusion_mm,
            scribe_lane_mm,
        })
    }

    /// The standard 300 mm production wafer: 3 mm edge exclusion and a
    /// 0.1 mm scribe lane.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature is kept fallible for symmetry
    /// with [`WaferSpec::new`].
    pub fn mm300() -> Result<Self, YieldError> {
        Self::new(300.0, 3.0, 0.1)
    }

    /// A 200 mm wafer (legacy processes), 3 mm edge exclusion, 0.1 mm scribe.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for symmetry with
    /// [`WaferSpec::new`].
    pub fn mm200() -> Result<Self, YieldError> {
        Self::new(200.0, 3.0, 0.1)
    }

    /// Wafer diameter in mm.
    #[inline]
    pub fn diameter_mm(self) -> f64 {
        self.diameter_mm
    }

    /// Edge exclusion in mm.
    #[inline]
    pub fn edge_exclusion_mm(self) -> f64 {
        self.edge_exclusion_mm
    }

    /// Scribe lane (saw street) width in mm.
    #[inline]
    pub fn scribe_lane_mm(self) -> f64 {
        self.scribe_lane_mm
    }

    /// Usable diameter after edge exclusion, in mm.
    #[inline]
    pub fn usable_diameter_mm(self) -> f64 {
        self.diameter_mm - 2.0 * self.edge_exclusion_mm
    }

    /// Usable wafer area after edge exclusion.
    pub fn usable_area(self) -> Area {
        let r = self.usable_diameter_mm() / 2.0;
        Area::from_mm2(std::f64::consts::PI * r * r)
            .expect("usable radius is positive by construction")
    }

    /// Gross area of the full wafer disc (before edge exclusion).
    pub fn gross_area(self) -> Area {
        let r = self.diameter_mm / 2.0;
        Area::from_mm2(std::f64::consts::PI * r * r)
            .expect("wafer radius is positive by construction")
    }

    /// Analytic dies-per-wafer estimate for a (square-ish) die of the given
    /// area, including the scribe-lane overhead:
    ///
    /// `DPW = π·(d/2)² / S_eff − π·d / √(2·S_eff)`
    ///
    /// where `d` is the usable diameter and `S_eff` is the die area inflated
    /// by the scribe lane. The result is clamped at zero; it is fractional by
    /// design (cost models divide wafer cost by it).
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::DieTooLarge`] if the die cannot fit the usable
    /// disc at all, or [`YieldError::InvalidWaferGeometry`] if `die` is zero.
    pub fn dies_per_wafer(self, die: Area) -> Result<f64, YieldError> {
        if die.is_zero() {
            return Err(YieldError::InvalidWaferGeometry {
                reason: "cannot compute dies per wafer for a zero-area die".to_string(),
            });
        }
        let side = die.square_side_mm() + self.scribe_lane_mm;
        let s_eff = side * side;
        let d = self.usable_diameter_mm();
        // The die's diagonal must fit within the usable disc.
        if (2.0 * s_eff).sqrt() > d {
            return Err(YieldError::DieTooLarge {
                die_mm2: die.mm2(),
                limit_mm2: self.usable_area().mm2(),
            });
        }
        let gross = std::f64::consts::PI * (d / 2.0) * (d / 2.0) / s_eff;
        let edge_loss = std::f64::consts::PI * d / (2.0 * s_eff).sqrt();
        Ok((gross - edge_loss).max(0.0))
    }

    /// Exact dies-per-wafer count by tiling `die` rectangles (plus scribe
    /// lanes) onto the usable disc, trying the four standard grid alignments
    /// and returning the best.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidWaferGeometry`] if the footprint has a
    /// non-positive side.
    pub fn dies_per_wafer_grid(self, die: DieFootprint) -> Result<GridCount, YieldError> {
        count_dies_in_circle(self.usable_diameter_mm() / 2.0, die, self.scribe_lane_mm)
    }

    /// Raw wafer cost per mm² of usable area — the normalization basis of
    /// the paper's Figure 2 ("normalized to the cost per area of the raw
    /// wafer").
    pub fn cost_per_usable_mm2(self, wafer_price: Money) -> Money {
        wafer_price / self.usable_area().mm2()
    }

    /// Cost of one (unyielded) die: `wafer_price / DPW`.
    ///
    /// # Errors
    ///
    /// Propagates [`WaferSpec::dies_per_wafer`] errors.
    pub fn raw_die_cost(self, wafer_price: Money, die: Area) -> Result<Money, YieldError> {
        let dpw = self.dies_per_wafer(die)?;
        if dpw <= 0.0 {
            return Err(YieldError::DieTooLarge {
                die_mm2: die.mm2(),
                limit_mm2: self.usable_area().mm2(),
            });
        }
        Ok(wafer_price / dpw)
    }
}

impl fmt::Display for WaferSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} mm wafer (edge exclusion {} mm, scribe {} mm)",
            self.diameter_mm, self.edge_exclusion_mm, self.scribe_lane_mm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(WaferSpec::new(300.0, 3.0, 0.1).is_ok());
        assert!(WaferSpec::new(0.0, 3.0, 0.1).is_err());
        assert!(WaferSpec::new(-300.0, 3.0, 0.1).is_err());
        assert!(WaferSpec::new(300.0, -1.0, 0.1).is_err());
        assert!(WaferSpec::new(300.0, 150.0, 0.1).is_err());
        assert!(WaferSpec::new(300.0, 3.0, -0.1).is_err());
        assert!(WaferSpec::new(f64::NAN, 3.0, 0.1).is_err());
    }

    #[test]
    fn usable_geometry() {
        let w = WaferSpec::mm300().unwrap();
        assert_eq!(w.usable_diameter_mm(), 294.0);
        let expected = std::f64::consts::PI * 147.0 * 147.0;
        assert!((w.usable_area().mm2() - expected).abs() < 1e-9);
        assert!(w.gross_area().mm2() > w.usable_area().mm2());
    }

    #[test]
    fn analytic_dpw_matches_hand_computation() {
        // No scribe, no edge exclusion: the classic textbook numbers.
        let w = WaferSpec::new(300.0, 0.0, 0.0).unwrap();
        let dpw = w.dies_per_wafer(area(100.0)).unwrap();
        let expected = std::f64::consts::PI * 150.0 * 150.0 / 100.0
            - std::f64::consts::PI * 300.0 / (200.0f64).sqrt();
        assert!(
            (dpw - expected).abs() < 1e-9,
            "got {dpw}, expected {expected}"
        );
        assert!((expected - 640.2).abs() < 0.5);
    }

    #[test]
    fn scribe_lane_reduces_count() {
        let tight = WaferSpec::new(300.0, 3.0, 0.0).unwrap();
        let loose = WaferSpec::new(300.0, 3.0, 0.2).unwrap();
        let d = area(64.0);
        assert!(
            loose.dies_per_wafer(d).unwrap() < tight.dies_per_wafer(d).unwrap(),
            "scribe lanes must cost dies"
        );
    }

    #[test]
    fn oversized_die_is_rejected() {
        let w = WaferSpec::mm300().unwrap();
        assert!(matches!(
            w.dies_per_wafer(area(80_000.0)),
            Err(YieldError::DieTooLarge { .. })
        ));
        assert!(w.dies_per_wafer(Area::ZERO).is_err());
    }

    #[test]
    fn grid_count_close_to_analytic() {
        let w = WaferSpec::mm300().unwrap();
        let die = DieFootprint::square_of_area(area(100.0)).unwrap();
        let grid = w.dies_per_wafer_grid(die).unwrap();
        let analytic = w.dies_per_wafer(area(100.0)).unwrap();
        let ratio = grid.count() as f64 / analytic;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "grid {} vs analytic {analytic} (ratio {ratio})",
            grid.count()
        );
    }

    #[test]
    fn raw_die_cost_divides_wafer_price() {
        let w = WaferSpec::mm300().unwrap();
        let price = Money::from_usd(9_346.0).unwrap();
        let cost = w.raw_die_cost(price, area(100.0)).unwrap();
        let dpw = w.dies_per_wafer(area(100.0)).unwrap();
        assert!((cost.usd() - 9_346.0 / dpw).abs() < 1e-9);
    }

    #[test]
    fn cost_per_usable_mm2_is_normalization_basis() {
        let w = WaferSpec::mm300().unwrap();
        let price = Money::from_usd(16_988.0).unwrap();
        let per_mm2 = w.cost_per_usable_mm2(price);
        assert!((per_mm2.usd() * w.usable_area().mm2() - 16_988.0).abs() < 1e-6);
    }

    #[test]
    fn display() {
        let w = WaferSpec::mm300().unwrap();
        assert_eq!(
            w.to_string(),
            "300 mm wafer (edge exclusion 3 mm, scribe 0.1 mm)"
        );
    }

    proptest! {
        #[test]
        fn dpw_monotone_decreasing_in_area(s in 10.0f64..2000.0) {
            let w = WaferSpec::mm300().unwrap();
            let small = w.dies_per_wafer(area(s)).unwrap();
            let big = w.dies_per_wafer(area(s * 1.2)).unwrap();
            prop_assert!(big <= small);
        }

        #[test]
        fn dpw_bounded_by_area_ratio(s in 10.0f64..2000.0) {
            let w = WaferSpec::mm300().unwrap();
            let dpw = w.dies_per_wafer(area(s)).unwrap();
            let bound = w.usable_area().mm2() / s;
            prop_assert!(dpw <= bound + 1e-9);
        }

        #[test]
        fn grid_never_beats_area_bound(s in 20.0f64..2000.0, aspect in 0.5f64..2.0) {
            let w = WaferSpec::mm300().unwrap();
            let die = DieFootprint::of_area_with_aspect(area(s), aspect).unwrap();
            let grid = w.dies_per_wafer_grid(die).unwrap();
            let bound = w.usable_area().mm2() / s;
            prop_assert!((grid.count() as f64) <= bound + 1.0);
        }
    }
}
