use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::Area;

use crate::error::YieldError;

/// Manufacturing defect density in defects per cm² — the `D` of the paper's
/// Eq. (1).
///
/// The paper quotes (Figure 2): 3 nm → 0.20, 5 nm → 0.11, 7 nm → 0.09,
/// 14 nm → 0.08, fan-out RDL → 0.05, silicon interposer → 0.06; and for the
/// AMD validation of Figure 5: early 7 nm → 0.13, GF 12 nm → 0.12.
///
/// # Examples
///
/// ```
/// use actuary_units::Area;
/// use actuary_yield::DefectDensity;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = DefectDensity::per_cm2(0.09)?;
/// let expected = d.expected_defects(Area::from_mm2(800.0)?);
/// assert!((expected - 0.72).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DefectDensity(f64);

impl DefectDensity {
    /// A perfect process with zero defects.
    pub const ZERO: DefectDensity = DefectDensity(0.0);

    /// Creates a defect density from a defects/cm² figure.
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidDefectDensity`] if `d` is negative, NaN
    /// or infinite.
    pub fn per_cm2(d: f64) -> Result<Self, YieldError> {
        if d.is_finite() && d >= 0.0 {
            Ok(DefectDensity(d))
        } else {
            Err(YieldError::InvalidDefectDensity { value: d })
        }
    }

    /// The density in defects/cm².
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The dimensionless expected defect count `D · S` for a die of the given
    /// area — the exponent of every classical yield model.
    #[inline]
    pub fn expected_defects(self, die: Area) -> f64 {
        self.0 * die.cm2()
    }

    /// Scales the density by a non-negative factor (used by maturity ramps
    /// where `D` decreases as a process ages).
    ///
    /// # Errors
    ///
    /// Returns [`YieldError::InvalidDefectDensity`] if the scaled value is
    /// negative or not finite.
    pub fn scaled(self, factor: f64) -> Result<Self, YieldError> {
        Self::per_cm2(self.0 * factor)
    }
}

impl fmt::Display for DefectDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(2);
        write!(f, "{:.*} /cm²", prec, self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation() {
        assert!(DefectDensity::per_cm2(0.0).is_ok());
        assert!(DefectDensity::per_cm2(0.2).is_ok());
        assert!(DefectDensity::per_cm2(-0.01).is_err());
        assert!(DefectDensity::per_cm2(f64::NAN).is_err());
    }

    #[test]
    fn expected_defects_uses_cm2() {
        let d = DefectDensity::per_cm2(0.11).unwrap();
        let s = Area::from_mm2(100.0).unwrap(); // 1 cm²
        assert!((d.expected_defects(s) - 0.11).abs() < 1e-15);
    }

    #[test]
    fn display() {
        let d = DefectDensity::per_cm2(0.09).unwrap();
        assert_eq!(d.to_string(), "0.09 /cm²");
    }

    #[test]
    fn scaling_for_maturity_ramp() {
        let d = DefectDensity::per_cm2(0.13).unwrap();
        let matured = d.scaled(0.5).unwrap();
        assert!((matured.value() - 0.065).abs() < 1e-15);
        assert!(d.scaled(-1.0).is_err());
    }

    proptest! {
        #[test]
        fn expected_defects_linear_in_area(d in 0.0f64..2.0, s in 0.0f64..2000.0) {
            let dd = DefectDensity::per_cm2(d).unwrap();
            let a1 = Area::from_mm2(s).unwrap();
            let a2 = Area::from_mm2(2.0 * s).unwrap();
            let e1 = dd.expected_defects(a1);
            let e2 = dd.expected_defects(a2);
            prop_assert!((e2 - 2.0 * e1).abs() < 1e-9);
        }
    }
}
