//! Compares two benchmark snapshots — `BENCH_explore.json` (see
//! `bench_json.rs`) or `BENCH_serve.json` (see `bench_serve.rs`) — and
//! fails when throughput regressed — the CI perf trend gate.
//!
//! Usage: `bench_gate PREVIOUS.json CURRENT.json [max_ratio]`
//!
//! For every section present in both files, the gate checks its
//! throughput keys — `cells_per_sec_*` for the grid sections,
//! `rows_per_sec` for the artifact-streaming section, `requests_per_sec`
//! for the serving sections: if the previous
//! snapshot was more than `max_ratio` (default 2.0) times faster, the
//! gate exits 1 listing the regressions. Shared-runner noise is well
//! under 2×, so only genuine algorithmic regressions trip it. A missing or
//! unreadable *previous* file exits 0 (first run of a new repository has
//! no history to gate against) — the caller decides whether that is
//! acceptable; a key missing on one side only is skipped, so a snapshot
//! predating a section never blocks the commit that introduces it.

use std::process::ExitCode;

/// The throughput keys the gate watches, per section.
const SECTIONS: [(&str, &[&str]); 9] = [
    (
        "explore_default_grid",
        &["cells_per_sec_threads1", "cells_per_sec_threads_all"],
    ),
    (
        "portfolio_default_grid",
        &["cells_per_sec_threads1", "cells_per_sec_threads_all"],
    ),
    ("fig10_grid_streaming", &["rows_per_sec"]),
    (
        "refine_large_grid",
        &["cells_per_sec_exhaustive", "cells_per_sec_refine"],
    ),
    // Throughput only: steal counts vary with scheduling and are
    // reported for observability, not gated.
    (
        "refine_quantity_grid",
        &[
            "cells_per_sec_exhaustive",
            "cells_per_sec_area_only",
            "cells_per_sec_two_d",
        ],
    ),
    ("engine_steal", &["cells_per_sec"]),
    // BENCH_serve.json sections (bench_serve.rs); a gate run over the
    // explore snapshot skips them because they are missing on both sides.
    ("serve_cold", &["requests_per_sec"]),
    ("serve_hot", &["requests_per_sec"]),
    ("serve_mixed", &["requests_per_sec"]),
];

/// Latency keys the gate watches — lower is better, so the regression
/// ratio inverts to new/old, and the threshold doubles: quantiles
/// interpolated from a 100-request histogram are noisier than whole-run
/// throughput. The +1 ms smoothing keeps sub-millisecond jitter from
/// tripping the ratio.
const LATENCY_SECTIONS: [(&str, &[&str]); 1] =
    [("serve_mixed", &["server_p50_ms", "server_p99_ms"])];

/// Extracts `"key": <number>` from the object literal following
/// `"section": {`. The snapshot format is machine-written with no nested
/// objects inside grid sections, so a scan is sufficient (the offline
/// environment has no JSON crate).
fn extract(json: &str, section: &str, key: &str) -> Option<f64> {
    let section_start = json.find(&format!("\"{section}\""))?;
    let body = &json[section_start..];
    let open = body.find('{')?;
    let close = body[open..].find('}')? + open;
    let object = &body[open..close];
    let key_start = object.find(&format!("\"{key}\""))?;
    let colon = object[key_start..].find(':')? + key_start;
    let rest = object[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (previous_path, current_path) = match (args.first(), args.get(1)) {
        (Some(p), Some(c)) => (p, c),
        _ => {
            eprintln!("usage: bench_gate PREVIOUS.json CURRENT.json [max_ratio]");
            return ExitCode::FAILURE;
        }
    };
    let max_ratio: f64 = match args.get(2) {
        None => 2.0,
        Some(raw) => match raw.parse() {
            Ok(r) if r > 1.0 => r,
            _ => {
                eprintln!("bench_gate: max_ratio must be a number > 1, got {raw:?}");
                return ExitCode::FAILURE;
            }
        },
    };

    let previous = match std::fs::read_to_string(previous_path) {
        Ok(text) => text,
        Err(e) => {
            println!("bench_gate: no previous snapshot at {previous_path} ({e}); nothing to gate");
            return ExitCode::SUCCESS;
        }
    };
    let current = match std::fs::read_to_string(current_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_gate: cannot read current snapshot {current_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut compared = 0;
    let mut regressions = Vec::new();
    for (section, keys) in SECTIONS {
        for &key in keys {
            let (Some(old), Some(new)) = (
                extract(&previous, section, key),
                extract(&current, section, key),
            ) else {
                // Schema drift (renamed section/key) must not silently pass
                // for every metric — it is reported below via `compared`.
                continue;
            };
            compared += 1;
            let ratio = old / new;
            let verdict = if ratio > max_ratio { "REGRESSED" } else { "ok" };
            println!(
                "bench_gate: {section}.{key}: {old:.1} -> {new:.1} \
                 (x{ratio:.2} slower) {verdict}"
            );
            if ratio > max_ratio {
                regressions.push(format!("{section}.{key} is {ratio:.2}x slower"));
            }
        }
    }
    for (section, keys) in LATENCY_SECTIONS {
        for &key in keys {
            let (Some(old), Some(new)) = (
                extract(&previous, section, key),
                extract(&current, section, key),
            ) else {
                continue;
            };
            compared += 1;
            let latency_max = max_ratio * 2.0;
            let ratio = (new + 1.0) / (old + 1.0);
            let verdict = if ratio > latency_max {
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "bench_gate: {section}.{key}: {old:.2} -> {new:.2} ms \
                 (x{ratio:.2} slower) {verdict}"
            );
            if ratio > latency_max {
                regressions.push(format!("{section}.{key} is {ratio:.2}x slower"));
            }
        }
    }
    if compared == 0 {
        eprintln!(
            "bench_gate: no comparable metrics between {previous_path} and {current_path} \
             (schema drift?)"
        );
        return ExitCode::FAILURE;
    }
    if regressions.is_empty() {
        println!("bench_gate: throughput within {max_ratio}x of the previous snapshot");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: throughput regressed more than {max_ratio}x: {}",
            regressions.join("; ")
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::extract;

    const SNAPSHOT: &str = r#"{
  "schema": 1,
  "explore_default_grid": {
    "cells": 1620,
    "threads_all": 4,
    "secs_threads1": 0.5,
    "secs_threads_all": 0.2,
    "cells_per_sec_threads1": 3240.0,
    "cells_per_sec_threads_all": 8100.0
  },
  "portfolio_default_grid": {
    "cells": 6480,
    "cells_per_sec_threads1": 1000.0,
    "cells_per_sec_threads_all": 3500.5
  },
  "fig10_grid_streaming": {
    "rows": 241,
    "secs": 0.000402,
    "rows_per_sec": 599502.5
  },
  "refine_large_grid": {
    "cells": 10000000,
    "stride": 32,
    "cells_per_sec_exhaustive": 55000.0,
    "cells_per_sec_refine": 1250000.0,
    "full_evaluations_exhaustive": 60000,
    "full_evaluations_refine": 5000,
    "evaluation_reduction_factor": 12.0
  }
}"#;

    #[test]
    fn extracts_numbers_per_section() {
        assert_eq!(
            extract(
                SNAPSHOT,
                "explore_default_grid",
                "cells_per_sec_threads_all"
            ),
            Some(8100.0)
        );
        assert_eq!(
            extract(
                SNAPSHOT,
                "portfolio_default_grid",
                "cells_per_sec_threads_all"
            ),
            Some(3500.5)
        );
        assert_eq!(
            extract(SNAPSHOT, "portfolio_default_grid", "cells_per_sec_threads1"),
            Some(1000.0)
        );
        assert_eq!(
            extract(SNAPSHOT, "fig10_grid_streaming", "rows_per_sec"),
            Some(599502.5)
        );
        assert_eq!(
            extract(SNAPSHOT, "refine_large_grid", "cells_per_sec_refine"),
            Some(1_250_000.0)
        );
        assert_eq!(
            extract(SNAPSHOT, "refine_large_grid", "evaluation_reduction_factor"),
            Some(12.0)
        );
        assert_eq!(extract(SNAPSHOT, "missing_section", "cells"), None);
        assert_eq!(extract(SNAPSHOT, "explore_default_grid", "missing"), None);
    }
}
