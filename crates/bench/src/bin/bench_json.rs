//! Emits a machine-readable performance snapshot of the exploration
//! engines as JSON on stdout — the `BENCH_explore.json` artifact CI
//! uploads on every push, seeding the repo's performance trajectory.
//!
//! The numbers are wall-clock medians of a few runs (no criterion
//! statistics; the artifact is for trend-watching across commits, not
//! micro-benchmarking): grid cells per second for the single-system and
//! portfolio grids at one thread and at full hardware parallelism, the
//! cached-vs-uncached full-evaluation counts behind the RE-core cache,
//! and the rows/sec throughput of streaming the Figure 10 grid through
//! the artifact CSV path (the serialization `actuary serve` rides).

use std::fmt;
use std::time::Instant;

use actuary_dse::explore::{explore, ExploreSpace};
use actuary_dse::portfolio::{explore_portfolio, PortfolioSpace, ReuseScheme};
use actuary_dse::refine::{explore_portfolio_refined_with, RefineOptions};
use actuary_model::AssemblyFlow;
use actuary_tech::IntegrationKind;
use bench::library;

/// Median wall-clock seconds of `runs` invocations of `f`.
fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One engine's JSON section.
fn grid_section(name: &str, cells: usize, secs_1: f64, secs_all: f64, threads: usize) -> String {
    format!(
        "  \"{name}\": {{\n    \"cells\": {cells},\n    \"threads_all\": {threads},\n    \
         \"secs_threads1\": {secs_1:.6},\n    \"secs_threads_all\": {secs_all:.6},\n    \
         \"cells_per_sec_threads1\": {:.1},\n    \"cells_per_sec_threads_all\": {:.1}\n  }}",
        cells as f64 / secs_1,
        cells as f64 / secs_all,
    )
}

fn main() {
    let lib = library();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    const RUNS: usize = 3;

    let explore_space = ExploreSpace::default();
    let explore_1 = median_secs(RUNS, || {
        explore(&lib, &explore_space, 1).expect("default grid");
    });
    let explore_all = median_secs(RUNS, || {
        explore(&lib, &explore_space, threads).expect("default grid");
    });

    let portfolio_space = PortfolioSpace::default();
    let portfolio_1 = median_secs(RUNS, || {
        explore_portfolio(&lib, &portfolio_space, 1).expect("default portfolio grid");
    });
    let portfolio_all = median_secs(RUNS, || {
        explore_portfolio(&lib, &portfolio_space, threads).expect("default portfolio grid");
    });

    // The uncached reference path evaluates every non-incompatible cell,
    // so its count needs no sweep (byte-identity of the two paths is
    // asserted by `tests/integration_portfolio.rs` in tier-1).
    let cached = explore_portfolio(&lib, &portfolio_space, threads).expect("cached");
    let uncached_evaluations = cached.len() - cached.incompatible_count();

    // Streaming throughput of the artifact CSV path on the Figure 10
    // workload (every paper (k,n) situation × collocation sizes × the
    // figure's three integration styles): rows/sec into a discarding
    // sink, so the number isolates serialization, not evaluation.
    let fig10_space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: vec![160.0, 320.0, 480.0, 640.0],
        quantities: vec![500_000],
        integrations: vec![
            IntegrationKind::Soc,
            IntegrationKind::Mcm,
            IntegrationKind::TwoPointFiveD,
        ],
        chiplet_counts: vec![1, 2, 3, 4],
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::Fsmc],
        fsmc_situations: PortfolioSpace::FSMC_PAPER_SITUATIONS.to_vec(),
        ..PortfolioSpace::default()
    };
    let fig10 = explore_portfolio(&lib, &fig10_space, threads).expect("fig10 grid");
    struct Discard(usize);
    impl fmt::Write for Discard {
        fn write_str(&mut self, s: &str) -> fmt::Result {
            self.0 += s.len();
            Ok(())
        }
    }
    let stream_rows = fig10.len() + 1; // data rows + header
    let stream_secs = median_secs(RUNS.max(5), || {
        let mut sink = Discard(0);
        fig10
            .grid_artifact()
            .write_csv_to(&mut sink)
            .expect("stream");
    });

    // The coarse-to-fine headline: a 10⁷-cell single-scheme grid (500
    // areas × 100 quantities × 4 integrations × 50 chiplet counts) that
    // both engines answer identically (pinned by tier-1), timed once per
    // engine — at this size a median of repeats would cost minutes for a
    // number CI only trend-watches. `core_evaluations` counts full
    // RE-core computations, the expensive half of a cell; refinement must
    // prune most of them to claim the 10⁸-cell spaces the served API
    // now admits in refine mode.
    let large_space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: (1..=500).map(|i| f64::from(i) * 4.0).collect(),
        quantities: (1..=100).map(|i| 5_000_000 + i as u64 * 100_000).collect(),
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: (1..=50).collect(),
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::None],
        ..PortfolioSpace::default()
    };
    let large_cells = large_space.len();
    let start = Instant::now();
    let large_exhaustive =
        explore_portfolio(&lib, &large_space, threads).expect("large exhaustive grid");
    let large_exhaustive_secs = start.elapsed().as_secs_f64();
    const LARGE_STRIDE: usize = 32;
    let start = Instant::now();
    let large_refined = explore_portfolio_refined_with(
        &lib,
        &large_space,
        threads,
        RefineOptions {
            area_stride: LARGE_STRIDE,
            quantity_stride: 0,
        },
    )
    .expect("large refined grid");
    let large_refined_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        large_refined.winners_artifact().csv(),
        large_exhaustive.winners_artifact().csv(),
        "the timed paths must agree before their timings mean anything"
    );

    // The 2-D refinement headline: a quantity-heavy grid spanning the
    // §4.2 crossover band (120 quantities — crossover flips live on this
    // axis), refined area-only (quantity axis dense, the PR-6 behaviour)
    // versus on both axes. All three paths must agree on the winner
    // tables and both Pareto fronts before the comparison means anything;
    // `evaluated_cells` counts the cells each engine actually priced.
    let quantity_space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: (1..=40).map(|i| f64::from(i) * 20.0).collect(),
        quantities: (1..=120).map(|i| i as u64 * 100_000).collect(),
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: (1..=48).collect(),
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::None],
        ..PortfolioSpace::default()
    };
    let quantity_cells = quantity_space.len();
    let start = Instant::now();
    let q_exhaustive =
        explore_portfolio(&lib, &quantity_space, threads).expect("quantity exhaustive grid");
    let q_exhaustive_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let q_area_only = explore_portfolio_refined_with(
        &lib,
        &quantity_space,
        threads,
        RefineOptions {
            area_stride: 8,
            quantity_stride: 1,
        },
    )
    .expect("area-only refined grid");
    let q_area_only_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let q_two_d = explore_portfolio_refined_with(
        &lib,
        &quantity_space,
        threads,
        RefineOptions {
            area_stride: 8,
            quantity_stride: 8,
        },
    )
    .expect("2-D refined grid");
    let q_two_d_secs = start.elapsed().as_secs_f64();
    for (label, refined) in [("area-only", &q_area_only), ("2-D", &q_two_d)] {
        assert_eq!(
            refined.winners_artifact().csv(),
            q_exhaustive.winners_artifact().csv(),
            "{label}: winner tables must match exhaustion"
        );
        assert_eq!(
            refined.pareto_artifact().csv(),
            q_exhaustive.pareto_artifact().csv(),
            "{label}: the per-unit Pareto front must match exhaustion"
        );
        assert_eq!(
            refined.pareto_program_artifact().csv(),
            q_exhaustive.pareto_program_artifact().csv(),
            "{label}: the program-total Pareto front must match exhaustion"
        );
    }
    let quantity_reduction =
        q_area_only.evaluated_cells() as f64 / q_two_d.evaluated_cells() as f64;
    assert!(
        quantity_reduction >= 3.0,
        "2-D refinement must price >=3x fewer cells than area-only \
         (area-only {} vs 2-D {})",
        q_area_only.evaluated_cells(),
        q_two_d.evaluated_cells(),
    );

    // Work-stealing scheduler: a chiplet-heavy grid whose per-cell cost
    // climbs steeply with chiplet count, so the chunked work list is
    // cost-skewed — the shape the stealing engine exists for. The
    // throughput key is gate-tracked; the steal counter (fed by every
    // chunked run in this process) varies run to run and is recorded for
    // visibility only.
    let steal_space = PortfolioSpace {
        nodes: vec!["7nm".to_string()],
        areas_mm2: (1..=30).map(|i| f64::from(i) * 25.0).collect(),
        quantities: vec![1_000_000],
        integrations: IntegrationKind::ALL.to_vec(),
        chiplet_counts: (1..=40).collect(),
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::None],
        ..PortfolioSpace::default()
    };
    let steal_cells = steal_space.len();
    let steal_secs = median_secs(RUNS, || {
        explore_portfolio(&lib, &steal_space, threads).expect("steal grid");
    });
    let steals_total = actuary_obs::Registry::global()
        .snapshot()
        .counter("actuary_engine_steals_total")
        .unwrap_or(0);

    println!("{{");
    println!("  \"schema\": 1,");
    println!(
        "{},",
        grid_section(
            "explore_default_grid",
            explore_space.len(),
            explore_1,
            explore_all,
            threads
        )
    );
    println!(
        "{},",
        grid_section(
            "portfolio_default_grid",
            portfolio_space.len(),
            portfolio_1,
            portfolio_all,
            threads
        )
    );
    println!(
        "  \"fig10_grid_streaming\": {{\n    \"rows\": {stream_rows},\n    \
         \"secs\": {stream_secs:.6},\n    \"rows_per_sec\": {:.1}\n  }},",
        stream_rows as f64 / stream_secs,
    );
    println!(
        "  \"core_cache\": {{\n    \"cached_evaluations\": {},\n    \
         \"uncached_evaluations\": {},\n    \"reduction_factor\": {:.2}\n  }},",
        cached.core_evaluations(),
        uncached_evaluations,
        uncached_evaluations as f64 / cached.core_evaluations() as f64,
    );
    println!(
        "  \"refine_large_grid\": {{\n    \"cells\": {large_cells},\n    \
         \"stride\": {LARGE_STRIDE},\n    \"threads\": {threads},\n    \
         \"exhaustive_secs\": {large_exhaustive_secs:.3},\n    \
         \"refine_secs\": {large_refined_secs:.3},\n    \
         \"cells_per_sec_exhaustive\": {:.1},\n    \
         \"cells_per_sec_refine\": {:.1},\n    \
         \"full_evaluations_exhaustive\": {},\n    \
         \"full_evaluations_refine\": {},\n    \
         \"evaluation_reduction_factor\": {:.2},\n    \
         \"pruned_cells\": {}\n  }},",
        large_cells as f64 / large_exhaustive_secs,
        large_cells as f64 / large_refined_secs,
        large_exhaustive.core_evaluations(),
        large_refined.core_evaluations(),
        large_exhaustive.core_evaluations() as f64 / large_refined.core_evaluations() as f64,
        large_refined.pruned_count(),
    );
    println!(
        "  \"refine_quantity_grid\": {{\n    \"cells\": {quantity_cells},\n    \
         \"quantities\": {},\n    \"threads\": {threads},\n    \
         \"exhaustive_secs\": {q_exhaustive_secs:.3},\n    \
         \"area_only_secs\": {q_area_only_secs:.3},\n    \
         \"two_d_secs\": {q_two_d_secs:.3},\n    \
         \"cells_per_sec_exhaustive\": {:.1},\n    \
         \"cells_per_sec_area_only\": {:.1},\n    \
         \"cells_per_sec_two_d\": {:.1},\n    \
         \"evaluated_cells_area_only\": {},\n    \
         \"evaluated_cells_two_d\": {},\n    \
         \"evaluation_reduction_factor\": {quantity_reduction:.2},\n    \
         \"pruned_cells_two_d\": {}\n  }},",
        quantity_space.quantities.len(),
        quantity_cells as f64 / q_exhaustive_secs,
        quantity_cells as f64 / q_area_only_secs,
        quantity_cells as f64 / q_two_d_secs,
        q_area_only.evaluated_cells(),
        q_two_d.evaluated_cells(),
        q_two_d.pruned_count(),
    );
    println!(
        "  \"engine_steal\": {{\n    \"cells\": {steal_cells},\n    \
         \"threads\": {threads},\n    \"secs\": {steal_secs:.6},\n    \
         \"cells_per_sec\": {:.1},\n    \"steals_total\": {steals_total}\n  }}",
        steal_cells as f64 / steal_secs,
    );
    println!("}}");
}
