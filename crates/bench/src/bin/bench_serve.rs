//! Load generator for `actuary serve` — emits the `BENCH_serve.json`
//! snapshot CI uploads and gates (see `bench_gate.rs`).
//!
//! Three phases against a real server child over real TCP, all on
//! keep-alive connections:
//!
//! * **cold** — distinct explore scenarios (unique area axes, so neither
//!   the result cache nor the core cache can help), sequential;
//! * **hot** — one scenario repeated, so every request after the warmup
//!   is a content-addressed result-cache hit; each hot body is asserted
//!   byte-identical to the cold (warmup) answer;
//! * **mixed** — N concurrent clients, each posting 80% hot / 20% fresh
//!   cold scenarios, the production-shaped workload; the phase's cache
//!   hit rate comes from the `GET /statz` counter delta, and its
//!   server-side latency quantiles from the `GET /metricsz` request
//!   histogram delta (so the snapshot cross-checks the server's own
//!   instruments against the client stopwatch).
//!
//! The snapshot records requests/sec and p99 latency per phase. The run
//! itself enforces the serving contract: it exits nonzero when the hot
//! phase is not at least 5× the cold phase's requests/sec, when a hot
//! body deviates from the cold bytes, or when the server-side histogram
//! disagrees wildly with the client-side measurement.
//!
//! The bench crate sits in the same workspace layer as the CLI, so it
//! spawns the built binary instead of linking it: `$ACTUARY_BIN` when
//! set, otherwise `target/release/actuary` (falling back to the debug
//! build).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

const COLD_REQUESTS: usize = 12;
const HOT_REQUESTS: usize = 60;
const MIXED_CLIENTS: usize = 4;
const MIXED_REQUESTS_PER_CLIENT: usize = 25;

fn binary() -> PathBuf {
    if let Ok(path) = std::env::var("ACTUARY_BIN") {
        return PathBuf::from(path);
    }
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let release = root.join("target/release/actuary");
    if release.exists() {
        return release;
    }
    root.join("target/debug/actuary")
}

/// A running `actuary serve` child on an ephemeral port, killed on drop.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start() -> Server {
        let binary = binary();
        assert!(
            binary.exists(),
            "no actuary binary at {binary:?}; build it (cargo build --release -p actuary-cli) \
             or point $ACTUARY_BIN at one"
        );
        let mut child = Command::new(&binary)
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "4"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap_or_else(|e| panic!("cannot spawn {binary:?}: {e}"));
        let stdout = child.stdout.as_mut().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("the server must print its address");
        let addr = line
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in {line:?}"))
            .to_string();
        Server { child, addr }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One keep-alive connection to the server.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    addr: String,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to the server");
        // Without this the client's own Nagle stalls add ~40 ms per
        // request, drowning the server-side numbers being measured.
        stream.set_nodelay(true).expect("TCP_NODELAY");
        let reader = BufReader::new(stream.try_clone().expect("clone the socket"));
        Client {
            stream,
            reader,
            addr: addr.to_string(),
        }
    }

    /// POSTs a scenario on the persistent connection; returns (status
    /// line, decoded body bytes).
    fn post_run(&mut self, body: &str) -> (String, Vec<u8>) {
        let request = format!(
            "POST /run HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        );
        self.stream
            .write_all(request.as_bytes())
            .expect("write request");
        self.read_response()
    }

    fn get(&mut self, path: &str) -> (String, Vec<u8>) {
        let request = format!("GET {path} HTTP/1.1\r\nHost: {}\r\n\r\n", self.addr);
        self.stream
            .write_all(request.as_bytes())
            .expect("write request");
        self.read_response()
    }

    /// Reads one response: the head, then a chunked or fixed-length body.
    fn read_response(&mut self) -> (String, Vec<u8>) {
        let mut head = Vec::new();
        while !head.ends_with(b"\r\n\r\n") {
            let mut byte = [0u8; 1];
            self.reader.read_exact(&mut byte).expect("response head");
            head.push(byte[0]);
        }
        let text = String::from_utf8_lossy(&head[..head.len() - 4]).into_owned();
        let mut parts = text.splitn(2, "\r\n");
        let status = parts.next().unwrap_or("").to_string();
        let headers = parts.next().unwrap_or("").to_string();
        let mut body = Vec::new();
        if headers.contains("Transfer-Encoding: chunked") {
            loop {
                let mut line = String::new();
                self.reader.read_line(&mut line).expect("chunk size line");
                let size = usize::from_str_radix(line.trim(), 16)
                    .unwrap_or_else(|_| panic!("bad chunk size {line:?}"));
                let mut chunk = vec![0u8; size + 2];
                self.reader.read_exact(&mut chunk).expect("chunk payload");
                if size == 0 {
                    break;
                }
                body.extend_from_slice(&chunk[..size]);
            }
        } else if let Some(length) = headers
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
        {
            let length: usize = length.trim().parse().expect("Content-Length value");
            body = vec![0u8; length];
            self.reader.read_exact(&mut body).expect("body");
        }
        (status, body)
    }
}

/// A scenario whose explore grid does real engine work and whose area
/// axis is unique per `seed` — distinct canonical digest *and* distinct
/// core-cache keys, so a fresh seed defeats both cache layers. The grid
/// is core-heavy but row-light (one quantity), so a cold request is
/// dominated by engine work, not by serializing the answer — the shape a
/// result-cache hit can actually skip.
fn scenario(seed: usize) -> String {
    let areas: Vec<String> = (1..=50)
        .map(|i| format!("{}.0", 100 + seed * 50 + i))
        .collect();
    format!(
        concat!(
            "name = \"load-{seed}\"\n",
            "[explore]\n",
            "nodes = [\"7nm\", \"5nm\"]\n",
            "areas_mm2 = [{areas}]\n",
            "quantities = [1000000]\n",
            "integrations = [\"soc\", \"mcm\", \"2.5d\"]\n",
            "chiplets = [1, 2, 3, 4, 5, 6, 7, 8]\n",
        ),
        seed = seed,
        areas = areas.join(", "),
    )
}

/// The repeated (hot) scenario; its seed never collides with a cold one.
fn hot_scenario() -> String {
    scenario(1_000_000)
}

/// p99 latency in milliseconds (max of the sample for small batches).
fn p99_ms(latencies: &mut [f64]) -> f64 {
    latencies.sort_by(|a, b| a.total_cmp(b));
    let idx = ((latencies.len() as f64) * 0.99).ceil() as usize;
    latencies[idx.clamp(1, latencies.len()) - 1] * 1000.0
}

/// Extracts `"key": <integer>` from the flat object after `"section"` —
/// the statz JSON is machine-written and flat per cache layer.
fn statz_counter(json: &str, section: &str, key: &str) -> u64 {
    let start = json
        .find(&format!("\"{section}\""))
        .unwrap_or_else(|| panic!("no {section} in {json}"));
    let object = &json[start..];
    let key_start = object
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("no {key} in {object}"));
    let rest = &object[key_start..];
    let colon = rest.find(':').expect("colon") + 1;
    let digits: String = rest[colon..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().expect("counter value")
}

/// Cumulative `upper_bound → count` buckets for the server-side
/// `actuary_http_request_seconds` histogram restricted to
/// `route="/run"`, summed across the method/status label axes, parsed
/// out of a `/metricsz` Prometheus exposition body.
fn run_latency_buckets(exposition: &str) -> Vec<(f64, u64)> {
    let mut by_le: BTreeMap<String, u64> = BTreeMap::new();
    for line in exposition.lines() {
        if !line.starts_with("actuary_http_request_seconds_bucket{")
            || !line.contains("route=\"/run\"")
        {
            continue;
        }
        let le_start = line.find("le=\"").expect("bucket line carries le") + 4;
        let le_end = le_start + line[le_start..].find('"').expect("closing quote");
        let count: u64 = line
            .rsplit(' ')
            .next()
            .expect("sample value")
            .trim()
            .parse()
            .expect("bucket count");
        *by_le.entry(line[le_start..le_end].to_string()).or_insert(0) += count;
    }
    let mut buckets: Vec<(f64, u64)> = by_le
        .into_iter()
        .map(|(le, count)| {
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("le bound")
            };
            (bound, count)
        })
        .collect();
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    buckets
}

/// Subtracts a `before` snapshot from an `after` snapshot of the same
/// histogram (both cumulative, same bounds), yielding the cumulative
/// buckets of just the requests in between.
fn bucket_delta(after: &[(f64, u64)], before: &[(f64, u64)]) -> Vec<(f64, u64)> {
    assert_eq!(
        after.len(),
        before.len(),
        "histogram bounds changed between scrapes"
    );
    after
        .iter()
        .zip(before)
        .map(|(&(bound, a), &(bound_b, b))| {
            assert_eq!(bound.to_bits(), bound_b.to_bits(), "bucket bounds disagree");
            (bound, a - b)
        })
        .collect()
}

/// Quantile in milliseconds from cumulative histogram buckets, linearly
/// interpolated inside the winning bucket (the standard Prometheus
/// `histogram_quantile` estimate); the +Inf bucket clamps to the
/// largest finite bound.
fn histogram_quantile_ms(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total = buckets.last().map_or(0, |last| last.1);
    if total == 0 {
        return 0.0;
    }
    let rank = q * total as f64;
    let mut prev_bound = 0.0;
    let mut prev_cum = 0u64;
    for &(bound, cum) in buckets {
        if cum as f64 >= rank {
            if bound.is_infinite() {
                return prev_bound * 1000.0;
            }
            let inside = (rank - prev_cum as f64) / (cum - prev_cum).max(1) as f64;
            return (prev_bound + (bound - prev_bound) * inside) * 1000.0;
        }
        prev_bound = bound;
        prev_cum = cum;
    }
    prev_bound * 1000.0
}

fn main() {
    let server = Server::start();
    let mut client = Client::connect(&server.addr);

    // --- cold: every request defeats both caches -------------------------
    let mut cold_latencies = Vec::with_capacity(COLD_REQUESTS);
    let cold_start = Instant::now();
    for seed in 0..COLD_REQUESTS {
        let begin = Instant::now();
        let (status, body) = client.post_run(&scenario(seed));
        cold_latencies.push(begin.elapsed().as_secs_f64());
        assert_eq!(status, "HTTP/1.1 200 OK", "cold request {seed}");
        assert!(!body.is_empty(), "cold request {seed} returned no bytes");
    }
    let cold_secs = cold_start.elapsed().as_secs_f64();

    // --- hot: one warmup miss, then pure result-cache hits ---------------
    let hot = hot_scenario();
    let (status, reference) = client.post_run(&hot);
    assert_eq!(status, "HTTP/1.1 200 OK", "hot warmup");
    let mut hot_latencies = Vec::with_capacity(HOT_REQUESTS);
    let hot_start = Instant::now();
    for i in 0..HOT_REQUESTS {
        let begin = Instant::now();
        let (status, body) = client.post_run(&hot);
        hot_latencies.push(begin.elapsed().as_secs_f64());
        assert_eq!(status, "HTTP/1.1 200 OK", "hot request {i}");
        assert_eq!(
            body, reference,
            "hot request {i}: a cache hit must replay the cold bytes exactly"
        );
    }
    let hot_secs = hot_start.elapsed().as_secs_f64();

    // --- mixed: concurrent clients, 80% hot / 20% fresh cold -------------
    let (_, statz) = client.get("/statz");
    let before = String::from_utf8_lossy(&statz).into_owned();
    let (_, exposition) = client.get("/metricsz");
    let server_before = run_latency_buckets(&String::from_utf8_lossy(&exposition));
    let mut mixed_latencies: Vec<f64> = Vec::new();
    let mixed_start = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..MIXED_CLIENTS)
            .map(|t| {
                let (addr, hot, reference) = (&server.addr, &hot, &reference);
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut latencies = Vec::with_capacity(MIXED_REQUESTS_PER_CLIENT);
                    for k in 0..MIXED_REQUESTS_PER_CLIENT {
                        // Every 5th request is a never-seen scenario.
                        let cold = k % 5 == 4;
                        let body = if cold {
                            scenario(10_000 + t * 1_000 + k)
                        } else {
                            hot.clone()
                        };
                        let begin = Instant::now();
                        let (status, answer) = client.post_run(&body);
                        latencies.push(begin.elapsed().as_secs_f64());
                        assert_eq!(status, "HTTP/1.1 200 OK", "mixed client {t} request {k}");
                        if !cold {
                            assert_eq!(
                                &answer, reference,
                                "mixed client {t} request {k}: hot bytes deviated"
                            );
                        }
                    }
                    latencies
                })
            })
            .collect();
        for handle in handles {
            mixed_latencies.extend(handle.join().expect("mixed client thread"));
        }
    });
    let mixed_secs = mixed_start.elapsed().as_secs_f64();
    let (_, statz) = client.get("/statz");
    let after = String::from_utf8_lossy(&statz).into_owned();
    let (_, exposition) = client.get("/metricsz");
    let server_after = run_latency_buckets(&String::from_utf8_lossy(&exposition));
    let phase = |key| {
        statz_counter(&after, "result_cache", key) - statz_counter(&before, "result_cache", key)
    };
    let (mixed_hits, mixed_misses) = (phase("hits"), phase("misses"));
    let hit_rate = mixed_hits as f64 / (mixed_hits + mixed_misses).max(1) as f64;

    let cold_rps = COLD_REQUESTS as f64 / cold_secs;
    let hot_rps = HOT_REQUESTS as f64 / hot_secs;
    let mixed_requests = MIXED_CLIENTS * MIXED_REQUESTS_PER_CLIENT;
    let speedup = hot_rps / cold_rps;
    let mixed_p99 = p99_ms(&mut mixed_latencies);

    // Server-side view of the same mixed phase, from the request-latency
    // histogram delta. The count must match exactly (nothing else POSTs
    // /run between the scrapes), and the estimated p99 must land in the
    // same ballpark as the client stopwatch — bucket interpolation and
    // client-side network overhead both smear, so the tolerance is loose.
    let server_buckets = bucket_delta(&server_after, &server_before);
    let server_total = server_buckets.last().map_or(0, |last| last.1);
    assert_eq!(
        server_total, mixed_requests as u64,
        "the server-side /run histogram must count exactly the mixed-phase requests"
    );
    let server_p50 = histogram_quantile_ms(&server_buckets, 0.50);
    let server_p99 = histogram_quantile_ms(&server_buckets, 0.99);
    assert!(
        server_p99 > 0.0,
        "server-side p99 must be positive once requests were served"
    );
    assert!(
        server_p99 <= mixed_p99 * 4.0 + 250.0,
        "server-side p99 ({server_p99:.2} ms) wildly exceeds the client-side \
         measurement ({mixed_p99:.2} ms) — the histogram or the scrape is wrong"
    );

    println!("{{");
    println!("  \"schema\": 1,");
    println!(
        "  \"serve_cold\": {{\n    \"requests\": {COLD_REQUESTS},\n    \
         \"secs\": {cold_secs:.4},\n    \"requests_per_sec\": {cold_rps:.1},\n    \
         \"p99_ms\": {:.2}\n  }},",
        p99_ms(&mut cold_latencies),
    );
    println!(
        "  \"serve_hot\": {{\n    \"requests\": {HOT_REQUESTS},\n    \
         \"secs\": {hot_secs:.4},\n    \"requests_per_sec\": {hot_rps:.1},\n    \
         \"p99_ms\": {:.2},\n    \"hot_over_cold_speedup\": {speedup:.1}\n  }},",
        p99_ms(&mut hot_latencies),
    );
    println!(
        "  \"serve_mixed\": {{\n    \"requests\": {mixed_requests},\n    \
         \"clients\": {MIXED_CLIENTS},\n    \"secs\": {mixed_secs:.4},\n    \
         \"requests_per_sec\": {:.1},\n    \"p99_ms\": {mixed_p99:.2},\n    \
         \"server_p50_ms\": {server_p50:.2},\n    \
         \"server_p99_ms\": {server_p99:.2},\n    \
         \"cache_hit_rate\": {hit_rate:.3}\n  }}",
        mixed_requests as f64 / mixed_secs,
    );
    println!("}}");

    assert!(
        speedup >= 5.0,
        "the content-addressed cache must make hot requests at least 5x the cold \
         requests/sec, measured {speedup:.1}x ({hot_rps:.1} vs {cold_rps:.1})"
    );
}
