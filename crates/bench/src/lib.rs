//! Shared scaffolding for the figure-reproduction benchmarks.
//!
//! Every bench target regenerates one figure of the paper: it first prints
//! the reproduced data series (the "rows the paper reports") together with
//! the shape-claim verdicts, then times the computation under Criterion.

#![forbid(unsafe_code)]

use actuary_figures::ShapeCheck;
use actuary_tech::TechLibrary;

/// Builds the default library, panicking with a clear message on failure
/// (benches have no error channel).
pub fn library() -> TechLibrary {
    TechLibrary::paper_defaults().expect("paper defaults must construct")
}

/// Prints a figure's reproduced output and its shape-claim verdicts once,
/// before the timing loop starts.
pub fn announce(figure: &str, rendered: &str, checks: &[ShapeCheck]) {
    println!("==================================================================");
    println!("reproduction of paper {figure}");
    println!("==================================================================");
    println!("{rendered}");
    println!("shape claims vs the paper:");
    for check in checks {
        println!("  {check}");
    }
    let passed = checks.iter().filter(|c| c.pass).count();
    println!("{passed}/{} claims hold\n", checks.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_builds() {
        assert_eq!(library().node_count(), 7);
    }

    #[test]
    fn announce_does_not_panic() {
        announce(
            "Figure 0",
            "rendered",
            &[ShapeCheck::new("claim", "expected", "measured", true)],
        );
    }
}
