//! Regenerates the paper's Figure 2 and benchmarks the computation.

use bench::{announce, library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let lib = library();
    let fig = actuary_figures::fig2::compute(&lib).expect("figure 2 must compute");
    announce("Figure 2", &fig.render(), &fig.checks());
    c.bench_function("fig2_compute", |b| {
        b.iter(|| actuary_figures::fig2::compute(black_box(&lib)).unwrap())
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
