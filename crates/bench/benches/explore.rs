//! Benchmarks the multi-axis exploration engine: the default 1,620-cell
//! grid evaluated single-threaded vs on every available hardware thread.
//!
//! On a multi-core machine the `threads=N` row should run close to N×
//! faster than `threads=1` (the per-cell work is independent and the
//! engine's only shared state is one atomic work index); on a single-core
//! container the two rows time alike, which is itself the correctness
//! signal that the threading adds no overhead.

use actuary_dse::explore::{explore, ExploreSpace};
use bench::library;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_explore(c: &mut Criterion) {
    let lib = library();
    let space = ExploreSpace::default();
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Even a single-core container times a genuinely multi-threaded row,
    // so the scheduling overhead (which should be negligible) is visible.
    let workers = hardware.max(2);

    let probe = explore(&lib, &space, workers).expect("the default grid must evaluate");
    println!(
        "==================================================================\n\
         multi-axis exploration: {} grid cells, {} hardware thread(s)\n\
         ==================================================================\n\
         {probe}\n",
        space.len(),
        hardware
    );

    let mut group = c.benchmark_group("explore_default_grid");
    group.sample_size(10);
    group.bench_function("threads=1", |b| {
        b.iter(|| explore(black_box(&lib), black_box(&space), 1).unwrap())
    });
    group.bench_function(&format!("threads={workers}"), |b| {
        b.iter(|| explore(black_box(&lib), black_box(&space), workers).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
