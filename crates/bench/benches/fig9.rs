//! Regenerates the paper's Figure 9 and benchmarks the computation.

use bench::{announce, library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let lib = library();
    let fig = actuary_figures::fig9::compute(&lib).expect("figure 9 must compute");
    announce("Figure 9", &fig.render(), &fig.checks());
    c.bench_function("fig9_compute", |b| {
        b.iter(|| actuary_figures::fig9::compute(black_box(&lib)).unwrap())
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
