//! Regenerates the paper's Figure 6 and benchmarks the computation.

use bench::{announce, library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let lib = library();
    let fig = actuary_figures::fig6::compute(&lib).expect("figure 6 must compute");
    announce("Figure 6", &fig.render(), &fig.checks());
    c.bench_function("fig6_compute", |b| {
        b.iter(|| actuary_figures::fig6::compute(black_box(&lib)).unwrap())
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
