//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * chip-first vs chip-last assembly (Eq. 5);
//! * the yield-model choice (negative binomial vs Poisson vs Murphy);
//! * chiplet granularity (1–8 chiplets);
//! * the Monte-Carlo simulator vs the closed-form engine.

use bench::library;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use actuary_arch::{Chip, Module, System};
use actuary_mc::{simulate_system, DefectProcess, McConfig};
use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
use actuary_tech::IntegrationKind;
use actuary_units::{Area, Quantity};
use actuary_yield::{DefectDensity, Murphy, NegativeBinomial, Poisson, YieldModel};

fn bench_assembly_flows(c: &mut Criterion) {
    let lib = library();
    let n5 = lib.node("5nm").unwrap();
    let p25 = lib.packaging(IntegrationKind::TwoPointFiveD).unwrap();
    let die = Area::from_mm2(222.2).unwrap();

    // Print the ablation series: cost of each flow for 2-5 chiplets.
    println!("=== ablation: chip-first vs chip-last (5nm, 2.5D, Eq. 5) ===");
    for n in 2u32..=5 {
        let dies = [DiePlacement::new(n5, die, n)];
        let last = re_cost(&dies, p25, AssemblyFlow::ChipLast).unwrap();
        let first = re_cost(&dies, p25, AssemblyFlow::ChipFirst).unwrap();
        println!(
            "  {n} chiplets: chip-last {} vs chip-first {} (+{:.1}%)",
            last.total(),
            first.total(),
            (first.total().usd() / last.total().usd() - 1.0) * 100.0
        );
    }

    let mut group = c.benchmark_group("assembly_flow");
    group.bench_function("chip_last", |b| {
        b.iter(|| {
            re_cost(
                black_box(&[DiePlacement::new(n5, die, 4)]),
                p25,
                AssemblyFlow::ChipLast,
            )
            .unwrap()
        })
    });
    group.bench_function("chip_first", |b| {
        b.iter(|| {
            re_cost(
                black_box(&[DiePlacement::new(n5, die, 4)]),
                p25,
                AssemblyFlow::ChipFirst,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_yield_models(c: &mut Criterion) {
    let d = DefectDensity::per_cm2(0.11).unwrap();
    let area = Area::from_mm2(800.0).unwrap();
    let nb = NegativeBinomial::new(10.0).unwrap();
    let poisson = Poisson::new();
    let murphy = Murphy::new();

    println!("=== ablation: yield model choice (D=0.11, 800 mm²) ===");
    println!("  negative binomial: {}", nb.die_yield(d, area));
    println!("  poisson:           {}", poisson.die_yield(d, area));
    println!("  murphy:            {}", murphy.die_yield(d, area));

    let mut group = c.benchmark_group("yield_model");
    group.bench_function("negative_binomial", |b| {
        b.iter(|| nb.die_yield(black_box(d), black_box(area)))
    });
    group.bench_function("poisson", |b| {
        b.iter(|| poisson.die_yield(black_box(d), black_box(area)))
    });
    group.bench_function("murphy", |b| {
        b.iter(|| murphy.die_yield(black_box(d), black_box(area)))
    });
    group.finish();
}

fn bench_granularity(c: &mut Criterion) {
    let lib = library();
    let n5 = lib.node("5nm").unwrap();
    let mcm = lib.packaging(IntegrationKind::Mcm).unwrap();
    let soc = lib.packaging(IntegrationKind::Soc).unwrap();
    let total = Area::from_mm2(800.0).unwrap();

    println!("=== ablation: chiplet granularity (5nm, 800 mm², MCM) ===");
    for n in 1u32..=8 {
        let breakdown = if n == 1 {
            re_cost(
                &[DiePlacement::new(n5, total, 1)],
                soc,
                AssemblyFlow::ChipLast,
            )
            .unwrap()
        } else {
            let die = n5.d2d().inflate_module_area(total / n as f64).unwrap();
            re_cost(
                &[DiePlacement::new(n5, die, n)],
                mcm,
                AssemblyFlow::ChipLast,
            )
            .unwrap()
        };
        println!(
            "  {n} chiplet(s): RE {} (defects {}, packaging {})",
            breakdown.total(),
            breakdown.chip_defects,
            breakdown.packaging_total()
        );
    }

    c.bench_function("granularity_sweep_1_to_8", |b| {
        b.iter(|| {
            for n in 1u32..=8 {
                let breakdown = if n == 1 {
                    re_cost(
                        black_box(&[DiePlacement::new(n5, total, 1)]),
                        soc,
                        AssemblyFlow::ChipLast,
                    )
                    .unwrap()
                } else {
                    let die = n5.d2d().inflate_module_area(total / n as f64).unwrap();
                    re_cost(
                        black_box(&[DiePlacement::new(n5, die, n)]),
                        mcm,
                        AssemblyFlow::ChipLast,
                    )
                    .unwrap()
                };
                black_box(breakdown);
            }
        })
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let lib = library();
    let chiplet = Chip::chiplet(
        "bench-c",
        "7nm",
        vec![Module::new(
            "bench-m",
            "7nm",
            Area::from_mm2(180.0).unwrap(),
        )],
    );
    let system = System::builder("bench-sys", IntegrationKind::Mcm)
        .chip(chiplet, 2)
        .quantity(Quantity::new(500_000))
        .build()
        .unwrap();

    let analytic = system
        .re_cost(&lib, AssemblyFlow::ChipLast, None)
        .unwrap()
        .total();
    let cfg = McConfig {
        systems: 500,
        seed: 7,
        defect_process: DefectProcess::Bernoulli,
    };
    let mc = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).unwrap();
    println!("=== ablation: analytic vs Monte-Carlo (7nm 2×200mm² MCM) ===");
    println!("  analytic {analytic} | monte-carlo {mc}");

    let mut group = c.benchmark_group("engine");
    group.bench_function("analytic_re_cost", |b| {
        b.iter(|| {
            system
                .re_cost(black_box(&lib), AssemblyFlow::ChipLast, None)
                .unwrap()
        })
    });
    group.sample_size(10);
    group.bench_function("monte_carlo_500_systems", |b| {
        b.iter(|| simulate_system(black_box(&system), &lib, AssemblyFlow::ChipLast, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_assembly_flows,
    bench_yield_models,
    bench_granularity,
    bench_monte_carlo
);
criterion_main!(benches);
