//! Regenerates the paper's Figure 5 and benchmarks the computation.

use bench::{announce, library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let lib = library();
    let fig = actuary_figures::fig5::compute(&lib).expect("figure 5 must compute");
    announce("Figure 5", &fig.render(), &fig.checks());
    c.bench_function("fig5_compute", |b| {
        b.iter(|| actuary_figures::fig5::compute(black_box(&lib)).unwrap())
    });
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
