//! Regenerates the paper's Figure 4 and benchmarks the computation.

use bench::{announce, library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let lib = library();
    let fig = actuary_figures::fig4::compute(&lib).expect("figure 4 must compute");
    announce("Figure 4", &fig.render(), &fig.checks());
    c.bench_function("fig4_compute", |b| {
        b.iter(|| actuary_figures::fig4::compute(black_box(&lib)).unwrap())
    });
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
