//! Regenerates the paper's Figure 10 and benchmarks the computation.

use bench::{announce, library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    let lib = library();
    let fig = actuary_figures::fig10::compute(&lib).expect("figure 10 must compute");
    announce("Figure 10", &fig.render(), &fig.checks());
    c.bench_function("fig10_compute", |b| {
        b.iter(|| actuary_figures::fig10::compute(black_box(&lib)).unwrap())
    });
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
