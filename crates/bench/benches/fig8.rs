//! Regenerates the paper's Figure 8 and benchmarks the computation.

use bench::{announce, library};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let lib = library();
    let fig = actuary_figures::fig8::compute(&lib).expect("figure 8 must compute");
    announce("Figure 8", &fig.render(), &fig.checks());
    c.bench_function("fig8_compute", |b| {
        b.iter(|| actuary_figures::fig8::compute(black_box(&lib)).unwrap())
    });
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
