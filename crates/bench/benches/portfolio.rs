//! Benchmarks the portfolio exploration engine: the default 6,480-cell
//! reuse-scheme grid evaluated single-threaded vs on every available
//! hardware thread.
//!
//! The cached rows measure the shipping configuration (one RE/NRE core per
//! distinct geometry, re-amortized per quantity); the uncached row times
//! the evaluate-every-cell reference path, so the cached-vs-uncached gap
//! is the live measurement of the ~3× claim in the ROADMAP. (Byte-identity
//! of the two paths is asserted in `tests/integration_portfolio.rs`, which
//! tier-1 runs — the bench only times them.)

use actuary_dse::portfolio::{
    explore_portfolio, explore_portfolio_with, CorePolicy, PortfolioSpace,
};
use bench::library;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_portfolio(c: &mut Criterion) {
    let lib = library();
    let space = PortfolioSpace::default();
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let workers = hardware.max(2);

    let probe = explore_portfolio(&lib, &space, workers).expect("the default grid must evaluate");
    // The uncached path evaluates every non-incompatible cell, so its
    // evaluation count is known without running the sweep.
    let uncached_evaluations = probe.len() - probe.incompatible_count();
    println!(
        "==================================================================\n\
         portfolio exploration: {} grid cells, {} hardware thread(s)\n\
         ==================================================================\n\
         {probe}\n\
         core caching: {} vs {} uncached full evaluations ({:.1}x fewer)\n",
        space.len(),
        hardware,
        probe.core_evaluations(),
        uncached_evaluations,
        uncached_evaluations as f64 / probe.core_evaluations() as f64,
    );

    let mut group = c.benchmark_group("portfolio_default_grid");
    group.sample_size(10);
    group.bench_function("threads=1", |b| {
        b.iter(|| explore_portfolio(black_box(&lib), black_box(&space), 1).unwrap())
    });
    group.bench_function(&format!("threads={workers}"), |b| {
        b.iter(|| explore_portfolio(black_box(&lib), black_box(&space), workers).unwrap())
    });
    group.bench_function("threads=1,uncached", |b| {
        b.iter(|| {
            explore_portfolio_with(black_box(&lib), black_box(&space), 1, CorePolicy::Uncached)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
