use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::error::UnitError;

/// Silicon area in square millimetres.
///
/// All areas in the cost model — module areas, die areas, interposer areas,
/// package body areas — are carried by this type. Internally the value is a
/// finite, non-negative `f64` in mm²; the constructors enforce the invariant.
///
/// The defect-density figures of the yield model are quoted per cm² in the
/// literature, so [`Area::cm2`] is provided for that conversion.
///
/// # Examples
///
/// ```
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), actuary_units::UnitError> {
/// let die = Area::from_mm2(800.0)?;
/// assert_eq!(die.cm2(), 8.0);
/// let half = die / 2.0;
/// assert_eq!(half.mm2(), 400.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Area(f64);

impl Area {
    /// The zero area.
    pub const ZERO: Area = Area(0.0);

    /// Creates an area from a value in mm².
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidArea`] if `mm2` is negative, NaN or
    /// infinite.
    pub fn from_mm2(mm2: f64) -> Result<Self, UnitError> {
        if mm2.is_finite() && mm2 >= 0.0 {
            Ok(Area(mm2))
        } else {
            Err(UnitError::InvalidArea { value: mm2 })
        }
    }

    /// Creates an area from a value in cm².
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidArea`] if the value is negative, NaN or
    /// infinite.
    pub fn from_cm2(cm2: f64) -> Result<Self, UnitError> {
        Self::from_mm2(cm2 * 100.0)
    }

    /// Creates an area from a rectangle given as width × height in mm.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidArea`] if either side is negative or the
    /// product is not finite.
    pub fn from_rect_mm(width_mm: f64, height_mm: f64) -> Result<Self, UnitError> {
        if width_mm < 0.0 || height_mm < 0.0 {
            return Err(UnitError::InvalidArea {
                value: width_mm * height_mm,
            });
        }
        Self::from_mm2(width_mm * height_mm)
    }

    /// The area in mm².
    #[inline]
    pub fn mm2(self) -> f64 {
        self.0
    }

    /// The area in cm² (the unit used for defect densities).
    #[inline]
    pub fn cm2(self) -> f64 {
        self.0 / 100.0
    }

    /// Side length in mm of a square with this area.
    #[inline]
    pub fn square_side_mm(self) -> f64 {
        self.0.sqrt()
    }

    /// Returns `true` if the area is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the smaller of two areas.
    #[inline]
    pub fn min(self, other: Area) -> Area {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two areas.
    #[inline]
    pub fn max(self, other: Area) -> Area {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales the area by a dimensionless non-negative factor.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidArea`] if `factor` is negative or the
    /// product overflows to a non-finite value.
    pub fn scaled(self, factor: f64) -> Result<Self, UnitError> {
        Self::from_mm2(self.0 * factor)
    }

    /// Subtracts `other`, saturating at zero instead of going negative.
    #[inline]
    pub fn saturating_sub(self, other: Area) -> Area {
        Area((self.0 - other.0).max(0.0))
    }

    /// Dimensionless ratio `self / other`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::DivisionByZero`] if `other` is zero.
    pub fn ratio(self, other: Area) -> Result<f64, UnitError> {
        if other.is_zero() {
            Err(UnitError::DivisionByZero {
                context: "computing an area ratio",
            })
        } else {
            Ok(self.0 / other.0)
        }
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} mm²", prec, self.0)
        } else {
            write!(f, "{} mm²", self.0)
        }
    }
}

impl Add for Area {
    type Output = Area;

    fn add(self, rhs: Area) -> Area {
        Area(self.0 + rhs.0)
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Area) {
        self.0 += rhs.0;
    }
}

impl Sub for Area {
    type Output = Area;

    /// Computes `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative; use
    /// [`Area::saturating_sub`] when the difference may underflow.
    fn sub(self, rhs: Area) -> Area {
        debug_assert!(
            self.0 >= rhs.0,
            "area subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        Area((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Area {
    fn sub_assign(&mut self, rhs: Area) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Area {
    type Output = Area;

    fn mul(self, rhs: f64) -> Area {
        Area(self.0 * rhs)
    }
}

impl Mul<Area> for f64 {
    type Output = Area;

    fn mul(self, rhs: Area) -> Area {
        Area(self * rhs.0)
    }
}

impl Div<f64> for Area {
    type Output = Area;

    fn div(self, rhs: f64) -> Area {
        Area(self.0 / rhs)
    }
}

impl Div<Area> for Area {
    type Output = f64;

    fn div(self, rhs: Area) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        iter.fold(Area::ZERO, |acc, a| acc + a)
    }
}

impl<'a> Sum<&'a Area> for Area {
    fn sum<I: Iterator<Item = &'a Area>>(iter: I) -> Area {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_validate() {
        assert!(Area::from_mm2(0.0).is_ok());
        assert!(Area::from_mm2(850.5).is_ok());
        assert!(Area::from_mm2(-1.0).is_err());
        assert!(Area::from_mm2(f64::NAN).is_err());
        assert!(Area::from_mm2(f64::INFINITY).is_err());
        assert!(Area::from_cm2(-0.5).is_err());
        assert!(Area::from_rect_mm(-2.0, 3.0).is_err());
    }

    #[test]
    fn unit_conversions_round_trip() {
        let a = Area::from_cm2(8.0).unwrap();
        assert_eq!(a.mm2(), 800.0);
        assert_eq!(a.cm2(), 8.0);
        let r = Area::from_rect_mm(26.0, 33.0).unwrap();
        assert_eq!(r.mm2(), 858.0);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Area::from_mm2(100.0).unwrap();
        let b = Area::from_mm2(50.0).unwrap();
        assert_eq!((a + b).mm2(), 150.0);
        assert_eq!((a - b).mm2(), 50.0);
        assert_eq!((a * 2.0).mm2(), 200.0);
        assert_eq!((2.0 * a).mm2(), 200.0);
        assert_eq!((a / 4.0).mm2(), 25.0);
        assert_eq!(a / b, 2.0);
        assert_eq!(b.saturating_sub(a), Area::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn ratio_guards_division_by_zero() {
        let a = Area::from_mm2(10.0).unwrap();
        assert_eq!(a.ratio(Area::from_mm2(5.0).unwrap()).unwrap(), 2.0);
        assert!(a.ratio(Area::ZERO).is_err());
    }

    #[test]
    fn sum_of_areas() {
        let parts = [10.0, 20.0, 30.0]
            .iter()
            .map(|&v| Area::from_mm2(v).unwrap())
            .collect::<Vec<_>>();
        let total: Area = parts.iter().sum();
        assert_eq!(total.mm2(), 60.0);
    }

    #[test]
    fn display_formats_with_unit() {
        let a = Area::from_mm2(123.456).unwrap();
        assert_eq!(format!("{a:.1}"), "123.5 mm²");
        assert_eq!(format!("{a}"), "123.456 mm²");
    }

    #[test]
    fn square_side() {
        let a = Area::from_mm2(64.0).unwrap();
        assert_eq!(a.square_side_mm(), 8.0);
    }

    proptest! {
        #[test]
        fn construction_accepts_all_non_negative_finite(v in 0.0f64..1e12) {
            let a = Area::from_mm2(v).unwrap();
            prop_assert_eq!(a.mm2(), v);
        }

        #[test]
        fn add_is_commutative(x in 0.0f64..1e6, y in 0.0f64..1e6) {
            let a = Area::from_mm2(x).unwrap();
            let b = Area::from_mm2(y).unwrap();
            prop_assert_eq!((a + b).mm2(), (b + a).mm2());
        }

        #[test]
        fn scaled_matches_mul(x in 0.0f64..1e6, f in 0.0f64..100.0) {
            let a = Area::from_mm2(x).unwrap();
            prop_assert_eq!(a.scaled(f).unwrap().mm2(), (a * f).mm2());
        }

        #[test]
        fn saturating_sub_never_negative(x in 0.0f64..1e6, y in 0.0f64..1e6) {
            let a = Area::from_mm2(x).unwrap();
            let b = Area::from_mm2(y).unwrap();
            prop_assert!(a.saturating_sub(b).mm2() >= 0.0);
        }
    }
}
