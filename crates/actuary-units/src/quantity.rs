use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use serde::{Deserialize, Serialize};

use crate::fmt::fmt_thousands;

/// A production quantity (number of systems, chips or packages built).
///
/// NRE amortization (§2.3 of the paper) divides one-time costs by a
/// [`Quantity`]; the experiments in §4–5 use 500 k, 2 M and 10 M.
///
/// # Examples
///
/// ```
/// use actuary_units::Quantity;
///
/// let q = Quantity::new(500_000);
/// assert_eq!(q.to_string(), "500,000");
/// assert_eq!((q * 4).count(), 2_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Quantity(u64);

impl Quantity {
    /// The zero quantity.
    pub const ZERO: Quantity = Quantity(0);

    /// Creates a quantity of `count` units.
    pub const fn new(count: u64) -> Self {
        Quantity(count)
    }

    /// The number of units.
    #[inline]
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Returns `true` if the quantity is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The quantity as a floating point number, for cost arithmetic.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating addition of two quantities.
    #[inline]
    pub const fn saturating_add(self, other: Quantity) -> Quantity {
        Quantity(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_thousands(self.0))
    }
}

impl From<u64> for Quantity {
    fn from(count: u64) -> Self {
        Quantity(count)
    }
}

impl From<Quantity> for u64 {
    fn from(q: Quantity) -> u64 {
        q.0
    }
}

impl Add for Quantity {
    type Output = Quantity;

    fn add(self, rhs: Quantity) -> Quantity {
        Quantity(self.0 + rhs.0)
    }
}

impl AddAssign for Quantity {
    fn add_assign(&mut self, rhs: Quantity) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Quantity {
    type Output = Quantity;

    fn mul(self, rhs: u64) -> Quantity {
        Quantity(self.0 * rhs)
    }
}

impl Sum for Quantity {
    fn sum<I: Iterator<Item = Quantity>>(iter: I) -> Quantity {
        iter.fold(Quantity::ZERO, |acc, q| acc + q)
    }
}

impl<'a> Sum<&'a Quantity> for Quantity {
    fn sum<I: Iterator<Item = &'a Quantity>>(iter: I) -> Quantity {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let q = Quantity::new(42);
        assert_eq!(q.count(), 42);
        assert_eq!(q.as_f64(), 42.0);
        assert!(!q.is_zero());
        assert!(Quantity::ZERO.is_zero());
    }

    #[test]
    fn display_uses_thousand_separators() {
        assert_eq!(Quantity::new(10_000_000).to_string(), "10,000,000");
        assert_eq!(Quantity::new(999).to_string(), "999");
        assert_eq!(Quantity::ZERO.to_string(), "0");
    }

    #[test]
    fn conversions() {
        let q: Quantity = 7u64.into();
        let raw: u64 = q.into();
        assert_eq!(raw, 7);
    }

    #[test]
    fn arithmetic() {
        assert_eq!((Quantity::new(2) + Quantity::new(3)).count(), 5);
        assert_eq!((Quantity::new(2) * 3).count(), 6);
        let total: Quantity = [1u64, 2, 3].iter().map(|&v| Quantity::new(v)).sum();
        assert_eq!(total.count(), 6);
        assert_eq!(
            Quantity::new(u64::MAX)
                .saturating_add(Quantity::new(1))
                .count(),
            u64::MAX
        );
    }

    #[test]
    fn ordering_and_hash_derive() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Quantity::new(1));
        set.insert(Quantity::new(1));
        assert_eq!(set.len(), 1);
        assert!(Quantity::new(1) < Quantity::new(2));
    }
}
