//! Small formatting helpers shared by the unit types and the report crate.

/// Formats an unsigned integer with `,` thousands separators.
///
/// # Examples
///
/// ```
/// use actuary_units::fmt_thousands;
///
/// assert_eq!(fmt_thousands(0), "0");
/// assert_eq!(fmt_thousands(1_234_567), "1,234,567");
/// ```
pub fn fmt_thousands(value: u64) -> String {
    let digits = value.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Formats a fraction (`0.253`) as a percentage string (`"25.3%"`).
///
/// # Examples
///
/// ```
/// use actuary_units::format_percent;
///
/// assert_eq!(format_percent(0.253, 1), "25.3%");
/// assert_eq!(format_percent(1.0, 0), "100%");
/// ```
pub fn format_percent(fraction: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, fraction * 100.0)
}

/// Formats a dimensionless ratio such as a normalized cost (`"1.73x"`).
///
/// # Examples
///
/// ```
/// use actuary_units::format_ratio;
///
/// assert_eq!(format_ratio(1.7321, 2), "1.73x");
/// ```
pub fn format_ratio(ratio: f64, decimals: usize) -> String {
    format!("{ratio:.decimals$}x")
}

/// Escapes one RFC-4180 CSV field: quotes it when it contains a comma,
/// quote, or line break, doubling embedded quotes.
///
/// Lives in the base layer so both the DSE and report layers can emit CSV
/// without an edge between them.
///
/// # Examples
///
/// ```
/// use actuary_units::csv_escape;
///
/// assert_eq!(csv_escape("plain"), "plain");
/// assert_eq!(csv_escape("a,b"), "\"a,b\"");
/// assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
/// ```
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes one record to `out` as an RFC-4180 CSV line (`\n` terminated) —
/// the streaming primitive behind [`write_csv`], so huge documents (a
/// 10⁶-cell exploration grid) never materialize as one `String`.
///
/// # Errors
///
/// Propagates the sink's [`std::fmt::Error`] (infallible for `String`).
///
/// # Examples
///
/// ```
/// use actuary_units::write_csv_row;
///
/// let mut out = String::new();
/// write_csv_row(&mut out, &["1", "x,y"]).unwrap();
/// assert_eq!(out, "1,\"x,y\"\n");
/// ```
pub fn write_csv_row<W: std::fmt::Write + ?Sized, S: AsRef<str>>(
    out: &mut W,
    record: &[S],
) -> std::fmt::Result {
    for (i, field) in record.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        out.write_str(&csv_escape(field.as_ref()))?;
    }
    out.write_char('\n')
}

/// Serializes records as RFC-4180 CSV text with `\n` line endings.
///
/// # Examples
///
/// ```
/// use actuary_units::write_csv;
///
/// let rows = vec![
///     vec!["a".to_string(), "b".to_string()],
///     vec!["1".to_string(), "x,y".to_string()],
/// ];
/// assert_eq!(write_csv(&rows), "a,b\n1,\"x,y\"\n");
/// ```
pub fn write_csv(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for record in records {
        write_csv_row(&mut out, record).expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_separator_groups_of_three() {
        assert_eq!(fmt_thousands(0), "0");
        assert_eq!(fmt_thousands(1), "1");
        assert_eq!(fmt_thousands(12), "12");
        assert_eq!(fmt_thousands(123), "123");
        assert_eq!(fmt_thousands(1_234), "1,234");
        assert_eq!(fmt_thousands(12_345), "12,345");
        assert_eq!(fmt_thousands(123_456), "123,456");
        assert_eq!(fmt_thousands(1_234_567), "1,234,567");
        assert_eq!(fmt_thousands(u64::MAX), "18,446,744,073,709,551,615");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(format_percent(0.5, 0), "50%");
        assert_eq!(format_percent(0.1234, 2), "12.34%");
        assert_eq!(format_percent(-0.05, 0), "-5%");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(format_ratio(2.0, 1), "2.0x");
        assert_eq!(format_ratio(0.333, 2), "0.33x");
    }

    #[test]
    fn csv_escaping_rules() {
        assert_eq!(csv_escape(""), "");
        assert_eq!(csv_escape("simple"), "simple");
        assert_eq!(csv_escape("with,comma"), "\"with,comma\"");
        assert_eq!(csv_escape("with\nnewline"), "\"with\nnewline\"");
        assert_eq!(csv_escape("with\rreturn"), "\"with\rreturn\"");
        assert_eq!(csv_escape("q\"uote"), "\"q\"\"uote\"");
    }
}
