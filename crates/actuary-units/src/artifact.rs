//! The streaming [`Artifact`] abstraction: every tabular result the
//! workspace emits — exploration grids, winner tables, Pareto fronts,
//! sweeps, scenario costs and yields — is one *named table* with a column
//! schema, a streaming row source and metadata, serialized by exactly one
//! CSV writer.
//!
//! Before this layer existed, every emitter hand-rolled its own CSV string
//! builder (`to_csv` here, `winners_to_csv` there, an `IoSink` in the CLI),
//! which is the same drift-prone duplication the cached/direct cost split
//! once had. An [`Artifact`] inverts that: producers describe *what* the
//! table is (name, kind, columns) and stream rows through a callback;
//! [`Artifact::write_csv_to`] is the single serializer, and any
//! `fmt::Write` sink — a `String`, a file behind [`IoSink`], an HTTP
//! chunked-transfer stream — receives the same bytes.
//!
//! The type lives in the base layer for the same reason `csv_escape` does
//! (the DSE crate must produce artifacts without depending upward);
//! `actuary_report::Artifact` is the canonical public name.
//!
//! # Examples
//!
//! ```
//! use actuary_units::Artifact;
//!
//! let table = Artifact::new("demo", "grid", &["x", "y"], |emit| {
//!     for i in 0..3u32 {
//!         emit(&[i.to_string(), (i * i).to_string()])?;
//!     }
//!     Ok(())
//! });
//! assert_eq!(table.name(), "demo");
//! assert_eq!(table.csv(), "x,y\n0,0\n1,1\n2,4\n");
//! ```

use std::fmt;
use std::io;

use crate::fmt::write_csv_row;

/// The row callback an artifact's source streams into: called once per
/// row, in order; a returned error aborts the stream.
pub type RowEmit<'e> = dyn FnMut(&[String]) -> fmt::Result + 'e;

/// A named tabular result: column schema + streaming row source +
/// metadata — the one shape every tabular emitter in the workspace
/// produces, serialized by exactly one CSV writer
/// ([`Artifact::write_csv_to`]) into any `fmt::Write` sink (a `String`, a
/// file or socket behind [`IoSink`], an HTTP chunked stream).
///
/// An artifact is *one-shot*: rendering it consumes it (the row source may
/// borrow and iterate expensive state); producers hand out a fresh
/// artifact per request.
pub struct Artifact<'a> {
    name: String,
    kind: &'static str,
    columns: Vec<String>,
    #[allow(clippy::type_complexity)]
    rows: Box<dyn FnOnce(&mut RowEmit<'_>) -> fmt::Result + 'a>,
}

impl fmt::Debug for Artifact<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Artifact")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("columns", &self.columns)
            .finish_non_exhaustive()
    }
}

impl<'a> Artifact<'a> {
    /// Creates an artifact from its schema and streaming row source.
    ///
    /// `name` identifies the table (it becomes the output file stem, e.g.
    /// `<scenario>-<name>.csv`); `kind` is coarse metadata (`"grid"`,
    /// `"winners"`, `"pareto"`, …) for consumers that route by shape
    /// rather than by name. `rows` is called exactly once, with a callback
    /// to invoke per row; rows must match the column count.
    pub fn new<F>(
        name: impl Into<String>,
        kind: &'static str,
        columns: &[&str],
        rows: F,
    ) -> Artifact<'a>
    where
        F: FnOnce(&mut RowEmit<'_>) -> fmt::Result + 'a,
    {
        Artifact {
            name: name.into(),
            kind,
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Box::new(rows),
        }
    }

    /// The artifact's name (output file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The artifact's kind (`"grid"`, `"winners"`, `"pareto"`,
    /// `"pareto_program"`, `"sweep"`, `"costs"`, `"yields"`, `"table"`).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The column names, in emission order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The same artifact under a new name — producers emit generic names
    /// (`"grid"`), composers qualify them (`"fig10-grid"`).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Artifact<'a> {
        self.name = name.into();
        self
    }

    /// Streams the artifact as RFC-4180 CSV into `out` — header row, then
    /// every data row — without materializing the document. This is the
    /// one serializer every emitter in the workspace goes through.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`fmt::Error`] (infallible for `String`; an
    /// [`IoSink`] records the underlying [`io::Error`]).
    pub fn write_csv_to<W: fmt::Write + ?Sized>(self, out: &mut W) -> fmt::Result {
        write_csv_row(out, &self.columns)?;
        self.write_csv_rows_to(out)
    }

    /// Streams only the artifact's data rows as CSV — no header row. The
    /// continuation form of [`Artifact::write_csv_to`]: a consumer that
    /// already holds the header (an earlier segment of the same table on
    /// an incremental HTTP stream) appends these bytes and ends up with a
    /// document the one CSV serializer could have produced in one shot.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`fmt::Error`] (infallible for `String`; an
    /// [`IoSink`] records the underlying [`io::Error`]).
    pub fn write_csv_rows_to<W: fmt::Write + ?Sized>(self, out: &mut W) -> fmt::Result {
        (self.rows)(&mut |row: &[String]| write_csv_row(out, row))
    }

    /// Renders the artifact as a CSV string (delegates to
    /// [`Artifact::write_csv_to`]).
    pub fn csv(self) -> String {
        let mut out = String::new();
        self.write_csv_to(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    /// Streams the artifact as JSON lines (NDJSON) into `out`: one
    /// metadata object naming the table and its column schema, then one
    /// object per row keyed by column name.
    ///
    /// This is the *second sink* over the same streaming row source, not a
    /// second serializer family: emitters still describe their rows
    /// exactly once, and both encodings render the identical cells. A cell
    /// that is a valid JSON number literal is emitted verbatim as a bare
    /// number (so `jq`-style consumers get real numbers with the CSV's
    /// exact digits); every other cell becomes a JSON string.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`fmt::Error`] (infallible for `String`; an
    /// [`IoSink`] records the underlying [`io::Error`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use actuary_units::Artifact;
    ///
    /// let a = Artifact::new("demo", "grid", &["x", "label"], |emit| {
    ///     emit(&["1.5".to_string(), "a,b".to_string()])
    /// });
    /// assert_eq!(
    ///     a.jsonl(),
    ///     "{\"artifact\":\"demo\",\"kind\":\"grid\",\"columns\":[\"x\",\"label\"]}\n\
    ///      {\"x\":1.5,\"label\":\"a,b\"}\n"
    /// );
    /// ```
    pub fn write_jsonl_to<W: fmt::Write + ?Sized>(self, out: &mut W) -> fmt::Result {
        out.write_str("{\"artifact\":")?;
        write_json_string(out, &self.name)?;
        out.write_str(",\"kind\":")?;
        write_json_string(out, self.kind)?;
        out.write_str(",\"columns\":[")?;
        for (i, column) in self.columns.iter().enumerate() {
            if i > 0 {
                out.write_str(",")?;
            }
            write_json_string(out, column)?;
        }
        out.write_str("]}\n")?;
        self.write_jsonl_rows_to(out)
    }

    /// Streams only the artifact's data rows as JSON lines — no metadata
    /// object. The continuation form of [`Artifact::write_jsonl_to`],
    /// mirroring [`Artifact::write_csv_rows_to`]: later segments of an
    /// incrementally streamed table append row objects under the schema
    /// the first segment already announced.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`fmt::Error`] (infallible for `String`; an
    /// [`IoSink`] records the underlying [`io::Error`]).
    pub fn write_jsonl_rows_to<W: fmt::Write + ?Sized>(self, out: &mut W) -> fmt::Result {
        let columns = self.columns;
        (self.rows)(&mut |row: &[String]| write_jsonl_row(out, &columns, row))
    }

    /// Renders the artifact as a JSON-lines string (delegates to
    /// [`Artifact::write_jsonl_to`]).
    pub fn jsonl(self) -> String {
        let mut out = String::new();
        self.write_jsonl_to(&mut out)
            .expect("writing to a String cannot fail");
        out
    }
}

/// Writes one artifact row as a JSON object keyed by column name — the
/// row encoder both the full and rows-only JSON-lines sinks share.
fn write_jsonl_row<W: fmt::Write + ?Sized>(
    out: &mut W,
    columns: &[String],
    row: &[String],
) -> fmt::Result {
    out.write_str("{")?;
    for (i, (column, cell)) in columns.iter().zip(row).enumerate() {
        if i > 0 {
            out.write_str(",")?;
        }
        write_json_string(out, column)?;
        out.write_str(":")?;
        if is_json_number(cell) {
            out.write_str(cell)?;
        } else {
            write_json_string(out, cell)?;
        }
    }
    out.write_str("}\n")
}

/// Writes `s` as a JSON string literal, escaping per RFC 8259.
fn write_json_string<W: fmt::Write + ?Sized>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Whether `s` is a valid JSON number literal per the RFC 8259 grammar
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`). Such cells are
/// emitted verbatim as bare numbers — the digits the CSV encoding carries
/// — so the check is strict: `007`, `1.`, `+1`, `NaN` and `inf` all fail
/// and fall back to strings.
fn is_json_number(s: &str) -> bool {
    let mut rest = s.strip_prefix('-').unwrap_or(s).as_bytes();
    // Integer part: `0` alone, or a non-zero digit followed by digits.
    match rest {
        [b'0', tail @ ..] => rest = tail,
        [b'1'..=b'9', ..] => {
            let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
            rest = &rest[digits..];
        }
        _ => return false,
    }
    // Optional fraction: `.` followed by one or more digits.
    if let [b'.', tail @ ..] = rest {
        let digits = tail.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        rest = &tail[digits..];
    }
    // Optional exponent: `e`/`E`, optional sign, one or more digits.
    if let [b'e' | b'E', tail @ ..] = rest {
        let tail = match tail {
            [b'+' | b'-', t @ ..] => t,
            t => t,
        };
        let digits = tail.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        rest = &tail[digits..];
    }
    rest.is_empty()
}

/// Adapts an [`io::Write`] sink to [`fmt::Write`] so artifacts can stream
/// straight into files and sockets; the underlying io error is kept for
/// the caller's message (a bare [`fmt::Error`] carries none).
///
/// # Examples
///
/// ```
/// use actuary_units::{Artifact, IoSink};
/// use std::fmt::Write as _;
///
/// let mut sink = IoSink::new(Vec::new());
/// sink.write_str("x,y\n").unwrap();
/// assert!(sink.take_error().is_none());
/// assert_eq!(sink.into_inner(), b"x,y\n");
/// ```
#[derive(Debug)]
pub struct IoSink<W: io::Write> {
    inner: W,
    error: Option<io::Error>,
}

impl<W: io::Write> IoSink<W> {
    /// Wraps an io sink.
    pub fn new(inner: W) -> Self {
        IoSink { inner, error: None }
    }

    /// The io error behind the last [`fmt::Error`], if any (taking it
    /// resets the sink's error state).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Unwraps the underlying io sink (e.g. to flush a `BufWriter`).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> fmt::Write for IoSink<W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            self.error = Some(e);
            fmt::Error
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact<'static> {
        Artifact::new("t", "table", &["a", "b"], |emit| {
            emit(&["1".to_string(), "x,y".to_string()])?;
            emit(&["2".to_string(), String::new()])
        })
    }

    #[test]
    fn csv_escapes_and_terminates_rows() {
        assert_eq!(sample().csv(), "a,b\n1,\"x,y\"\n2,\n");
    }

    #[test]
    fn metadata_is_inspectable_before_rendering() {
        let a = sample();
        assert_eq!(a.name(), "t");
        assert_eq!(a.kind(), "table");
        assert_eq!(a.columns(), ["a", "b"]);
    }

    #[test]
    fn named_renames_without_touching_rows() {
        let a = sample().named("renamed");
        assert_eq!(a.name(), "renamed");
        assert_eq!(a.csv(), "a,b\n1,\"x,y\"\n2,\n");
    }

    #[test]
    fn streaming_into_a_string_matches_csv() {
        let mut out = String::new();
        sample().write_csv_to(&mut out).unwrap();
        assert_eq!(out, sample().csv());
    }

    #[test]
    fn empty_artifact_is_just_the_header() {
        let a = Artifact::new("empty", "grid", &["only"], |_| Ok(()));
        assert_eq!(a.csv(), "only\n");
    }

    #[test]
    fn row_source_can_borrow_local_state() {
        let rows: Vec<Vec<String>> = vec![vec!["r".to_string()]];
        let a = Artifact::new("borrow", "table", &["c"], |emit| {
            for row in &rows {
                emit(row)?;
            }
            Ok(())
        });
        assert_eq!(a.csv(), "c\nr\n");
    }

    #[test]
    fn jsonl_emits_meta_line_then_keyed_rows() {
        assert_eq!(
            sample().jsonl(),
            concat!(
                "{\"artifact\":\"t\",\"kind\":\"table\",\"columns\":[\"a\",\"b\"]}\n",
                "{\"a\":1,\"b\":\"x,y\"}\n",
                "{\"a\":2,\"b\":\"\"}\n",
            )
        );
    }

    #[test]
    fn jsonl_escapes_strings_and_passes_numbers_verbatim() {
        let a = Artifact::new("esc", "table", &["q\"c", "v"], |emit| {
            emit(&["say \"hi\"\n".to_string(), "-12.5e3".to_string()])?;
            emit(&["tab\there".to_string(), "007".to_string()])
        });
        assert_eq!(
            a.jsonl(),
            concat!(
                "{\"artifact\":\"esc\",\"kind\":\"table\",\"columns\":[\"q\\\"c\",\"v\"]}\n",
                "{\"q\\\"c\":\"say \\\"hi\\\"\\n\",\"v\":-12.5e3}\n",
                "{\"q\\\"c\":\"tab\\there\",\"v\":\"007\"}\n",
            )
        );
    }

    #[test]
    fn json_number_grammar_is_strict() {
        for ok in [
            "0", "-0", "7", "123", "1.5", "-0.25", "1e3", "2.5E-7", "9e+2",
        ] {
            assert!(is_json_number(ok), "{ok:?} must be a JSON number");
        }
        for bad in [
            "", "-", "007", "1.", ".5", "+1", "1e", "1e+", "NaN", "inf", "0x10", "1_000", "1 ",
        ] {
            assert!(!is_json_number(bad), "{bad:?} must fall back to a string");
        }
    }

    #[test]
    fn rows_only_writers_complete_a_headed_segment() {
        // Header from one rendering plus rows-only continuations must be
        // byte-identical to the one-shot serializers — the invariant the
        // incremental HTTP stream relies on.
        let mut csv = String::new();
        write_csv_row(&mut csv, &["a".to_string(), "b".to_string()]).unwrap();
        sample().write_csv_rows_to(&mut csv).unwrap();
        assert_eq!(csv, sample().csv());

        let full = sample().jsonl();
        let (meta, _) = full.split_once('\n').unwrap();
        let mut jsonl = format!("{meta}\n");
        sample().write_jsonl_rows_to(&mut jsonl).unwrap();
        assert_eq!(jsonl, full);
    }

    #[test]
    fn jsonl_and_csv_render_the_same_cells() {
        // The two sinks consume the same row source; every CSV cell must
        // appear (escaped or verbatim) in the JSON-lines encoding.
        let jsonl = sample().jsonl();
        assert!(jsonl.contains("\"x,y\""), "{jsonl}");
        assert!(jsonl.contains(":1,"), "{jsonl}");
    }

    #[test]
    fn io_sink_round_trips_bytes_and_keeps_errors() {
        /// A writer that fails after `cap` bytes, like a full disk.
        struct Full {
            cap: usize,
        }
        impl io::Write for Full {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if buf.len() > self.cap {
                    Err(io::Error::other("disk full"))
                } else {
                    self.cap -= buf.len();
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut ok = IoSink::new(Vec::new());
        sample().write_csv_to(&mut ok).unwrap();
        assert_eq!(ok.into_inner(), sample().csv().into_bytes());

        let mut full = IoSink::new(Full { cap: 4 });
        assert!(sample().write_csv_to(&mut full).is_err());
        let err = full.take_error().expect("the io cause must be kept");
        assert!(err.to_string().contains("disk full"));
        assert!(full.take_error().is_none(), "taking resets the state");
    }
}
