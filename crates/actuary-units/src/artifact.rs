//! The streaming [`Artifact`] abstraction: every tabular result the
//! workspace emits — exploration grids, winner tables, Pareto fronts,
//! sweeps, scenario costs and yields — is one *named table* with a column
//! schema, a streaming row source and metadata, serialized by exactly one
//! CSV writer.
//!
//! Before this layer existed, every emitter hand-rolled its own CSV string
//! builder (`to_csv` here, `winners_to_csv` there, an `IoSink` in the CLI),
//! which is the same drift-prone duplication the cached/direct cost split
//! once had. An [`Artifact`] inverts that: producers describe *what* the
//! table is (name, kind, columns) and stream rows through a callback;
//! [`Artifact::write_csv_to`] is the single serializer, and any
//! `fmt::Write` sink — a `String`, a file behind [`IoSink`], an HTTP
//! chunked-transfer stream — receives the same bytes.
//!
//! The type lives in the base layer for the same reason `csv_escape` does
//! (the DSE crate must produce artifacts without depending upward);
//! `actuary_report::Artifact` is the canonical public name.
//!
//! # Examples
//!
//! ```
//! use actuary_units::Artifact;
//!
//! let table = Artifact::new("demo", "grid", &["x", "y"], |emit| {
//!     for i in 0..3u32 {
//!         emit(&[i.to_string(), (i * i).to_string()])?;
//!     }
//!     Ok(())
//! });
//! assert_eq!(table.name(), "demo");
//! assert_eq!(table.csv(), "x,y\n0,0\n1,1\n2,4\n");
//! ```

use std::fmt;
use std::io;

use crate::fmt::write_csv_row;

/// The row callback an artifact's source streams into: called once per
/// row, in order; a returned error aborts the stream.
pub type RowEmit<'e> = dyn FnMut(&[String]) -> fmt::Result + 'e;

/// A named tabular result: column schema + streaming row source +
/// metadata — the one shape every tabular emitter in the workspace
/// produces, serialized by exactly one CSV writer
/// ([`Artifact::write_csv_to`]) into any `fmt::Write` sink (a `String`, a
/// file or socket behind [`IoSink`], an HTTP chunked stream).
///
/// An artifact is *one-shot*: rendering it consumes it (the row source may
/// borrow and iterate expensive state); producers hand out a fresh
/// artifact per request.
pub struct Artifact<'a> {
    name: String,
    kind: &'static str,
    columns: Vec<String>,
    #[allow(clippy::type_complexity)]
    rows: Box<dyn FnOnce(&mut RowEmit<'_>) -> fmt::Result + 'a>,
}

impl fmt::Debug for Artifact<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Artifact")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("columns", &self.columns)
            .finish_non_exhaustive()
    }
}

impl<'a> Artifact<'a> {
    /// Creates an artifact from its schema and streaming row source.
    ///
    /// `name` identifies the table (it becomes the output file stem, e.g.
    /// `<scenario>-<name>.csv`); `kind` is coarse metadata (`"grid"`,
    /// `"winners"`, `"pareto"`, …) for consumers that route by shape
    /// rather than by name. `rows` is called exactly once, with a callback
    /// to invoke per row; rows must match the column count.
    pub fn new<F>(
        name: impl Into<String>,
        kind: &'static str,
        columns: &[&str],
        rows: F,
    ) -> Artifact<'a>
    where
        F: FnOnce(&mut RowEmit<'_>) -> fmt::Result + 'a,
    {
        Artifact {
            name: name.into(),
            kind,
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Box::new(rows),
        }
    }

    /// The artifact's name (output file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The artifact's kind (`"grid"`, `"winners"`, `"pareto"`,
    /// `"pareto_program"`, `"sweep"`, `"costs"`, `"yields"`, `"table"`).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The column names, in emission order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The same artifact under a new name — producers emit generic names
    /// (`"grid"`), composers qualify them (`"fig10-grid"`).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Artifact<'a> {
        self.name = name.into();
        self
    }

    /// Streams the artifact as RFC-4180 CSV into `out` — header row, then
    /// every data row — without materializing the document. This is the
    /// one serializer every emitter in the workspace goes through.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`fmt::Error`] (infallible for `String`; an
    /// [`IoSink`] records the underlying [`io::Error`]).
    pub fn write_csv_to<W: fmt::Write + ?Sized>(self, out: &mut W) -> fmt::Result {
        write_csv_row(out, &self.columns)?;
        (self.rows)(&mut |row: &[String]| write_csv_row(out, row))
    }

    /// Renders the artifact as a CSV string (delegates to
    /// [`Artifact::write_csv_to`]).
    pub fn csv(self) -> String {
        let mut out = String::new();
        self.write_csv_to(&mut out)
            .expect("writing to a String cannot fail");
        out
    }
}

/// Adapts an [`io::Write`] sink to [`fmt::Write`] so artifacts can stream
/// straight into files and sockets; the underlying io error is kept for
/// the caller's message (a bare [`fmt::Error`] carries none).
///
/// # Examples
///
/// ```
/// use actuary_units::{Artifact, IoSink};
/// use std::fmt::Write as _;
///
/// let mut sink = IoSink::new(Vec::new());
/// sink.write_str("x,y\n").unwrap();
/// assert!(sink.take_error().is_none());
/// assert_eq!(sink.into_inner(), b"x,y\n");
/// ```
#[derive(Debug)]
pub struct IoSink<W: io::Write> {
    inner: W,
    error: Option<io::Error>,
}

impl<W: io::Write> IoSink<W> {
    /// Wraps an io sink.
    pub fn new(inner: W) -> Self {
        IoSink { inner, error: None }
    }

    /// The io error behind the last [`fmt::Error`], if any (taking it
    /// resets the sink's error state).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Unwraps the underlying io sink (e.g. to flush a `BufWriter`).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> fmt::Write for IoSink<W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            self.error = Some(e);
            fmt::Error
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact<'static> {
        Artifact::new("t", "table", &["a", "b"], |emit| {
            emit(&["1".to_string(), "x,y".to_string()])?;
            emit(&["2".to_string(), String::new()])
        })
    }

    #[test]
    fn csv_escapes_and_terminates_rows() {
        assert_eq!(sample().csv(), "a,b\n1,\"x,y\"\n2,\n");
    }

    #[test]
    fn metadata_is_inspectable_before_rendering() {
        let a = sample();
        assert_eq!(a.name(), "t");
        assert_eq!(a.kind(), "table");
        assert_eq!(a.columns(), ["a", "b"]);
    }

    #[test]
    fn named_renames_without_touching_rows() {
        let a = sample().named("renamed");
        assert_eq!(a.name(), "renamed");
        assert_eq!(a.csv(), "a,b\n1,\"x,y\"\n2,\n");
    }

    #[test]
    fn streaming_into_a_string_matches_csv() {
        let mut out = String::new();
        sample().write_csv_to(&mut out).unwrap();
        assert_eq!(out, sample().csv());
    }

    #[test]
    fn empty_artifact_is_just_the_header() {
        let a = Artifact::new("empty", "grid", &["only"], |_| Ok(()));
        assert_eq!(a.csv(), "only\n");
    }

    #[test]
    fn row_source_can_borrow_local_state() {
        let rows: Vec<Vec<String>> = vec![vec!["r".to_string()]];
        let a = Artifact::new("borrow", "table", &["c"], |emit| {
            for row in &rows {
                emit(row)?;
            }
            Ok(())
        });
        assert_eq!(a.csv(), "c\nr\n");
    }

    #[test]
    fn io_sink_round_trips_bytes_and_keeps_errors() {
        /// A writer that fails after `cap` bytes, like a full disk.
        struct Full {
            cap: usize,
        }
        impl io::Write for Full {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if buf.len() > self.cap {
                    Err(io::Error::other("disk full"))
                } else {
                    self.cap -= buf.len();
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut ok = IoSink::new(Vec::new());
        sample().write_csv_to(&mut ok).unwrap();
        assert_eq!(ok.into_inner(), sample().csv().into_bytes());

        let mut full = IoSink::new(Full { cap: 4 });
        assert!(sample().write_csv_to(&mut full).is_err());
        let err = full.take_error().expect("the io cause must be kept");
        assert!(err.to_string().contains("disk full"));
        assert!(full.take_error().is_none(), "taking resets the state");
    }
}
