//! Unit and money newtypes for the `chiplet-actuary` cost model.
//!
//! The cost model mixes several scalar quantities that are all represented by
//! floating point numbers but must never be confused with one another: silicon
//! areas, dollar amounts, probabilities (yields) and production quantities.
//! Following the newtype guideline (C-NEWTYPE), this crate wraps each of them
//! in a dedicated type with validated constructors and only the arithmetic
//! that is dimensionally meaningful.
//!
//! # Examples
//!
//! ```
//! use actuary_units::{Area, Money, Prob, Quantity};
//!
//! # fn main() -> Result<(), actuary_units::UnitError> {
//! let die = Area::from_mm2(74.0)?;
//! let wafer_price = Money::from_usd(9_346.0)?;
//! let bond_yield = Prob::new(0.99)?;
//! let volume = Quantity::new(500_000);
//!
//! // Dimensional arithmetic is checked by the type system:
//! let two_dies = die * 2.0;            // Area
//! let per_unit = wafer_price / 100.0;  // Money
//! let pair = bond_yield * bond_yield;  // Prob
//! assert!(two_dies.mm2() > die.mm2());
//! assert!(per_unit < wafer_price);
//! assert!(pair.value() < bond_yield.value());
//! assert_eq!(volume.count(), 500_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod area;
mod artifact;
mod error;
mod fmt;
mod money;
mod prob;
mod quantity;

pub use area::Area;
pub use artifact::{Artifact, IoSink, RowEmit};
pub use error::UnitError;
pub use fmt::{csv_escape, fmt_thousands, format_percent, format_ratio, write_csv, write_csv_row};
pub use money::Money;
pub use prob::Prob;
pub use quantity::Quantity;

/// Convenience result alias used across the units crate.
pub type Result<T> = std::result::Result<T, UnitError>;
