use std::error::Error;
use std::fmt;

/// Error produced when constructing or combining unit values with
/// dimensionally invalid inputs (negative areas, non-finite money,
/// probabilities outside `[0, 1]`, …).
#[derive(Debug, Clone, PartialEq)]
pub enum UnitError {
    /// An area was negative or not finite.
    InvalidArea {
        /// The offending raw value in mm².
        value: f64,
    },
    /// A monetary amount was not finite.
    InvalidMoney {
        /// The offending raw value in USD.
        value: f64,
    },
    /// A probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending raw value.
        value: f64,
    },
    /// A division by zero was attempted (e.g. amortizing over zero units).
    DivisionByZero {
        /// Human-readable description of the operation that failed.
        context: &'static str,
    },
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::InvalidArea { value } => {
                write!(
                    f,
                    "invalid area: {value} mm² (must be finite and non-negative)"
                )
            }
            UnitError::InvalidMoney { value } => {
                write!(f, "invalid money amount: {value} USD (must be finite)")
            }
            UnitError::InvalidProbability { value } => {
                write!(
                    f,
                    "invalid probability: {value} (must be finite and within [0, 1])"
                )
            }
            UnitError::DivisionByZero { context } => {
                write!(f, "division by zero while {context}")
            }
        }
    }
}

impl Error for UnitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(UnitError, &str)> = vec![
            (UnitError::InvalidArea { value: -1.0 }, "invalid area"),
            (UnitError::InvalidMoney { value: f64::NAN }, "invalid money"),
            (
                UnitError::InvalidProbability { value: 2.0 },
                "invalid probability",
            ),
            (
                UnitError::DivisionByZero {
                    context: "amortizing NRE",
                },
                "division by zero",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "message {msg:?} should contain {needle:?}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg:?}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<UnitError>();
    }
}
