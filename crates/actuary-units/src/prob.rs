use std::fmt;
use std::ops::Mul;

use serde::{Deserialize, Serialize};

use crate::error::UnitError;

/// A probability in `[0, 1]`, used for yields of dies, bonds and packages.
///
/// Multiplying two probabilities models independent serial process steps,
/// exactly the continuous multiplication of the paper's Eq. (2):
/// `Y_overall = Y_wafer × Y_die × Y_packaging × Y_test`.
///
/// # Examples
///
/// ```
/// use actuary_units::Prob;
///
/// # fn main() -> Result<(), actuary_units::UnitError> {
/// let bond = Prob::new(0.99)?;
/// // Bonding four chips in series:
/// let all_four = bond.powi(4);
/// assert!((all_four.value() - 0.99f64.powi(4)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Prob(f64);

impl Prob {
    /// The certain event (yield 100 %).
    pub const ONE: Prob = Prob(1.0);

    /// The impossible event (yield 0 %).
    pub const ZERO: Prob = Prob(0.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidProbability`] if `p` is outside `[0, 1]`
    /// or not finite.
    pub fn new(p: f64) -> Result<Self, UnitError> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(Prob(p))
        } else {
            Err(UnitError::InvalidProbability { value: p })
        }
    }

    /// Creates a probability from a percentage (e.g. `99.0` → `0.99`).
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidProbability`] if the percentage is outside
    /// `[0, 100]` or not finite.
    pub fn from_percent(pct: f64) -> Result<Self, UnitError> {
        Self::new(pct / 100.0)
    }

    /// The raw probability value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The probability as a percentage.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Complementary probability `1 - p` (e.g. the defect rate of a yield).
    #[inline]
    pub fn complement(self) -> Prob {
        Prob(1.0 - self.0)
    }

    /// Raises the probability to a non-negative integer power, modelling `n`
    /// independent serial steps (e.g. bonding `n` chips: `y₂ⁿ` in Eq. (4)).
    #[inline]
    pub fn powi(self, n: u32) -> Prob {
        Prob(self.0.powi(n as i32))
    }

    /// Reciprocal `1 / p`, the expected number of attempts until success.
    ///
    /// This is the factor that inflates a raw cost into a yielded cost
    /// (`Cost / Y` in Eq. (5)).
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::DivisionByZero`] if the probability is zero.
    pub fn reciprocal(self) -> Result<f64, UnitError> {
        if self.0 == 0.0 {
            Err(UnitError::DivisionByZero {
                context: "inverting a zero yield",
            })
        } else {
            Ok(1.0 / self.0)
        }
    }

    /// The yielded-cost inflation factor `1/p − 1`, i.e. the *extra* cost per
    /// good unit caused by failing units (the defect terms of Eq. (4)).
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::DivisionByZero`] if the probability is zero.
    pub fn waste_factor(self) -> Result<f64, UnitError> {
        Ok(self.reciprocal()? - 1.0)
    }

    /// Returns `true` if the probability is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(2);
        write!(f, "{:.*}%", prec, self.0 * 100.0)
    }
}

impl Mul for Prob {
    type Output = Prob;

    fn mul(self, rhs: Prob) -> Prob {
        Prob(self.0 * rhs.0)
    }
}

impl Mul<f64> for Prob {
    type Output = f64;

    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl Default for Prob {
    /// Defaults to the certain event, the identity of serial composition.
    fn default() -> Self {
        Prob::ONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_validate() {
        assert!(Prob::new(0.0).is_ok());
        assert!(Prob::new(1.0).is_ok());
        assert!(Prob::new(0.5).is_ok());
        assert!(Prob::new(-0.1).is_err());
        assert!(Prob::new(1.1).is_err());
        assert!(Prob::new(f64::NAN).is_err());
        assert_eq!(Prob::from_percent(99.0).unwrap().value(), 0.99);
        assert!(Prob::from_percent(150.0).is_err());
    }

    #[test]
    fn serial_composition() {
        let y_die = Prob::new(0.9).unwrap();
        let y_pkg = Prob::new(0.95).unwrap();
        let overall = y_die * y_pkg;
        assert!((overall.value() - 0.855).abs() < 1e-12);
    }

    #[test]
    fn powi_models_repeated_bonding() {
        let bond = Prob::new(0.99).unwrap();
        assert!((bond.powi(4).value() - 0.960596_01).abs() < 1e-8);
        assert_eq!(bond.powi(0), Prob::ONE);
    }

    #[test]
    fn waste_factor_matches_reciprocal() {
        let y = Prob::new(0.8).unwrap();
        assert!((y.reciprocal().unwrap() - 1.25).abs() < 1e-12);
        assert!((y.waste_factor().unwrap() - 0.25).abs() < 1e-12);
        assert!(Prob::ZERO.reciprocal().is_err());
        assert!(Prob::ZERO.waste_factor().is_err());
    }

    #[test]
    fn complement() {
        let y = Prob::new(0.97).unwrap();
        assert!((y.complement().value() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn display_as_percent() {
        let y = Prob::new(0.876).unwrap();
        assert_eq!(format!("{y}"), "87.60%");
        assert_eq!(format!("{y:.0}"), "88%");
    }

    #[test]
    fn default_is_identity() {
        let y = Prob::new(0.42).unwrap();
        assert_eq!((y * Prob::default()).value(), y.value());
    }

    proptest! {
        #[test]
        fn product_stays_in_range(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let p = Prob::new(a).unwrap() * Prob::new(b).unwrap();
            prop_assert!((0.0..=1.0).contains(&p.value()));
        }

        #[test]
        fn powi_monotone_decreasing(a in 0.01f64..1.0, n in 1u32..50) {
            let p = Prob::new(a).unwrap();
            prop_assert!(p.powi(n + 1).value() <= p.powi(n).value());
        }

        #[test]
        fn complement_involution(a in 0.0f64..=1.0) {
            let p = Prob::new(a).unwrap();
            prop_assert!((p.complement().complement().value() - a).abs() < 1e-12);
        }
    }
}
