use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::error::UnitError;
use crate::fmt::fmt_thousands;
use crate::quantity::Quantity;

/// A monetary amount in US dollars.
///
/// Wafer prices, mask-set prices, NRE budgets and per-system costs are all
/// [`Money`]. The value is a finite `f64`; negative amounts are permitted
/// because cost *differences* (savings) are meaningful, but constructors
/// reject NaN and infinities.
///
/// Most figures in the paper are *normalized* costs; [`Money::normalized_to`]
/// produces the dimensionless ratio used for reporting.
///
/// # Examples
///
/// ```
/// use actuary_units::{Money, Quantity};
///
/// # fn main() -> Result<(), actuary_units::UnitError> {
/// let nre = Money::from_usd(30_000_000.0)?;
/// let per_unit = nre.amortize(Quantity::new(2_000_000))?;
/// assert_eq!(per_unit.usd(), 15.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Money(f64);

impl Money {
    /// The zero amount.
    pub const ZERO: Money = Money(0.0);

    /// Creates an amount from US dollars.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidMoney`] if `usd` is NaN or infinite.
    pub fn from_usd(usd: f64) -> Result<Self, UnitError> {
        if usd.is_finite() {
            Ok(Money(usd))
        } else {
            Err(UnitError::InvalidMoney { value: usd })
        }
    }

    /// Creates an amount from millions of US dollars.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidMoney`] if the value is NaN or infinite.
    pub fn from_musd(millions: f64) -> Result<Self, UnitError> {
        Self::from_usd(millions * 1.0e6)
    }

    /// The amount in US dollars.
    #[inline]
    pub fn usd(self) -> f64 {
        self.0
    }

    /// The amount in millions of US dollars.
    #[inline]
    pub fn musd(self) -> f64 {
        self.0 / 1.0e6
    }

    /// Returns `true` if the amount is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns `true` if the amount is negative (a saving).
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// Returns the smaller of two amounts.
    #[inline]
    pub fn min(self, other: Money) -> Money {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two amounts.
    #[inline]
    pub fn max(self, other: Money) -> Money {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Dimensionless ratio `self / reference`, the normalization used in all
    /// of the paper's figures.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::DivisionByZero`] if `reference` is zero.
    pub fn normalized_to(self, reference: Money) -> Result<f64, UnitError> {
        if reference.is_zero() {
            Err(UnitError::DivisionByZero {
                context: "normalizing a cost",
            })
        } else {
            Ok(self.0 / reference.0)
        }
    }

    /// Spreads a one-time (NRE) cost over a production quantity, yielding the
    /// per-unit amortized amount (§2.3 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::DivisionByZero`] if `quantity` is zero.
    pub fn amortize(self, quantity: Quantity) -> Result<Money, UnitError> {
        if quantity.is_zero() {
            Err(UnitError::DivisionByZero {
                context: "amortizing NRE over zero units",
            })
        } else {
            Ok(Money(self.0 / quantity.count() as f64))
        }
    }

    /// Scales the amount by a dimensionless factor.
    #[inline]
    pub fn scaled(self, factor: f64) -> Money {
        Money(self.0 * factor)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (sign, magnitude) = if self.0 < 0.0 {
            ("-", -self.0)
        } else {
            ("", self.0)
        };
        let cents = (magnitude * 100.0).round() / 100.0;
        let whole = cents.trunc();
        let frac = ((cents - whole) * 100.0).round() as u64;
        write!(f, "{sign}${}", fmt_thousands(whole as u64))?;
        if frac > 0 {
            write!(f, ".{frac:02}")?;
        }
        Ok(())
    }
}

impl Add for Money {
    type Output = Money;

    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;

    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;

    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<f64> for Money {
    type Output = Money;

    fn mul(self, rhs: f64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Mul<Money> for f64 {
    type Output = Money;

    fn mul(self, rhs: Money) -> Money {
        Money(self * rhs.0)
    }
}

impl Div<f64> for Money {
    type Output = Money;

    fn div(self, rhs: f64) -> Money {
        Money(self.0 / rhs)
    }
}

impl Div<Money> for Money {
    type Output = f64;

    fn div(self, rhs: Money) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |acc, m| acc + m)
    }
}

impl<'a> Sum<&'a Money> for Money {
    fn sum<I: Iterator<Item = &'a Money>>(iter: I) -> Money {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_validate() {
        assert!(Money::from_usd(0.0).is_ok());
        assert!(Money::from_usd(-5.0).is_ok(), "savings are negative money");
        assert!(Money::from_usd(f64::NAN).is_err());
        assert!(Money::from_usd(f64::NEG_INFINITY).is_err());
        assert_eq!(Money::from_musd(2.5).unwrap().usd(), 2_500_000.0);
    }

    #[test]
    fn amortization_divides_by_quantity() {
        let nre = Money::from_usd(1_000_000.0).unwrap();
        let per_unit = nre.amortize(Quantity::new(500_000)).unwrap();
        assert_eq!(per_unit.usd(), 2.0);
        assert!(nre.amortize(Quantity::new(0)).is_err());
    }

    #[test]
    fn normalization() {
        let a = Money::from_usd(150.0).unwrap();
        let b = Money::from_usd(100.0).unwrap();
        assert_eq!(a.normalized_to(b).unwrap(), 1.5);
        assert!(a.normalized_to(Money::ZERO).is_err());
    }

    #[test]
    fn display_with_thousands_separator() {
        assert_eq!(Money::from_usd(16_988.0).unwrap().to_string(), "$16,988");
        assert_eq!(
            Money::from_usd(1234567.5).unwrap().to_string(),
            "$1,234,567.50"
        );
        assert_eq!(Money::from_usd(-42.0).unwrap().to_string(), "-$42");
        assert_eq!(Money::ZERO.to_string(), "$0");
    }

    #[test]
    fn arithmetic() {
        let a = Money::from_usd(10.0).unwrap();
        let b = Money::from_usd(4.0).unwrap();
        assert_eq!((a + b).usd(), 14.0);
        assert_eq!((a - b).usd(), 6.0);
        assert_eq!((a * 3.0).usd(), 30.0);
        assert_eq!((3.0 * a).usd(), 30.0);
        assert_eq!((a / 2.0).usd(), 5.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-a).usd(), -10.0);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert!((a - a).is_zero());
        assert!((b - a).is_negative());
    }

    #[test]
    fn sum_over_iterator() {
        let parts = [1.0, 2.0, 3.5]
            .iter()
            .map(|&v| Money::from_usd(v).unwrap())
            .collect::<Vec<_>>();
        let total: Money = parts.iter().sum();
        assert_eq!(total.usd(), 6.5);
    }

    proptest! {
        #[test]
        fn amortize_then_multiply_recovers_total(usd in 0.0f64..1e12, q in 1u64..10_000_000) {
            let m = Money::from_usd(usd).unwrap();
            let per_unit = m.amortize(Quantity::new(q)).unwrap();
            let recovered = per_unit * q as f64;
            prop_assert!((recovered.usd() - usd).abs() <= usd.abs() * 1e-9 + 1e-6);
        }

        #[test]
        fn amortized_cost_decreases_with_quantity(usd in 1.0f64..1e12, q in 1u64..1_000_000) {
            let m = Money::from_usd(usd).unwrap();
            let small = m.amortize(Quantity::new(q)).unwrap();
            let large = m.amortize(Quantity::new(q * 10)).unwrap();
            prop_assert!(large < small);
        }
    }
}
