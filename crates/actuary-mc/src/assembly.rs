//! Simulated assembly flows: chip-last and chip-first production of whole
//! systems, spending real money at every step.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use actuary_arch::{ArchError, System};
use actuary_model::AssemblyFlow;
use actuary_tech::TechLibrary;
use actuary_units::Money;

use crate::factory::{DefectProcess, DieFactory};

/// Configuration of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// Number of *good* systems to produce (renewal cycles to sample).
    pub systems: u32,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// How die defects are drawn.
    pub defect_process: DefectProcess,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            systems: 1_000,
            seed: 0,
            defect_process: DefectProcess::Bernoulli,
        }
    }
}

/// Result of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McResult {
    mean_cost: Money,
    std_error: Money,
    systems_built: u32,
    dies_consumed: u64,
    interposers_consumed: u64,
    substrates_consumed: u64,
}

impl McResult {
    /// Empirical mean cost per good system.
    pub fn mean_cost(&self) -> Money {
        self.mean_cost
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> Money {
        self.std_error
    }

    /// Number of good systems produced.
    pub fn systems_built(&self) -> u32 {
        self.systems_built
    }

    /// Total die attempts consumed (including scrapped ones).
    pub fn dies_consumed(&self) -> u64 {
        self.dies_consumed
    }

    /// Total interposers consumed.
    pub fn interposers_consumed(&self) -> u64 {
        self.interposers_consumed
    }

    /// Total substrates consumed.
    pub fn substrates_consumed(&self) -> u64 {
        self.substrates_consumed
    }

    /// Whether `analytic` lies within `k` standard errors of the empirical
    /// mean (the agreement criterion used by the validation suite).
    pub fn agrees_with(&self, analytic: Money, k: f64) -> bool {
        (self.mean_cost.usd() - analytic.usd()).abs() <= k * self.std_error.usd().max(1e-12)
    }
}

impl fmt::Display for McResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ± {} per system over {} builds",
            self.mean_cost, self.std_error, self.systems_built
        )
    }
}

/// Simulates producing `cfg.systems` good systems and returns the empirical
/// cost statistics. The mean converges to the analytic
/// [`re_cost`](actuary_model::re_cost) of the same system.
///
/// # Errors
///
/// Returns [`ArchError::InvalidArchitecture`] for a zero-system config and
/// propagates technology/model errors.
pub fn simulate_system(
    system: &System,
    lib: &TechLibrary,
    flow: AssemblyFlow,
    cfg: &McConfig,
) -> Result<McResult, ArchError> {
    if cfg.systems == 0 {
        return Err(ArchError::InvalidArchitecture {
            reason: "monte-carlo run needs at least one system".to_string(),
        });
    }
    let packaging = lib.packaging(system.integration())?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // One factory per die group.
    let mut factories = Vec::new();
    let mut counts = Vec::new();
    for (chip, count) in system.chips() {
        let node = lib.node(chip.node().as_str())?;
        factories.push(DieFactory::new(
            node,
            chip.die_area(lib)?,
            cfg.defect_process,
        )?);
        counts.push(*count);
    }
    let n_total: u32 = counts.iter().sum();

    // Package material prices.
    let total_silicon = system.total_silicon(lib)?;
    let package_area = packaging.package_area(total_silicon)?;
    let substrate_cost = packaging.substrate_cost(package_area);
    let bond_cost = packaging.bond_cost_per_chip();
    let assembly_cost = packaging.assembly_cost();
    let (interposer_cost, y1) = match packaging.interposer() {
        Some(spec) => {
            let ia = spec.interposer_area(total_silicon)?;
            (spec.raw_cost(ia)?, spec.manufacturing_yield(ia).value())
        }
        None => (Money::ZERO, 1.0),
    };
    let y2 = packaging.chip_bond_yield().value();
    let y3 = packaging.substrate_attach_yield().value();
    let yt = packaging.package_test_yield().value();

    let mut cycle_costs: Vec<f64> = Vec::with_capacity(cfg.systems as usize);
    let mut interposers_used = 0u64;
    let mut substrates_used = 0u64;

    for _ in 0..cfg.systems {
        let mut spend = Money::ZERO;
        match flow {
            AssemblyFlow::ChipLast => {
                if packaging.interposer().is_some() {
                    // Outer loop: final test; middle: attach; inner: CoW.
                    'test: loop {
                        // Build one chip-on-wafer assembly.
                        'cow: loop {
                            // Screened interposer: draw until good.
                            loop {
                                spend += interposer_cost;
                                interposers_used += 1;
                                if rng.gen::<f64>() < y1 {
                                    break;
                                }
                            }
                            // Acquire KGDs and bond them one by one.
                            spend += assembly_cost;
                            let mut all_bonded = true;
                            for (f, &count) in factories.iter_mut().zip(&counts) {
                                for _ in 0..count {
                                    spend += f.draw_known_good_die(&mut rng);
                                    spend += bond_cost;
                                    if rng.gen::<f64>() >= y2 {
                                        all_bonded = false;
                                    }
                                }
                            }
                            if all_bonded {
                                break 'cow;
                            }
                            // CoW lost: interposer and dies scrapped; retry.
                        }
                        // Attach the assembled CoW to a substrate.
                        spend += substrate_cost;
                        substrates_used += 1;
                        if rng.gen::<f64>() >= y3 {
                            continue 'test; // everything lost
                        }
                        if rng.gen::<f64>() < yt {
                            break 'test;
                        }
                        // Failed final test: everything lost.
                    }
                } else {
                    // SoC / MCM: dies bond directly onto the substrate.
                    'mcm: loop {
                        spend += substrate_cost + assembly_cost;
                        substrates_used += 1;
                        let mut all_bonded = true;
                        for (f, &count) in factories.iter_mut().zip(&counts) {
                            for _ in 0..count {
                                spend += f.draw_known_good_die(&mut rng);
                                spend += bond_cost;
                                if rng.gen::<f64>() >= y2 {
                                    all_bonded = false;
                                }
                            }
                        }
                        if all_bonded && rng.gen::<f64>() < yt {
                            break 'mcm;
                        }
                    }
                }
            }
            AssemblyFlow::ChipFirst => {
                // The whole packaging chain happens after dies are
                // committed: one success draw per attempt.
                let chain = y1 * y2.powi(n_total as i32) * y3 * yt;
                loop {
                    for (f, &count) in factories.iter_mut().zip(&counts) {
                        for _ in 0..count {
                            spend += f.draw_known_good_die(&mut rng);
                        }
                    }
                    spend += substrate_cost
                        + interposer_cost
                        + assembly_cost
                        + bond_cost * n_total as f64;
                    substrates_used += 1;
                    if !interposer_cost.is_zero() {
                        interposers_used += 1;
                    }
                    if rng.gen::<f64>() < chain {
                        break;
                    }
                }
            }
        }
        cycle_costs.push(spend.usd());
    }

    let n = cycle_costs.len() as f64;
    let mean = cycle_costs.iter().sum::<f64>() / n;
    let var = cycle_costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
    let dies_consumed: u64 = factories.iter().map(|f| f.attempts()).sum();

    Ok(McResult {
        mean_cost: Money::from_usd(mean)?,
        std_error: Money::from_usd((var / n).sqrt())?,
        systems_built: cfg.systems,
        dies_consumed,
        interposers_consumed: interposers_used,
        substrates_consumed: substrates_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_arch::{Chip, Module};
    use actuary_model::re_cost;
    use actuary_model::DiePlacement;
    use actuary_tech::IntegrationKind;
    use actuary_units::{Area, Quantity};

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn two_chiplet_system(kind: IntegrationKind) -> System {
        let chiplet = Chip::chiplet(
            "c",
            "7nm",
            vec![Module::new("m", "7nm", Area::from_mm2(180.0).unwrap())],
        );
        System::builder("sys", kind)
            .chip(chiplet, 2)
            .quantity(Quantity::new(500_000))
            .build()
            .unwrap()
    }

    fn analytic_total(system: &System, lib: &TechLibrary, flow: AssemblyFlow) -> Money {
        let packaging = lib.packaging(system.integration()).unwrap();
        let mut placements = Vec::new();
        for (chip, count) in system.chips() {
            let node = lib.node(chip.node().as_str()).unwrap();
            placements.push(DiePlacement::new(node, chip.die_area(lib).unwrap(), *count));
        }
        re_cost(&placements, packaging, flow).unwrap().total()
    }

    #[test]
    fn mcm_chip_last_converges_to_analytic() {
        let lib = lib();
        let system = two_chiplet_system(IntegrationKind::Mcm);
        let cfg = McConfig {
            systems: 8_000,
            seed: 1,
            defect_process: DefectProcess::Bernoulli,
        };
        let result = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).unwrap();
        let analytic = analytic_total(&system, &lib, AssemblyFlow::ChipLast);
        assert!(
            result.agrees_with(analytic, 4.0),
            "MC {result} vs analytic {analytic}"
        );
    }

    #[test]
    fn interposer_chip_last_converges_to_analytic() {
        let lib = lib();
        let system = two_chiplet_system(IntegrationKind::TwoPointFiveD);
        let cfg = McConfig {
            systems: 8_000,
            seed: 2,
            defect_process: DefectProcess::Bernoulli,
        };
        let result = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).unwrap();
        let analytic = analytic_total(&system, &lib, AssemblyFlow::ChipLast);
        assert!(
            result.agrees_with(analytic, 4.0),
            "MC {result} vs analytic {analytic}"
        );
        assert!(result.interposers_consumed() >= result.systems_built() as u64);
    }

    #[test]
    fn chip_first_converges_to_analytic() {
        let lib = lib();
        let system = two_chiplet_system(IntegrationKind::TwoPointFiveD);
        let cfg = McConfig {
            systems: 8_000,
            seed: 3,
            defect_process: DefectProcess::Bernoulli,
        };
        let result = simulate_system(&system, &lib, AssemblyFlow::ChipFirst, &cfg).unwrap();
        let analytic = analytic_total(&system, &lib, AssemblyFlow::ChipFirst);
        assert!(
            result.agrees_with(analytic, 4.0),
            "MC {result} vs analytic {analytic}"
        );
    }

    #[test]
    fn compound_gamma_also_converges_in_mean() {
        let lib = lib();
        let system = two_chiplet_system(IntegrationKind::Mcm);
        let cfg = McConfig {
            systems: 8_000,
            seed: 4,
            defect_process: DefectProcess::CompoundGamma,
        };
        let result = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).unwrap();
        let analytic = analytic_total(&system, &lib, AssemblyFlow::ChipLast);
        // Clustered defects raise variance, so allow a wider band.
        assert!(
            result.agrees_with(analytic, 5.0),
            "MC {result} vs analytic {analytic}"
        );
    }

    #[test]
    fn zero_systems_rejected() {
        let lib = lib();
        let system = two_chiplet_system(IntegrationKind::Mcm);
        let cfg = McConfig {
            systems: 0,
            ..Default::default()
        };
        assert!(simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let lib = lib();
        let system = two_chiplet_system(IntegrationKind::Mcm);
        let cfg = McConfig {
            systems: 200,
            seed: 9,
            defect_process: DefectProcess::Bernoulli,
        };
        let a = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).unwrap();
        let b = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn resource_counters_are_plausible() {
        let lib = lib();
        let system = two_chiplet_system(IntegrationKind::Mcm);
        let cfg = McConfig {
            systems: 500,
            seed: 5,
            defect_process: DefectProcess::Bernoulli,
        };
        let r = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg).unwrap();
        // At least 2 dies per good system.
        assert!(r.dies_consumed() >= 1_000);
        assert!(r.substrates_consumed() >= 500);
        assert_eq!(r.interposers_consumed(), 0, "MCM has no interposer");
    }
}
