//! Monte-Carlo assembly-flow simulator for the *Chiplet Actuary* model.
//!
//! The paper's cost model is purely analytical (Eq. (2), (4), (5)). This
//! crate provides an independent, mechanistic check: it simulates the
//! physical production flow — wafers with clustered defects, wafer sort,
//! known-good-die inventory, per-chip bonding, interposer attach, final test
//! — and accumulates the actual money spent per good system. By the law of
//! large numbers the empirical mean converges to the analytical expected
//! cost, which the integration suite asserts.
//!
//! Defects can be drawn two ways ([`DefectProcess`]):
//!
//! * [`DefectProcess::Bernoulli`] — each die is good with the marginal
//!   probability of Eq. (1) (fast, exact in the mean);
//! * [`DefectProcess::CompoundGamma`] — the *derivation* of the
//!   negative-binomial model: each wafer draws a Gamma(c, 1/c) defect-rate
//!   multiplier and each die suffers Poisson(D·S·G) defects, which yields
//!   Eq. (1) exactly in distribution and reproduces wafer-to-wafer
//!   clustering.
//!
//! # Examples
//!
//! ```
//! use actuary_arch::{Chip, Module, System};
//! use actuary_mc::{simulate_system, DefectProcess, McConfig};
//! use actuary_model::AssemblyFlow;
//! use actuary_tech::{IntegrationKind, TechLibrary};
//! use actuary_units::{Area, Quantity};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let chiplet = Chip::chiplet(
//!     "c",
//!     "7nm",
//!     vec![Module::new("m", "7nm", Area::from_mm2(180.0)?)],
//! );
//! let system = System::builder("2x", IntegrationKind::Mcm)
//!     .chip(chiplet, 2)
//!     .quantity(Quantity::new(500_000))
//!     .build()?;
//! let cfg = McConfig { systems: 500, seed: 7, defect_process: DefectProcess::Bernoulli };
//! let result = simulate_system(&system, &lib, AssemblyFlow::ChipLast, &cfg)?;
//! assert!(result.mean_cost().usd() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assembly;
mod factory;
pub mod sampling;
mod wafermap;

pub use assembly::{simulate_system, McConfig, McResult};
pub use factory::{DefectProcess, DieFactory};
pub use wafermap::{DieSite, WaferMap};
