//! ASCII wafer maps: a visual rendering of the simulated defect process.
//!
//! Under the compound Gamma-Poisson process ([`DefectProcess::CompoundGamma`])
//! defects cluster — some wafers are nearly clean, others are riddled. A
//! wafer map makes that visible and gives the tests something mechanical to
//! assert: the per-wafer good-die variance must exceed the independent
//! (Bernoulli) case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use actuary_model::ModelError;
use actuary_tech::ProcessNode;
use actuary_units::Area;
use actuary_yield::DieFootprint;

use crate::factory::DefectProcess;
use crate::sampling::{gamma, poisson};

/// One die site on the wafer map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DieSite {
    /// Off the usable wafer (edge or outside the disc).
    Edge,
    /// A die that passed wafer sort.
    Good,
    /// A die with at least one killer defect.
    Bad,
}

/// A simulated wafer: the rectangular grid of die sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaferMap {
    columns: usize,
    rows: usize,
    sites: Vec<DieSite>,
    defect_multiplier: f64,
}

impl WaferMap {
    /// Simulates one wafer of dies of `die_area` on `node`, drawing defects
    /// per `process`. Deterministic for a given `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Yield`] if the die does not fit the wafer.
    pub fn simulate(
        node: &ProcessNode,
        die_area: Area,
        process: DefectProcess,
        seed: u64,
    ) -> Result<WaferMap, ModelError> {
        let footprint = DieFootprint::square_of_area(die_area)?;
        let wafer = node.wafer();
        let radius = wafer.usable_diameter_mm() / 2.0;
        let pitch_x = footprint.width_mm() + wafer.scribe_lane_mm();
        let pitch_y = footprint.height_mm() + wafer.scribe_lane_mm();
        if footprint.width_mm() * std::f64::consts::SQRT_2 > wafer.usable_diameter_mm() {
            // Reuse the geometry error path for impossible dies.
            wafer.dies_per_wafer(die_area)?;
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let lambda = node.defect_density().expected_defects(die_area);
        let multiplier = match process {
            DefectProcess::Bernoulli => 1.0,
            DefectProcess::CompoundGamma => gamma(&mut rng, node.cluster()) / node.cluster(),
        };
        let marginal = node.die_yield(die_area).value();

        let half_cols = (radius / pitch_x).ceil() as i64;
        let half_rows = (radius / pitch_y).ceil() as i64;
        let columns = (2 * half_cols) as usize;
        let rows = (2 * half_rows) as usize;
        let r2 = radius * radius;
        let mut sites = Vec::with_capacity(columns * rows);
        for j in -half_rows..half_rows {
            let y1 = j as f64 * pitch_y;
            let y2 = y1 + footprint.height_mm();
            let y_extent = y1.abs().max(y2.abs());
            for i in -half_cols..half_cols {
                let x1 = i as f64 * pitch_x;
                let x2 = x1 + footprint.width_mm();
                let x_extent = x1.abs().max(x2.abs());
                if x_extent * x_extent + y_extent * y_extent > r2 {
                    sites.push(DieSite::Edge);
                    continue;
                }
                let good = match process {
                    DefectProcess::Bernoulli => rng.gen::<f64>() < marginal,
                    DefectProcess::CompoundGamma => poisson(&mut rng, lambda * multiplier) == 0,
                };
                sites.push(if good { DieSite::Good } else { DieSite::Bad });
            }
        }
        Ok(WaferMap {
            columns,
            rows,
            sites,
            defect_multiplier: multiplier,
        })
    }

    /// Grid width in dies.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Grid height in dies.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The site at `(column, row)`, or `None` out of range.
    pub fn site(&self, column: usize, row: usize) -> Option<DieSite> {
        if column < self.columns && row < self.rows {
            Some(self.sites[row * self.columns + column])
        } else {
            None
        }
    }

    /// Number of placed dies (non-edge sites).
    pub fn dies(&self) -> usize {
        self.sites.iter().filter(|s| **s != DieSite::Edge).count()
    }

    /// Number of good dies.
    pub fn good_dies(&self) -> usize {
        self.sites.iter().filter(|s| **s == DieSite::Good).count()
    }

    /// Wafer-level yield: good / placed.
    pub fn wafer_yield(&self) -> f64 {
        let dies = self.dies();
        if dies == 0 {
            0.0
        } else {
            self.good_dies() as f64 / dies as f64
        }
    }

    /// The wafer's Gamma defect-rate multiplier (1.0 under Bernoulli).
    pub fn defect_multiplier(&self) -> f64 {
        self.defect_multiplier
    }

    /// Renders the map: `.` good, `X` bad, space off-wafer.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.columns + 1) * self.rows + 64);
        for row in 0..self.rows {
            for col in 0..self.columns {
                out.push(match self.sites[row * self.columns + col] {
                    DieSite::Edge => ' ',
                    DieSite::Good => '.',
                    DieSite::Bad => 'X',
                });
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "{} dies, {} good ({:.1}% wafer yield)\n",
            self.dies(),
            self.good_dies(),
            self.wafer_yield() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_tech::TechLibrary;

    fn node() -> actuary_tech::ProcessNode {
        TechLibrary::paper_defaults()
            .unwrap()
            .node("7nm")
            .unwrap()
            .clone()
    }

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    #[test]
    fn map_die_count_close_to_analytic() {
        let n = node();
        let map = WaferMap::simulate(&n, area(100.0), DefectProcess::Bernoulli, 1).unwrap();
        let analytic = n.wafer().dies_per_wafer(area(100.0)).unwrap();
        let ratio = map.dies() as f64 / analytic;
        assert!(
            (0.85..=1.1).contains(&ratio),
            "map {} vs analytic {analytic} ({ratio})",
            map.dies()
        );
    }

    #[test]
    fn map_yield_close_to_marginal() {
        let n = node();
        // Average many wafers so the estimate is tight.
        let mut good = 0usize;
        let mut total = 0usize;
        for seed in 0..30 {
            let map = WaferMap::simulate(&n, area(200.0), DefectProcess::Bernoulli, seed).unwrap();
            good += map.good_dies();
            total += map.dies();
        }
        let empirical = good as f64 / total as f64;
        let marginal = n.die_yield(area(200.0)).value();
        assert!(
            (empirical - marginal).abs() < 0.02,
            "empirical {empirical} vs marginal {marginal}"
        );
    }

    #[test]
    fn clustered_wafers_vary_more() {
        let n = node();
        let yields = |process: DefectProcess| -> Vec<f64> {
            (0..60)
                .map(|seed| {
                    WaferMap::simulate(&n, area(300.0), process, seed)
                        .unwrap()
                        .wafer_yield()
                })
                .collect()
        };
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let v_bernoulli = var(&yields(DefectProcess::Bernoulli));
        let v_clustered = var(&yields(DefectProcess::CompoundGamma));
        assert!(
            v_clustered > 3.0 * v_bernoulli,
            "clustering must dominate wafer-to-wafer variance: {v_clustered} vs {v_bernoulli}"
        );
    }

    #[test]
    fn render_shape() {
        let n = node();
        let map = WaferMap::simulate(&n, area(400.0), DefectProcess::Bernoulli, 7).unwrap();
        let text = map.render();
        assert!(text.contains('.'));
        assert!(text.contains("wafer yield"));
        assert_eq!(text.lines().count(), map.rows() + 1);
    }

    #[test]
    fn site_accessor_bounds() {
        let n = node();
        let map = WaferMap::simulate(&n, area(400.0), DefectProcess::Bernoulli, 7).unwrap();
        assert!(map.site(0, 0).is_some());
        assert!(map.site(map.columns(), 0).is_none());
        assert!(map.site(0, map.rows()).is_none());
        // Corners of the square grid lie outside the disc.
        assert_eq!(map.site(0, 0), Some(DieSite::Edge));
    }

    #[test]
    fn determinism() {
        let n = node();
        let a = WaferMap::simulate(&n, area(250.0), DefectProcess::CompoundGamma, 5).unwrap();
        let b = WaferMap::simulate(&n, area(250.0), DefectProcess::CompoundGamma, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_die_rejected() {
        let n = node();
        assert!(WaferMap::simulate(&n, area(80_000.0), DefectProcess::Bernoulli, 1).is_err());
    }
}
