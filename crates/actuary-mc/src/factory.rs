//! Simulated die production: wafers, defects, wafer sort.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use actuary_model::ModelError;
use actuary_tech::ProcessNode;
use actuary_units::{Area, Money};

use crate::sampling::{gamma, poisson};

/// How the simulator draws die defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DefectProcess {
    /// Each die is independently good with the marginal negative-binomial
    /// yield of Eq. (1). Fast; exact in the mean.
    #[default]
    Bernoulli,
    /// The compound process that *derives* Eq. (1): each wafer draws a
    /// Gamma(c, 1/c) defect-rate multiplier `G`, and each die on it suffers
    /// Poisson(D·S·G) defects. Same marginal yield, but reproduces
    /// wafer-to-wafer clustering (higher variance).
    CompoundGamma,
}

impl fmt::Display for DefectProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectProcess::Bernoulli => f.write_str("bernoulli"),
            DefectProcess::CompoundGamma => f.write_str("compound gamma-poisson"),
        }
    }
}

/// A simulated production line for one die design: draws dies wafer by
/// wafer, spends wafer money, and reports known-good dies.
///
/// The cost per die attempt is `wafer price / analytic dies-per-wafer`, so
/// the simulated expected cost per KGD converges exactly to the analytic
/// `raw / yield`.
#[derive(Debug, Clone)]
pub struct DieFactory {
    cost_per_attempt: Money,
    marginal_yield: f64,
    lambda: f64,
    cluster: f64,
    process: DefectProcess,
    dies_per_wafer: u32,
    dies_left_in_wafer: u32,
    wafer_multiplier: f64,
    attempts: u64,
    good: u64,
}

impl DieFactory {
    /// Creates a factory for dies of `area` on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Yield`] if the die does not fit the node's
    /// wafer, or [`ModelError::ZeroYield`] if the marginal yield is zero.
    pub fn new(node: &ProcessNode, area: Area, process: DefectProcess) -> Result<Self, ModelError> {
        let dpw = node.wafer().dies_per_wafer(area)?;
        let cost_per_attempt = node.raw_die_cost(area)?;
        let marginal_yield = node.die_yield(area);
        if marginal_yield.is_zero() {
            return Err(ModelError::ZeroYield {
                step: "die manufacturing",
            });
        }
        Ok(DieFactory {
            cost_per_attempt,
            marginal_yield: marginal_yield.value(),
            lambda: node.defect_density().expected_defects(area),
            cluster: node.cluster(),
            process,
            dies_per_wafer: dpw.floor().max(1.0) as u32,
            dies_left_in_wafer: 0,
            wafer_multiplier: 1.0,
            attempts: 0,
            good: 0,
        })
    }

    /// Money spent per die attempt (good or bad).
    pub fn cost_per_attempt(&self) -> Money {
        self.cost_per_attempt
    }

    /// The marginal per-die yield (Eq. (1)).
    pub fn marginal_yield(&self) -> f64 {
        self.marginal_yield
    }

    /// Total die attempts so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Total good dies produced so far.
    pub fn good_dies(&self) -> u64 {
        self.good
    }

    /// Draws one die; returns `true` if it passes wafer sort.
    pub fn draw_die<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.attempts += 1;
        let good = match self.process {
            DefectProcess::Bernoulli => rng.gen::<f64>() < self.marginal_yield,
            DefectProcess::CompoundGamma => {
                if self.dies_left_in_wafer == 0 {
                    // Start a new wafer: draw its defect-rate multiplier.
                    self.wafer_multiplier = gamma(rng, self.cluster) / self.cluster;
                    self.dies_left_in_wafer = self.dies_per_wafer;
                }
                self.dies_left_in_wafer -= 1;
                poisson(rng, self.lambda * self.wafer_multiplier) == 0
            }
        };
        if good {
            self.good += 1;
        }
        good
    }

    /// Draws dies until one passes wafer sort; returns the money spent.
    pub fn draw_known_good_die<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Money {
        let mut spend = Money::ZERO;
        loop {
            spend += self.cost_per_attempt;
            if self.draw_die(rng) {
                return spend;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_tech::TechLibrary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn factory(process: DefectProcess) -> DieFactory {
        let lib = TechLibrary::paper_defaults().unwrap();
        let n5 = lib.node("5nm").unwrap();
        DieFactory::new(n5, Area::from_mm2(400.0).unwrap(), process).unwrap()
    }

    #[test]
    fn bernoulli_yield_converges_to_marginal() {
        let mut f = factory(DefectProcess::Bernoulli);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100_000 {
            f.draw_die(&mut rng);
        }
        let empirical = f.good_dies() as f64 / f.attempts() as f64;
        assert!(
            (empirical - f.marginal_yield()).abs() < 0.005,
            "empirical {empirical} vs marginal {}",
            f.marginal_yield()
        );
    }

    #[test]
    fn compound_gamma_matches_marginal_yield_too() {
        let mut f = factory(DefectProcess::CompoundGamma);
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..200_000 {
            f.draw_die(&mut rng);
        }
        let empirical = f.good_dies() as f64 / f.attempts() as f64;
        assert!(
            (empirical - f.marginal_yield()).abs() < 0.01,
            "empirical {empirical} vs marginal {}",
            f.marginal_yield()
        );
    }

    #[test]
    fn kgd_cost_converges_to_analytic() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let n5 = lib.node("5nm").unwrap();
        let area = Area::from_mm2(400.0).unwrap();
        let mut f = DieFactory::new(n5, area, DefectProcess::Bernoulli).unwrap();
        let mut rng = StdRng::seed_from_u64(44);
        let trials = 20_000;
        let mut total = Money::ZERO;
        for _ in 0..trials {
            total += f.draw_known_good_die(&mut rng);
        }
        let empirical = total / trials as f64;
        let analytic = n5.yielded_die_cost(area).unwrap();
        let rel = (empirical.usd() - analytic.usd()).abs() / analytic.usd();
        assert!(
            rel < 0.02,
            "empirical {empirical} vs analytic {analytic} ({rel})"
        );
    }

    #[test]
    fn compound_mode_has_wafer_correlation() {
        // Within a wafer, die outcomes share the gamma multiplier; the
        // variance of per-wafer good counts must exceed the Bernoulli case.
        let mut fb = factory(DefectProcess::Bernoulli);
        let mut fc = factory(DefectProcess::CompoundGamma);
        let wafer_size = fb.dies_per_wafer as usize;
        let mut rng = StdRng::seed_from_u64(45);
        let wafer_goods = |f: &mut DieFactory, rng: &mut StdRng| -> Vec<f64> {
            (0..400)
                .map(|_| (0..wafer_size).filter(|_| f.draw_die(rng)).count() as f64)
                .collect()
        };
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let vb = var(&wafer_goods(&mut fb, &mut rng));
        let vc = var(&wafer_goods(&mut fc, &mut rng));
        assert!(
            vc > 1.5 * vb,
            "clustered variance {vc} must exceed bernoulli {vb}"
        );
    }

    #[test]
    fn oversized_die_rejected() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let n5 = lib.node("5nm").unwrap();
        let huge = Area::from_mm2(80_000.0).unwrap();
        assert!(DieFactory::new(n5, huge, DefectProcess::Bernoulli).is_err());
    }
}
