//! Random-variate sampling primitives.
//!
//! The simulator needs Gamma and Poisson variates; the sanctioned `rand`
//! crate ships only uniform sources, so the classical algorithms are
//! implemented here: Box-Muller for normals, Marsaglia-Tsang for Gamma, and
//! Knuth's product method (with a normal approximation for large rates) for
//! Poisson.

use rand::Rng;

/// Draws a standard normal variate via the Box-Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = actuary_mc::sampling::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a Gamma(shape, scale = 1) variate with the Marsaglia-Tsang
/// squeeze method; shapes below 1 use the standard boosting identity.
///
/// # Panics
///
/// Panics if `shape` is not finite and positive.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive, got {shape}"
    );
    if shape < 1.0 {
        // Boost: G(a) = G(a+1) · U^(1/a). For tiny shapes U^(1/a) can
        // underflow to exactly 0.0 (a = 0.001 sends any U < ~0.49 below
        // the subnormal range), so clamp to the smallest positive double:
        // a Gamma variate is strictly positive with probability one.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return (gamma(rng, shape + 1.0) * u.powf(1.0 / shape)).max(f64::MIN_POSITIVE);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Draws a Poisson(lambda) variate. Uses Knuth's product method for small
/// rates and a clamped normal approximation above 30.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson rate must be non-negative, got {lambda}"
    );
    // lint:allow(determinism): a zero rate is the exact degenerate case, not a tolerance question
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let z = standard_normal(rng);
        let value = lambda + lambda.sqrt() * z + 0.5;
        return value.max(0.0) as u64;
    }
    let threshold = (-lambda).exp();
    let mut count = 0u64;
    let mut product: f64 = rng.gen();
    while product > threshold {
        count += 1;
        product *= rng.gen::<f64>();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 200_000;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..N).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / N as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn gamma_moments() {
        for shape in [0.5, 1.0, 3.0, 10.0] {
            let mut r = rng();
            let samples: Vec<f64> = (0..N).map(|_| gamma(&mut r, shape)).collect();
            let mean = samples.iter().sum::<f64>() / N as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
            // Gamma(shape, 1): mean = shape, variance = shape.
            assert!(
                (mean - shape).abs() < 0.05 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
            assert!(
                (var - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape}: var {var}"
            );
            assert!(samples.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn poisson_moments_small_rate() {
        for lambda in [0.1, 1.0, 5.0] {
            let mut r = rng();
            let samples: Vec<u64> = (0..N).map(|_| poisson(&mut r, lambda)).collect();
            let mean = samples.iter().sum::<u64>() as f64 / N as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "λ={lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_large_rate_uses_normal_branch() {
        let mut r = rng();
        let samples: Vec<u64> = (0..N / 10).map(|_| poisson(&mut r, 100.0)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / (N / 10) as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_mean_is_continuous_across_the_branch_boundary() {
        // λ = 29.5 runs Knuth's product method, λ = 30.5 the clamped normal
        // approximation; both must land on their rate to the same relative
        // tolerance, otherwise the λ = 30 switchover would put a kink in
        // every defect-count statistic that straddles it.
        for lambda in [29.5, 30.5] {
            let mut r = rng();
            let n = N / 4;
            let mean = (0..n).map(|_| poisson(&mut r, lambda)).sum::<u64>() as f64 / n as f64;
            // Standard error of the mean is sqrt(λ/n) ≈ 0.025; 0.2 is 8σ.
            assert!(
                (mean - lambda).abs() < 0.2,
                "λ={lambda}: mean {mean} drifted across the branch boundary"
            );
        }
    }

    #[test]
    fn compound_gamma_poisson_reproduces_negative_binomial_yield() {
        // The derivation behind Eq. (1): P(Poisson(λG) = 0) with
        // G ~ Gamma(c, 1/c) equals (1 + λ/c)^(−c).
        let lambda = 0.8; // D·S for e.g. D=0.1, S=800 mm²
        let c = 10.0;
        let mut r = rng();
        let mut good = 0usize;
        for _ in 0..N {
            let g = gamma(&mut r, c) / c;
            if poisson(&mut r, lambda * g) == 0 {
                good += 1;
            }
        }
        let empirical = good as f64 / N as f64;
        let analytic = (1.0 + lambda / c).powf(-c);
        assert!(
            (empirical - analytic).abs() < 0.005,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_bad_shape() {
        let mut r = rng();
        gamma(&mut r, 0.0);
    }

    proptest::proptest! {
        /// Regression: for tiny shapes the boost `G(a+1) · U^(1/a)` can
        /// underflow `U^(1/a)` to exactly 0.0 (e.g. a = 0.001 turns any
        /// U < ~0.49 into a subnormal-then-zero power), and a zero Gamma
        /// variate poisons every downstream compound draw.
        #[test]
        fn gamma_is_strictly_positive_for_sub_unit_shapes(
            shape in 0.001f64..1.0,
            seed in 0u64..u64::MAX,
        ) {
            let mut r = StdRng::seed_from_u64(seed);
            for _ in 0..8 {
                let x = gamma(&mut r, shape);
                proptest::prop_assert!(
                    x > 0.0,
                    "gamma(shape={shape}) returned {x}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "poisson rate must be non-negative")]
    fn poisson_rejects_negative_rate() {
        let mut r = rng();
        poisson(&mut r, -1.0);
    }
}
