//! Offline stand-in for the `signal-hook` crate (the 0.3 `flag` subset).
//!
//! [`flag::register`] arranges for an `Arc<AtomicBool>` to flip to `true`
//! when a POSIX signal arrives — the pattern `actuary serve` uses for
//! graceful shutdown: register the flag for `SIGTERM`/`SIGINT`, poll it
//! from the accept loop, drain in-flight requests, exit.
//!
//! This is the one crate in the workspace allowed to use `unsafe`
//! (everything else is under `unsafe_code = "deny"`): installing a C
//! signal handler has no safe `std` surface. The unsafety is confined to
//! two audited spots — the `signal(2)` FFI call and the handler's store
//! through a leaked `Arc` pointer — and the handler body is
//! async-signal-safe by construction: it performs exactly one atomic load
//! and one atomic store, touching no allocator, lock or libc state.
//!
//! On non-POSIX targets registration succeeds and the flag simply never
//! flips, matching the no-signals reality there.

/// Signal numbers (the Linux/BSD values, which agree for these two).
pub mod consts {
    /// Termination request (`kill <pid>`, the orchestrator default).
    pub const SIGTERM: i32 = 15;
    /// Interactive interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
}

/// Opaque handle naming one successful registration. The real crate can
/// unregister through it; this subset only reports what was registered
/// (handlers live for the rest of the process).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigId {
    signal: i32,
}

impl SigId {
    /// The signal this registration responds to.
    #[must_use]
    pub fn signal(self) -> i32 {
        self.signal
    }
}

/// Signal-to-flag wiring.
pub mod flag {
    use std::io;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Registers `flag` to be set to `true` whenever `signal` is
    /// delivered. May be called multiple times (later flags replace
    /// earlier ones for the same signal); each call leaks one strong
    /// count of the `Arc`, since the handler may fire at any point for
    /// the rest of the process.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for signal numbers outside the
    /// supported range, or the OS error when the handler cannot be
    /// installed.
    pub fn register(signal: i32, flag: Arc<AtomicBool>) -> io::Result<super::SigId> {
        super::imp::register(signal, flag)
    }
}

#[cfg(unix)]
mod imp {
    use std::io;
    use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
    use std::sync::Arc;

    /// One slot per signal number we could ever be asked to watch.
    const MAX_SIGNAL: usize = 64;

    #[allow(clippy::declare_interior_mutable_const)] // array-init template
    const EMPTY: AtomicPtr<AtomicBool> = AtomicPtr::new(std::ptr::null_mut());
    static FLAGS: [AtomicPtr<AtomicBool>; MAX_SIGNAL] = [EMPTY; MAX_SIGNAL];

    // `sighandler_t signal(int, sighandler_t)`; `SIG_ERR` is `-1`.
    // Handler pointers travel as `usize`, which matches the platform
    // representation of `sighandler_t` on every Unix Rust target.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIG_ERR: usize = usize::MAX;

    /// The installed C handler. Async-signal-safe: one atomic load, one
    /// atomic store, nothing else.
    extern "C" fn handle(signum: i32) {
        let Ok(idx) = usize::try_from(signum) else {
            return;
        };
        if let Some(slot) = FLAGS.get(idx) {
            let ptr = slot.load(Ordering::SeqCst);
            if !ptr.is_null() {
                // SAFETY: the pointer came from `Arc::into_raw` in
                // `register` and is intentionally leaked, so it stays
                // valid for the process lifetime.
                unsafe { (*ptr).store(true, Ordering::SeqCst) };
            }
        }
    }

    pub fn register(signum: i32, flag: Arc<AtomicBool>) -> io::Result<super::SigId> {
        let idx = usize::try_from(signum).unwrap_or(MAX_SIGNAL);
        if idx == 0 || idx >= MAX_SIGNAL {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("signal {signum} is outside the supported range 1..{MAX_SIGNAL}"),
            ));
        }
        // Leak one strong count; see `flag::register`'s contract.
        let raw = Arc::into_raw(flag).cast_mut();
        let previous = FLAGS[idx].swap(raw, Ordering::SeqCst);
        if previous.is_null() {
            // First registration for this signal: install the C handler.
            let handler: extern "C" fn(i32) = handle;
            // SAFETY: `handle` is async-signal-safe (see its docs), and
            // replacing the disposition of a regular termination signal
            // has no other process-wide effects.
            let installed = unsafe { signal(signum, handler as *const () as usize) };
            if installed == SIG_ERR {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(super::SigId { signal: signum })
    }
}

#[cfg(not(unix))]
mod imp {
    use std::io;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    pub fn register(signum: i32, flag: Arc<AtomicBool>) -> io::Result<super::SigId> {
        // No signals on this target: accept the registration, never fire.
        let _ = flag;
        Ok(super::SigId { signal: signum })
    }
}

#[cfg(all(test, unix))]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn rejects_out_of_range_signals() {
        for bad in [0, -1, 64, 1000] {
            let err = super::flag::register(bad, Arc::new(AtomicBool::new(false))).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{bad}");
        }
    }

    #[test]
    fn registered_flag_flips_on_raise() {
        // SIGUSR1 (10 on Linux, 30 on mac) — use SIGURG (23/16)? Signal
        // numbers differ across Unixes; SIGTERM is universal but fatal if
        // the handler were not installed. The registration installs the
        // handler before we raise, and the test process raises at itself
        // via `kill`, so SIGTERM is safe and portable here.
        let flag = Arc::new(AtomicBool::new(false));
        super::flag::register(super::consts::SIGTERM, Arc::clone(&flag)).unwrap();
        assert!(!flag.load(Ordering::SeqCst));
        let status = std::process::Command::new("kill")
            .arg("-TERM")
            .arg(std::process::id().to_string())
            .status()
            .expect("kill(1) exists on unix");
        assert!(status.success());
        // Delivery is asynchronous; give it a moment.
        for _ in 0..200 {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("SIGTERM never flipped the flag");
    }
}
