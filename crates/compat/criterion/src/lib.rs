//! Offline stand-in for the `criterion` benchmark harness (0.5 API subset).
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the surface its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size` and `finish`),
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a simple wall-clock median over a fixed number of
//! samples — adequate for smoke-running benches and catching order-of-
//! magnitude regressions, without criterion's statistics or plotting.
//!
//! Like real criterion, a `--quick` argument (`cargo bench -- --quick`)
//! trades statistical resolution for speed: the sample count drops to 2,
//! which is what CI uses to smoke-run the heavy exploration benches.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point handed to every bench target (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's `--quick` CLI switch (benches are built with
        // `harness = false`, so the arguments reach us untouched). Any
        // other argument is ignored, as the shim has no filter support.
        let quick = std::env::args().any(|a| a == "--quick");
        Self {
            sample_size: if quick { 2 } else { 20 },
            quick,
        }
    }
}

impl Criterion {
    /// Times `f` under `id` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            quick: self.quick,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for subsequent benches
    /// (capped at 2 under `--quick`, like criterion's quick mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if self.quick { n.clamp(1, 2) } else { n.max(1) };
        self
    }

    /// Times `f` under `group/id` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Timing loop handle passed to the bench closure (mirrors
/// `criterion::Bencher`).
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records wall-clock samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: aim for samples of roughly 1 ms, capped for slow bodies.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;

        for _ in 0..self.sample_count.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
        sample_count: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{id:<40} time: [{} {} {}]",
        format_ns(lo),
        format_ns(median),
        format_ns(hi)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles bench functions into a runnable group (mirrors
/// `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the listed groups (mirrors
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(2) * 2));
        group.finish();
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with("s"));
    }
}
