//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the subset of the proptest API its tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * range strategies (`0usize..4`, `30.0f64..700.0`, `0.0f64..=1.0`, …),
//! * tuple strategies, [`bool::ANY`], and [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from real proptest, by design: inputs are drawn from a
//! deterministic fixed-seed RNG (every run explores the same cases, so CI
//! is reproducible) and failing cases are **not shrunk** — the failure
//! message reports the case number so it can be replayed by re-running the
//! test. The default number of cases is 64 (real proptest: 256) to keep
//! `cargo test` fast; override per-block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.

pub mod test_runner {
    //! Case outcome types and the run configuration.

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// The case was rejected by `prop_assume!`; try another input.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property with an explanatory message.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        /// A rejected (skipped) case.
        pub fn reject(reason: impl Into<String>) -> Self {
            Self::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(reason) => write!(f, "property failed: {reason}"),
                Self::Reject(reason) => write!(f, "input rejected: {reason}"),
            }
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Configuration for one `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases each test must pass.
        pub cases: u32,
        /// Hard ceiling on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type (sampling only — the
    /// shim does not shrink).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Scalars that can be drawn uniformly from a half-open or closed
    /// range (backing `lo..hi` and `lo..=hi` strategies).
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
        fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut StdRng) -> Self {
                    let lo_w = lo as i128;
                    let hi_w = hi as i128;
                    let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                    assert!(span > 0, "empty integer range {lo}..{hi}");
                    let draw = (rng.gen::<u64>() as i128).rem_euclid(span);
                    (lo_w + draw) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut StdRng) -> Self {
                    assert!(lo < hi || (inclusive && lo <= hi), "empty float range {lo}..{hi}");
                    // A plain uniform draw lands exactly on an endpoint with
                    // probability ~0, so bias toward them (real proptest does
                    // the same): without this, `lo..=hi` would advertise
                    // endpoint coverage that never materializes.
                    let bias = rng.gen::<f64>();
                    if bias < 1.0 / 32.0 {
                        return lo;
                    }
                    if inclusive && bias < 2.0 / 32.0 {
                        return hi;
                    }
                    let unit = rng.gen::<f64>() as $t;
                    let x = lo + unit * (hi - lo);
                    if !inclusive && x >= hi { lo } else { x.min(hi) }
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32, f64);

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::sample_uniform(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::sample_uniform(*self.start(), *self.end(), true, rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_strategy_tuple!(A);
    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);
    impl_strategy_tuple!(A, B, C, D, E);
    impl_strategy_tuple!(A, B, C, D, E, F);

    /// Always produces a clone of the given value (mirrors
    /// `proptest::strategy::Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{SampleUniform, Strategy};
    use rand::rngs::StdRng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from a half-open range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `size`, then that many
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = usize::sample_uniform(self.size.start, self.size.end, false, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports a `proptest!` test module needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub mod __runtime {
    //! Support code the macros expand to; not part of the public API.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Fixed base seed: every run explores the same deterministic cases.
    pub const BASE_SEED: u64 = 0xC0FF_EE00_D00D;

    /// Derives the per-case RNG seed from the test name and case index.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case index.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^ BASE_SEED.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while accepted < config.cases {
                let mut rng = <$crate::__runtime::StdRng as $crate::__runtime::SeedableRng>::seed_from_u64(
                    $crate::__runtime::case_seed(stringify!($name), case),
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                )+
                let outcome = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest `{}`: too many inputs rejected by prop_assume! \
                             ({rejected} rejects for {accepted} accepted cases)",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!(
                            "proptest `{}` failed at case {case} (deterministic seed): {reason}",
                            stringify!($name),
                        );
                    }
                }
                case += 1;
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a property inside `proptest!`; on failure the current case
/// fails with the formatted message (no panic unwinding mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!` with a `{:?}`-formatted report.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside `proptest!` with a `{:?}`-formatted report.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case when its generated inputs are out of scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 10.0f64..20.0,
            n in 1u32..5,
            i in 0usize..3,
        ) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(i < 3);
        }

        #[test]
        fn inclusive_ranges_cover_the_top(p in 0.0f64..=1.0) {
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn vec_strategy_respects_size_and_element_ranges(
            xs in crate::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..50),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            for (a, b) in &xs {
                prop_assert!((0.0..100.0).contains(a));
                prop_assert!((0.0..100.0).contains(b));
            }
        }

        #[test]
        fn assume_rejects_without_failing(k in 0u32..10) {
            prop_assume!(k % 2 == 0);
            prop_assert_eq!(k % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// The custom case budget really applies: k stays in range for
        /// every generated case.
        #[test]
        fn config_override_applies(k in 0usize..3) {
            prop_assert!(k < 3);
        }
    }

    #[test]
    fn inclusive_float_ranges_produce_both_endpoints() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(9);
        let strategy = 0.0f64..=1.0;
        let draws: Vec<f64> = (0..1000).map(|_| strategy.sample(&mut rng)).collect();
        assert!(draws.contains(&0.0), "lo endpoint never drawn");
        assert!(draws.contains(&1.0), "hi endpoint never drawn");
        assert!(draws.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn half_open_float_ranges_exclude_the_top() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(10);
        let strategy = 0.0f64..1.0;
        assert!((0..1000)
            .map(|_| strategy.sample(&mut rng))
            .all(|x| x < 1.0));
    }

    #[test]
    fn bool_any_produces_both_values() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(5);
        let draws: Vec<bool> = (0..64).map(|_| crate::bool::ANY.sample(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }

    #[test]
    fn case_seed_differs_across_names_and_cases() {
        let a = crate::__runtime::case_seed("a", 0);
        let b = crate::__runtime::case_seed("b", 0);
        let a1 = crate::__runtime::case_seed("a", 1);
        assert_ne!(a, b);
        assert_ne!(a, a1);
    }
}
