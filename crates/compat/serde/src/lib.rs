//! Offline stand-in for `serde`.
//!
//! This build environment has no registry access, so the workspace vendors
//! the minimal surface it uses: the `Serialize` / `Deserialize` trait names
//! and (behind the `derive` feature) the no-op derive macros from the
//! sibling `serde_derive` shim. Types in the workspace derive these traits
//! to mark themselves serialization-ready; nothing calls a serde runtime,
//! so no data-model machinery is vendored. Point the workspace dependency
//! back at crates.io to restore the real implementation unchanged.

/// Marker trait mirroring `serde::Serialize` (no runtime machinery).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no runtime machinery).
pub trait Deserialize<'de>: Sized {}

// Like real serde with the `derive` feature: re-export the derive macros
// under the same names as the traits (macro and trait namespaces coexist).
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
