//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors exactly the surface its Monte-Carlo code uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()` (and a few other primitives),
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], implemented as xoshiro256++ (Blackman & Vigna) with
//!   SplitMix64 seeding — a high-quality, fast generator whose `f64` output
//!   is uniform in `[0, 1)` with full 53-bit mantissa resolution.
//!
//! The streams differ from upstream `StdRng` (which is ChaCha12), so fixed
//! seeds reproduce *within* this workspace, not against upstream rand.

/// Low-level source of random 64-bit words (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the stand-in
/// for rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// High-level sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value of `T` from the uniform/standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12);
    /// seeded runs reproduce within this workspace only.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mean_of_uniform_samples_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 1.0);
    }
}
