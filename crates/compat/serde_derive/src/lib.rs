//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The real registry is unreachable in this build environment, so the
//! workspace vendors the exact macro surface it uses: `#[derive(Serialize,
//! Deserialize)]` with inert `#[serde(...)]` helper attributes. The derives
//! accept the input and expand to nothing — the workspace only annotates
//! types for *future* serialization support and never calls serde's
//! runtime, so empty trait impl expansion is not needed either.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with inert `#[serde(...)]` attributes)
/// and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with inert `#[serde(...)]` attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
