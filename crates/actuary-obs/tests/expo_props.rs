//! Property tests: any registry built from valid names renders
//! exposition text that passes [`actuary_obs::expo::validate`] — name
//! charset, HELP/TYPE ordering, monotone cumulative buckets, `+Inf`
//! matching `_count` — regardless of label contents or observation mix.

use actuary_obs::expo;
use actuary_obs::metrics::{LATENCY_SECONDS, SIZE_BYTES};
use actuary_obs::Registry;
use proptest::prelude::*;

const NAMES: &[&str] = &[
    "actuary_http_requests_total",
    "actuary_result_cache_hits_total",
    "actuary_http_request_seconds",
    "actuary_engine_phase_seconds",
    "actuary_http_response_bytes",
    "a:colon:name",
    "_leading_underscore",
];

const LABEL_KEYS: &[&str] = &["route", "method", "status", "phase", "_k9"];

// Deliberately hostile label values: every escape class, plus unicode
// and an empty string.
const LABEL_VALUES: &[&str] = &[
    "/run",
    "GET",
    "200",
    "",
    "two words",
    "quote\"inside",
    "back\\slash",
    "new\nline",
    "µ-héllo",
    "a,b}c{d",
];

/// One generated instrument: which family, which kind, which labels,
/// and what to record into it.
type Spec = (usize, usize, (usize, usize), u64, Vec<f64>);

fn build(specs: &[Spec]) -> Registry {
    let registry = Registry::new();
    for &(name_idx, kind, (label_key, label_value), count, ref observations) in specs {
        // Suffix the family name by kind so one name is never registered
        // as two different kinds (that's a programming error the registry
        // rejects by panicking, not a renderable state).
        let kind = kind % 3;
        let base = NAMES[name_idx % NAMES.len()];
        let name = match kind {
            0 => format!("{base}_c"),
            1 => format!("{base}_g"),
            _ => format!("{base}_h"),
        };
        let labels = [(
            LABEL_KEYS[label_key % LABEL_KEYS.len()],
            LABEL_VALUES[label_value % LABEL_VALUES.len()],
        )];
        match kind {
            0 => registry
                .counter(&name, "generated counter", &labels)
                .add(count),
            1 => registry
                .gauge(&name, "generated gauge", &labels)
                .set(count as f64 / 3.0),
            _ => {
                let uppers = if count % 2 == 0 {
                    LATENCY_SECONDS
                } else {
                    SIZE_BYTES
                };
                let h = registry.histogram(&name, "generated histogram", &labels, uppers);
                for &v in observations {
                    h.observe(v);
                }
            }
        }
    }
    registry
}

proptest! {
    #[test]
    fn every_generated_registry_renders_valid_exposition(
        specs in proptest::collection::vec(
            (
                0usize..7,
                0usize..3,
                (0usize..5, 0usize..10),
                0u64..100_000,
                proptest::collection::vec(0.0f64..100.0, 0..12),
            ),
            1..12,
        ),
    ) {
        let registry = build(&specs);
        let text = expo::render(&registry.snapshot());
        if let Err(violation) = expo::validate(&text) {
            return Err(TestCaseError::fail(format!(
                "rendered exposition failed validation: {violation}\n--- text ---\n{text}"
            )));
        }
    }

    #[test]
    fn histogram_totals_survive_the_render(
        observations in proptest::collection::vec(0.0f64..50.0, 1..64),
    ) {
        let registry = Registry::new();
        let histogram = registry.histogram(
            "actuary_prop_seconds",
            "histogram under test",
            &[("phase", "prop")],
            LATENCY_SECONDS,
        );
        for &v in &observations {
            histogram.observe(v);
        }
        let text = expo::render(&registry.snapshot());
        expo::validate(&text).map_err(TestCaseError::fail)?;
        let count_line = text
            .lines()
            .find(|l| l.starts_with("actuary_prop_seconds_count"))
            .map(str::to_string)
            .unwrap_or_default();
        prop_assert!(
            count_line.ends_with(&format!(" {}", observations.len())),
            "_count line {count_line:?} != {} observations",
            observations.len()
        );
    }
}
