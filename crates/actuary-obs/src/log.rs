//! Structured stderr logging.
//!
//! One event is one stderr line, in either of two formats:
//!
//! ```text
//! level=info event=http.request ts_ms=1754526000000 method=POST route=/run status=200 seconds=0.0123
//! {"ts_ms":1754526000000,"level":"info","event":"http.request","method":"POST",...}
//! ```
//!
//! Level and format are process-wide atomics, set once at startup via
//! [`init`] (from `actuary serve --log-level/--log-format`) or
//! [`init_from_env`] (`ACTUARY_LOG`, `ACTUARY_LOG_FORMAT`). Everything
//! goes to stderr; stdout stays reserved for artifacts and the serve
//! handshake, which is what keeps logging off the determinism-checked
//! result path.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use crate::clock::{self, Tick};

/// Event severity, most severe first. The filter keeps events at or
/// above the configured level (`Error` passes everywhere; `Trace` only
/// when everything is on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process cannot do what was asked of it.
    Error,
    /// Degraded but proceeding (saturation, rejected admission).
    Warn,
    /// Normal operational record — one line per served request.
    Info,
    /// Engine internals: span closings, cache decisions.
    Debug,
    /// Firehose; nothing in-tree emits at this level yet.
    Trace,
}

impl Level {
    /// Lower-case name as it appears in output and flags.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a flag/env value (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    #[cfg(test)]
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Output format for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `key=value` pairs, human-first.
    Text,
    /// One JSON object per line, machine-first.
    Json,
}

impl Format {
    /// Parses a flag/env value (case-insensitive).
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Text, 1 = Json

/// Sets the process-wide level and format. Callable any time; takes
/// effect for the next event.
pub fn init(level: Level, format: Format) {
    LEVEL.store(level as u8, Ordering::Relaxed);
    FORMAT.store(u8::from(format == Format::Json), Ordering::Relaxed);
}

/// Configures from `ACTUARY_LOG` (level) and `ACTUARY_LOG_FORMAT`
/// (`text`/`json`); unset or unparseable values keep the defaults
/// (`info`, `text`).
pub fn init_from_env() {
    let level = std::env::var("ACTUARY_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    let format = std::env::var("ACTUARY_LOG_FORMAT")
        .ok()
        .and_then(|v| Format::parse(&v))
        .unwrap_or(Format::Text);
    init(level, format);
}

/// Whether events at `level` currently pass the filter. Check this
/// before building expensive field sets.
pub fn enabled(level: Level) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// A typed field value; build via the `From` impls, e.g.
/// `("status", 200u64.into())`.
#[derive(Debug, Clone)]
pub enum Field {
    /// Free text (JSON-escaped in json format; text format replaces
    /// internal whitespace so lines stay single-line greppable).
    Str(String),
    /// Unsigned quantity.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Measurement; rendered with enough digits to round-trip.
    F64(f64),
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<u32> for Field {
    fn from(v: u32) -> Field {
        Field::U64(u64::from(v))
    }
}

impl From<u16> for Field {
    fn from(v: u16) -> Field {
        Field::U64(u64::from(v))
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Field {
        Field::I64(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

/// Emits one event if `level` passes the filter. `name` is a dotted
/// static identifier (`http.request`, `span.close`, `serve.saturated`);
/// fields render in the order given.
pub fn event(level: Level, name: &'static str, fields: &[(&'static str, Field)]) {
    if !enabled(level) {
        return;
    }
    let format = if FORMAT.load(Ordering::Relaxed) == 1 {
        Format::Json
    } else {
        Format::Text
    };
    eprintln!(
        "{}",
        render(format, level, name, fields, clock::unix_millis())
    );
}

fn render(
    format: Format,
    level: Level,
    name: &'static str,
    fields: &[(&'static str, Field)],
    ts_ms: u64,
) -> String {
    let mut out = String::with_capacity(96);
    if format == Format::Json {
        let _ = write!(
            out,
            "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"event\":\"{name}\"",
            level.as_str()
        );
        for (key, value) in fields {
            out.push(',');
            out.push('"');
            push_json_escaped(&mut out, key);
            out.push_str("\":");
            match value {
                Field::Str(s) => {
                    out.push('"');
                    push_json_escaped(&mut out, s);
                    out.push('"');
                }
                Field::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Field::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                Field::F64(v) => push_json_f64(&mut out, *v),
            }
        }
        out.push('}');
    } else {
        let _ = write!(out, "level={} event={name} ts_ms={ts_ms}", level.as_str());
        for (key, value) in fields {
            let _ = write!(out, " {key}=");
            match value {
                Field::Str(s) => {
                    for ch in s.chars() {
                        out.push(if ch.is_whitespace() { '_' } else { ch });
                    }
                }
                Field::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Field::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                Field::F64(v) => {
                    let _ = write!(out, "{v}");
                }
            }
        }
    }
    out
}

fn push_json_escaped(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_json_f64(out: &mut String, v: f64) {
    // JSON has no Infinity/NaN tokens; clamp to null rather than emit
    // an unparseable line.
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A once-per-interval emitter for operator notes that would otherwise
/// spam (worker-pool saturation being the canonical case). The
/// suppressed-since-last-emit count is appended as a `suppressed` field
/// so bursts remain visible in the log even when collapsed.
#[derive(Debug)]
pub struct RateLimited {
    min_seconds: f64,
    state: Mutex<RateState>,
}

#[derive(Debug, Default)]
struct RateState {
    last: Option<Tick>,
    suppressed: u64,
}

impl RateLimited {
    /// A limiter that lets one event through per `min_seconds`.
    pub fn new(min_seconds: f64) -> RateLimited {
        RateLimited {
            min_seconds,
            state: Mutex::new(RateState::default()),
        }
    }

    /// Emits the event if the interval has elapsed (always on first
    /// call); otherwise counts it as suppressed. Returns whether the
    /// event was emitted.
    pub fn emit(&self, level: Level, name: &'static str, fields: &[(&'static str, Field)]) -> bool {
        let now = clock::now();
        let suppressed = {
            let mut state = match self.state.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            let due = state
                .last
                .is_none_or(|last| now.seconds_since(last) >= self.min_seconds);
            if !due {
                state.suppressed += 1;
                return false;
            }
            state.last = Some(now);
            std::mem::take(&mut state.suppressed)
        };
        let mut all: Vec<(&'static str, Field)> = fields.to_vec();
        all.push(("suppressed", Field::U64(suppressed)));
        event(level, name, &all);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::from_u8(Level::Debug as u8), Level::Debug);
    }

    #[test]
    fn text_render_is_single_line_key_value() {
        let line = render(
            Format::Text,
            Level::Info,
            "http.request",
            &[
                ("route", "/run".into()),
                ("status", 200u16.into()),
                ("note", "two words".into()),
            ],
            42,
        );
        assert_eq!(
            line,
            "level=info event=http.request ts_ms=42 route=/run status=200 note=two_words"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn json_render_escapes_and_clamps() {
        let line = render(
            Format::Json,
            Level::Warn,
            "serve.saturated",
            &[
                ("msg", "say \"hi\"\n".into()),
                ("queued", 3u64.into()),
                ("ratio", Field::F64(f64::INFINITY)),
            ],
            42,
        );
        assert_eq!(
            line,
            "{\"ts_ms\":42,\"level\":\"warn\",\"event\":\"serve.saturated\",\
             \"msg\":\"say \\\"hi\\\"\\n\",\"queued\":3,\"ratio\":null}"
        );
    }

    #[test]
    fn rate_limiter_passes_first_then_counts_suppressed() {
        let limiter = RateLimited::new(3600.0);
        assert!(limiter.emit(Level::Trace, "x", &[]));
        assert!(!limiter.emit(Level::Trace, "x", &[]));
        assert!(!limiter.emit(Level::Trace, "x", &[]));
        let state = limiter.state.lock().unwrap();
        assert_eq!(state.suppressed, 2);
    }

    #[test]
    fn zero_interval_limiter_never_suppresses() {
        let limiter = RateLimited::new(0.0);
        assert!(limiter.emit(Level::Trace, "y", &[]));
        assert!(limiter.emit(Level::Trace, "y", &[]));
    }
}
