//! Named, labeled instrument families.
//!
//! A [`Registry`] maps metric family names to instruments, keyed by
//! label set. Registration is idempotent — asking twice for the same
//! `(name, labels)` returns the same underlying atomic — and external
//! state (the serve caches own their hit/miss counters) joins via
//! [`Registry::counter_fn`] / [`Registry::gauge_fn`] collector
//! callbacks, read at snapshot time. Both `/metricsz` and `/statz`
//! render from the same [`Snapshot`], which is what makes it impossible
//! for the two views to drift.
//!
//! Per-server registries (constructed with [`Registry::new`]) keep test
//! servers isolated; [`Registry::global`] hosts process-wide families
//! like the engine phase histogram, and a server merges both snapshots
//! when rendering.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// The Prometheus family kind, driving the `# TYPE` line and how the
/// sample renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone count.
    Counter,
    /// Last-value measurement.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl Kind {
    /// Lower-case name for the `# TYPE` line.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(Arc<Gauge>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

impl fmt::Debug for Instrument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Instrument::Counter(_) => "Counter",
            Instrument::CounterFn(_) => "CounterFn",
            Instrument::Gauge(_) => "Gauge",
            Instrument::GaugeFn(_) => "GaugeFn",
            Instrument::Histogram(_) => "Histogram",
        };
        f.write_str(name)
    }
}

#[derive(Debug)]
struct FamilyEntry {
    help: String,
    kind: Kind,
    samples: Vec<(Vec<(String, String)>, Instrument)>,
}

/// A collection of instrument families, snapshot-rendered by
/// [`crate::expo`] (Prometheus text) and the serve layer's `/statz`
/// (JSON).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, FamilyEntry>>,
}

/// Label pairs for an unlabeled sample.
pub const NO_LABELS: &[(&str, &str)] = &[];

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    for (key, _) in labels {
        assert!(valid_label(key), "invalid metric label name: {key:?}");
    }
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry, home of families recorded from deep
    /// inside the engine (phase spans) where no server handle reaches.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn instrument<F>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: F,
    ) -> Instrumented
    where
        F: FnOnce() -> Instrument,
    {
        assert!(valid_name(name), "invalid metric family name: {name:?}");
        let labels = owned_labels(labels);
        let mut families = lock(&self.families);
        let entry = families
            .entry(name.to_string())
            .or_insert_with(|| FamilyEntry {
                help: help.to_string(),
                kind,
                samples: Vec::new(),
            });
        assert!(
            entry.kind == kind,
            "metric family {name:?} registered as {} and {}",
            entry.kind.as_str(),
            kind.as_str()
        );
        if let Some(position) = entry.samples.iter().position(|(l, _)| *l == labels) {
            match &entry.samples[position].1 {
                Instrument::Counter(c) => Instrumented::Counter(Arc::clone(c)),
                Instrument::Gauge(g) => Instrumented::Gauge(Arc::clone(g)),
                Instrument::Histogram(h) => Instrumented::Histogram(Arc::clone(h)),
                // Callbacks can't be handed back out; re-registration
                // replaces the closure (fresh caches on a fresh server).
                Instrument::CounterFn(_) | Instrument::GaugeFn(_) => {
                    entry.samples[position].1 = make();
                    Instrumented::Callback
                }
            }
        } else {
            let made = make();
            let out = match &made {
                Instrument::Counter(c) => Instrumented::Counter(Arc::clone(c)),
                Instrument::Gauge(g) => Instrumented::Gauge(Arc::clone(g)),
                Instrument::Histogram(h) => Instrumented::Histogram(Arc::clone(h)),
                Instrument::CounterFn(_) | Instrument::GaugeFn(_) => Instrumented::Callback,
            };
            entry.samples.push((labels, made));
            out
        }
    }

    /// Registers (or retrieves) a counter sample.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, help, Kind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrumented::Counter(c) => c,
            other => unreachable!("counter family held {other:?}"),
        }
    }

    /// Registers (or retrieves) a gauge sample.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, help, Kind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrumented::Gauge(g) => g,
            other => unreachable!("gauge family held {other:?}"),
        }
    }

    /// Registers (or retrieves) a histogram sample over `uppers` bucket
    /// bounds (see [`crate::metrics::LATENCY_SECONDS`] /
    /// [`crate::metrics::SIZE_BYTES`]).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        uppers: &[f64],
    ) -> Arc<Histogram> {
        match self.instrument(name, help, Kind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new(uppers)))
        }) {
            Instrumented::Histogram(h) => h,
            other => unreachable!("histogram family held {other:?}"),
        }
    }

    /// Registers a counter whose value is polled from `read` at snapshot
    /// time — for counts owned elsewhere (cache hit totals).
    pub fn counter_fn<F>(&self, name: &str, help: &str, labels: &[(&str, &str)], read: F)
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        self.instrument(name, help, Kind::Counter, labels, move || {
            Instrument::CounterFn(Box::new(read))
        });
    }

    /// Registers a gauge polled from `read` at snapshot time (cache
    /// entry counts).
    pub fn gauge_fn<F>(&self, name: &str, help: &str, labels: &[(&str, &str)], read: F)
    where
        F: Fn() -> f64 + Send + Sync + 'static,
    {
        self.instrument(name, help, Kind::Gauge, labels, move || {
            Instrument::GaugeFn(Box::new(read))
        });
    }

    /// Reads every instrument (including collector callbacks) into an
    /// immutable, renderable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let families = lock(&self.families);
        let rendered = families
            .iter()
            .map(|(name, entry)| Family {
                name: name.clone(),
                help: entry.help.clone(),
                kind: entry.kind,
                samples: entry
                    .samples
                    .iter()
                    .map(|(labels, instrument)| Sample {
                        labels: labels.clone(),
                        value: match instrument {
                            Instrument::Counter(c) => Value::Counter(c.get()),
                            Instrument::CounterFn(f) => Value::Counter(f()),
                            Instrument::Gauge(g) => Value::Gauge(g.get()),
                            Instrument::GaugeFn(f) => Value::Gauge(f()),
                            Instrument::Histogram(h) => Value::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect();
        Snapshot { families: rendered }
    }
}

enum Instrumented {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Callback,
}

impl fmt::Debug for Instrumented {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Instrumented::Counter(_) => "Counter",
            Instrumented::Gauge(_) => "Gauge",
            Instrumented::Histogram(_) => "Histogram",
            Instrumented::Callback => "Callback",
        };
        f.write_str(name)
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One sample's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// One labeled sample within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label `(name, value)` pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: Value,
}

/// One metric family: name, help text, kind and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name (`actuary_http_requests_total`).
    pub name: String,
    /// `# HELP` text.
    pub help: String,
    /// Counter / gauge / histogram.
    pub kind: Kind,
    /// All registered label combinations.
    pub samples: Vec<Sample>,
}

/// A point-in-time read of a registry, sorted by family name. Both the
/// Prometheus exposition and the `/statz` JSON view render from this,
/// so they cannot disagree about a value's source.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Families in name order.
    pub families: Vec<Family>,
}

impl Snapshot {
    /// Sum of all counter samples in `name`'s family, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        let family = self.families.iter().find(|f| f.name == name)?;
        let mut total = 0u64;
        for sample in &family.samples {
            if let Value::Counter(v) = sample.value {
                total += v;
            }
        }
        Some(total)
    }

    /// The first gauge sample in `name`'s family, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let family = self.families.iter().find(|f| f.name == name)?;
        family.samples.iter().find_map(|s| match s.value {
            Value::Gauge(v) => Some(v),
            _ => None,
        })
    }

    /// Merges two snapshots into one, re-sorting by family name. When a
    /// family appears in both (it shouldn't — per-server and global
    /// registries own disjoint names), samples concatenate.
    pub fn merged(mut self, other: Snapshot) -> Snapshot {
        for family in other.families {
            if let Some(mine) = self.families.iter_mut().find(|f| f.name == family.name) {
                mine.samples.extend(family.samples);
            } else {
                self.families.push(family);
            }
        }
        self.families.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot {
            families: self.families,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_label_set() {
        let registry = Registry::new();
        let a = registry.counter("actuary_test_total", "help", &[("route", "/run")]);
        let b = registry.counter("actuary_test_total", "help", &[("route", "/run")]);
        let c = registry.counter("actuary_test_total", "help", &[("route", "/statz")]);
        a.inc();
        assert_eq!(b.get(), 1, "same labels share the atomic");
        assert_eq!(c.get(), 0, "different labels do not");
        assert_eq!(registry.snapshot().counter("actuary_test_total"), Some(1));
    }

    #[test]
    #[should_panic(expected = "invalid metric family name")]
    fn bad_names_are_rejected_at_registration() {
        Registry::new().counter("actuary-dashes", "help", NO_LABELS);
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_conflicts_are_rejected() {
        let registry = Registry::new();
        registry.counter("actuary_conflict", "help", NO_LABELS);
        registry.gauge("actuary_conflict", "help", NO_LABELS);
    }

    #[test]
    fn collector_callbacks_read_at_snapshot_time() {
        let registry = Registry::new();
        let shared = Arc::new(Counter::new());
        let reader = Arc::clone(&shared);
        registry.counter_fn("actuary_cb_total", "help", NO_LABELS, move || reader.get());
        registry.gauge_fn("actuary_cb_entries", "help", NO_LABELS, || 7.0);
        shared.add(9);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("actuary_cb_total"), Some(9));
        assert_eq!(snap.gauge("actuary_cb_entries"), Some(7.0));
    }

    #[test]
    fn merged_snapshots_stay_sorted_and_disjoint() {
        let a = Registry::new();
        a.counter("actuary_zzz_total", "z", NO_LABELS).add(1);
        let b = Registry::new();
        b.counter("actuary_aaa_total", "a", NO_LABELS).add(2);
        let merged = a.snapshot().merged(b.snapshot());
        let names: Vec<&str> = merged.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["actuary_aaa_total", "actuary_zzz_total"]);
        assert_eq!(merged.counter("actuary_aaa_total"), Some(2));
    }
}
