//! **actuary-obs** — the workspace's unified observability layer.
//!
//! Every window into a running actuary process goes through this crate:
//!
//! * [`metrics`] — lock-free [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s;
//! * [`registry`] — named, labeled instrument families behind a
//!   [`Registry`], snapshotted atomically enough for rendering; external
//!   counters (the serve caches) join via collector callbacks, so every
//!   view renders from the *same* [`Snapshot`];
//! * [`expo`] — the Prometheus text exposition format (`GET /metricsz`)
//!   plus a validator the tests hold every rendered family to;
//! * [`mod@span`] — `span!("phase")` guard timers: on drop they record into
//!   the global `actuary_engine_phase_seconds` histogram and notify the
//!   installed [`span::SpanObserver`] (by default a `debug`-level log
//!   event — the replacement for the old `ACTUARY_REFINE_TRACE` hack);
//! * [`log`] — a structured stderr logger with `text`/`json` formats,
//!   level filtering (`--log-format` / `--log-level` on `actuary serve`,
//!   `ACTUARY_LOG` / `ACTUARY_LOG_FORMAT` elsewhere) and a
//!   [`log::RateLimited`] helper for once-per-interval operator notes;
//! * [`clock`] — the **only** approved home of `std::time` reads in the
//!   workspace (enforced by `actuary-lint`'s determinism check): a
//!   monotonic [`clock::Tick`] since process start and a
//!   [`clock::Stopwatch`].
//!
//! # Off the result path, by construction
//!
//! Observability must never change what the engine computes: metrics are
//! atomics the result path only ever *increments*, spans read the clock
//! but feed nothing back, and log output goes exclusively to stderr —
//! stdout stays reserved for artifacts and the serve handshake. Artifact
//! bytes are asserted identical with observability enabled (see the
//! `serve_obs` integration test in actuary-cli).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod expo;
pub mod log;
pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Registry, Snapshot};
pub use span::Span;
