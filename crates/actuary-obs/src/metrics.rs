//! Lock-free instruments: monotone [`Counter`]s, last-value [`Gauge`]s
//! and fixed-bucket [`Histogram`]s. All updates are relaxed atomics —
//! observation must never serialize the threads it observes — and every
//! read path goes through a snapshot so renderers see one coherent-enough
//! view (bucket counts may trail the sum by in-flight observations, never
//! the other way into negative territory).

use std::sync::atomic::{AtomicU64, Ordering};

/// Default latency bucket upper bounds, in seconds: half-millisecond
/// resolution at the cache-hit end, stretching to the tens of seconds a
/// cold 10⁸-cell refine request can take.
pub const LATENCY_SECONDS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
];

/// Default size bucket upper bounds, in bytes: one chunk up through the
/// 4 MiB body cap and the multi-megabyte grids above it.
pub const SIZE_BYTES: &[f64] = &[
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a last-written f64 (stored as bits, so the write is atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The last written value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: per-bucket counts plus a running sum. The
/// bucket bounds are upper bounds (`value <= bound` lands in a bucket);
/// everything above the last bound lands in the implicit `+Inf` bucket.
#[derive(Debug)]
pub struct Histogram {
    uppers: Vec<f64>,
    /// One count per finite bucket plus the overflow (`+Inf`) bucket —
    /// *non*-cumulative; the snapshot accumulates.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given upper bounds. Non-finite bounds are
    /// dropped (the `+Inf` bucket is implicit) and the rest are sorted
    /// and deduplicated, so any bound list renders as valid monotone
    /// Prometheus buckets.
    pub fn new(uppers: &[f64]) -> Histogram {
        let mut uppers: Vec<f64> = uppers.iter().copied().filter(|u| u.is_finite()).collect();
        uppers.sort_by(f64::total_cmp);
        uppers.dedup_by(|a, b| a == b);
        let counts = (0..=uppers.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            uppers,
            counts,
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .uppers
            .iter()
            .position(|&upper| value <= upper)
            .unwrap_or(self.uppers.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        // f64 sum via a CAS loop on the bit pattern (std has no atomic
        // float); contention here is one retry per racing observer.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// A render-ready snapshot: cumulative buckets, sum and count.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(self.uppers.len());
        for (i, &upper) in self.uppers.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            buckets.push((upper, cumulative));
        }
        cumulative += self.counts[self.uppers.len()].load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: cumulative,
        }
    }
}

/// One coherent read of a [`Histogram`]: `buckets` are `(upper_bound,
/// cumulative_count)` pairs in increasing bound order; `count` is the
/// total including the implicit `+Inf` bucket (so `count >=` the last
/// finite bucket's cumulative count, always).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Cumulative `(upper_bound, count)` pairs, increasing in both.
    pub buckets: Vec<(f64, u64)>,
    sum: f64,
    /// Total observations (the `+Inf` cumulative count).
    pub count: u64,
}

impl HistogramSnapshot {
    /// Sum of all observed values (unit: whatever was observed, named by
    /// the metric's `_seconds`/`_bytes` suffix).
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let h = Histogram::new(&[0.01, 0.1, 1.0]);
        for v in [0.005, 0.005, 0.05, 0.5, 50.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0.01, 2), (0.1, 3), (1.0, 4)]);
        assert_eq!(snap.count, 5, "+Inf covers the 50.0 observation");
        assert!((snap.sum() - 50.56).abs() < 1e-9);
        for pair in snap.buckets.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn bound_edge_lands_in_its_bucket() {
        // Prometheus buckets are `le` (less-or-equal) bounds.
        let h = Histogram::new(&[1.0]);
        h.observe(1.0);
        assert_eq!(h.snapshot().buckets, vec![(1.0, 1)]);
    }

    #[test]
    fn unsorted_and_nonfinite_bounds_are_sanitized() {
        let h = Histogram::new(&[5.0, 1.0, f64::INFINITY, 1.0, f64::NAN]);
        let snap = h.snapshot();
        let uppers: Vec<f64> = snap.buckets.iter().map(|&(u, _)| u).collect();
        assert_eq!(uppers, vec![1.0, 5.0]);
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let h = std::sync::Arc::new(Histogram::new(LATENCY_SECONDS));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe(f64::from(i) * 0.001);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert!((snap.sum() - 4.0 * 499.5).abs() < 1e-6);
    }
}
