//! Prometheus text exposition format (version 0.0.4).
//!
//! [`render`] turns a [`Snapshot`] into the text served by
//! `GET /metricsz`: `# HELP` / `# TYPE` headers per family, one sample
//! line per label set, and for histograms the cumulative
//! `_bucket{le="..."}` series (including `+Inf`) plus `_sum` and
//! `_count`. [`validate`] is the same contract read back — the property
//! tests hold every renderable registry to it, and the integration test
//! holds the live endpoint to it.

use std::fmt::Write as _;

use crate::registry::{Snapshot, Value};

/// The `Content-Type` a scraper expects for this format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Renders a snapshot as Prometheus text exposition.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(1024);
    for family in &snapshot.families {
        let _ = write!(out, "# HELP {} ", family.name);
        push_help_escaped(&mut out, &family.help);
        out.push('\n');
        let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
        for sample in &family.samples {
            match &sample.value {
                Value::Counter(v) => {
                    push_series(&mut out, &family.name, &sample.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                Value::Gauge(v) => {
                    push_series(&mut out, &family.name, &sample.labels, None);
                    out.push(' ');
                    push_f64(&mut out, *v);
                    out.push('\n');
                }
                Value::Histogram(h) => {
                    let bucket_name = format!("{}_bucket", family.name);
                    for &(upper, cumulative) in &h.buckets {
                        let mut le = String::new();
                        push_f64(&mut le, upper);
                        push_series(&mut out, &bucket_name, &sample.labels, Some(&le));
                        let _ = writeln!(out, " {cumulative}");
                    }
                    push_series(&mut out, &bucket_name, &sample.labels, Some("+Inf"));
                    let _ = writeln!(out, " {}", h.count);
                    push_series(
                        &mut out,
                        &format!("{}_sum", family.name),
                        &sample.labels,
                        None,
                    );
                    out.push(' ');
                    push_f64(&mut out, h.sum());
                    out.push('\n');
                    push_series(
                        &mut out,
                        &format!("{}_count", family.name),
                        &sample.labels,
                        None,
                    );
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
    }
    out
}

fn push_series(out: &mut String, name: &str, labels: &[(String, String)], le: Option<&str>) {
    out.push_str(name);
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(key);
        out.push_str("=\"");
        push_label_escaped(out, value);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

fn push_label_escaped(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_help_escaped(out: &mut String, help: &str) {
    for ch in help.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Checks `text` against the exposition contract: valid family and
/// label names, `# HELP` and `# TYPE` lines preceding every sample of
/// their family, histogram buckets cumulative and nondecreasing in
/// increasing `le` order, and each `+Inf` bucket equal to its series'
/// `_count`. Returns the first violation found.
pub fn validate(text: &str) -> Result<(), String> {
    let mut kinds: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut helped: std::collections::BTreeMap<String, bool> = std::collections::BTreeMap::new();
    // Per-(family, non-le labels): bucket series state and _count value.
    let mut buckets: std::collections::BTreeMap<String, Vec<(f64, u64)>> =
        std::collections::BTreeMap::new();
    let mut counts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !valid_sample_name(name) {
                return Err(format!(
                    "line {lineno}: invalid family name in HELP: {name:?}"
                ));
            }
            helped.insert(name.to_string(), true);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_sample_name(name) {
                return Err(format!(
                    "line {lineno}: invalid family name in TYPE: {name:?}"
                ));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
            }
            if !helped.contains_key(name) {
                return Err(format!("line {lineno}: TYPE {name} precedes its HELP"));
            }
            if kinds.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        let parsed = parse_sample(line)
            .ok_or_else(|| format!("line {lineno}: unparseable sample: {line:?}"))?;
        if !valid_sample_name(&parsed.name) {
            return Err(format!(
                "line {lineno}: invalid sample name {:?}",
                parsed.name
            ));
        }
        for (key, _) in &parsed.labels {
            if !valid_label_name(key) {
                return Err(format!("line {lineno}: invalid label name {key:?}"));
            }
        }
        let (family, suffix) = family_of(&parsed.name, &kinds);
        let Some(kind) = kinds.get(&family) else {
            return Err(format!(
                "line {lineno}: sample {} has no preceding TYPE",
                parsed.name
            ));
        };
        if kind == "histogram" && suffix.is_none() {
            return Err(format!(
                "line {lineno}: histogram {family} exposed without _bucket/_sum/_count suffix"
            ));
        }

        if kind == "histogram" {
            let mut series_key = family.clone();
            let mut le: Option<String> = None;
            for (key, value) in &parsed.labels {
                if key == "le" {
                    le = Some(value.clone());
                } else {
                    let _ = write!(series_key, ";{key}={value}");
                }
            }
            match suffix {
                Some("bucket") => {
                    let le = le.ok_or_else(|| {
                        format!("line {lineno}: _bucket sample without an le label")
                    })?;
                    let upper = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse::<f64>()
                            .map_err(|_| format!("line {lineno}: unparseable le value {le:?}"))?
                    };
                    let count = parsed
                        .value_u64
                        .ok_or_else(|| format!("line {lineno}: bucket count is not an integer"))?;
                    buckets.entry(series_key).or_default().push((upper, count));
                }
                Some("count") => {
                    let count = parsed
                        .value_u64
                        .ok_or_else(|| format!("line {lineno}: _count is not an integer"))?;
                    counts.insert(series_key, count);
                }
                _ => {}
            }
        }
    }

    for (series, series_buckets) in &buckets {
        for pair in series_buckets.windows(2) {
            if pair[1].0 <= pair[0].0 {
                return Err(format!("series {series}: le bounds not increasing"));
            }
            if pair[1].1 < pair[0].1 {
                return Err(format!("series {series}: bucket counts not cumulative"));
            }
        }
        let Some(&(last_le, last_count)) = series_buckets.last() else {
            continue;
        };
        if !last_le.is_infinite() {
            return Err(format!("series {series}: missing +Inf bucket"));
        }
        match counts.get(series) {
            Some(&count) if count == last_count => {}
            Some(&count) => {
                return Err(format!(
                    "series {series}: +Inf bucket {last_count} != _count {count}"
                ));
            }
            None => return Err(format!("series {series}: missing _count")),
        }
    }
    Ok(())
}

struct ParsedSample {
    name: String,
    labels: Vec<(String, String)>,
    value_u64: Option<u64>,
}

fn parse_sample(line: &str) -> Option<ParsedSample> {
    let name_end = line.find(['{', ' '])?;
    let name = line[..name_end].to_string();
    let mut labels = Vec::new();
    let rest = if line.as_bytes()[name_end] == b'{' {
        let mut chars = line[name_end + 1..].char_indices();
        let body = &line[name_end + 1..];
        let close;
        let mut start = 0usize;
        loop {
            let (i, ch) = chars.next()?;
            match ch {
                '}' => {
                    close = i;
                    break;
                }
                ',' => start = i + 1,
                '=' => {
                    let key = body[start..i].to_string();
                    // Opening quote, then scan to the unescaped close.
                    let (_, quote) = chars.next()?;
                    if quote != '"' {
                        return None;
                    }
                    let mut value = String::new();
                    loop {
                        let (_, c) = chars.next()?;
                        match c {
                            '\\' => {
                                let (_, esc) = chars.next()?;
                                value.push(match esc {
                                    'n' => '\n',
                                    other => other,
                                });
                            }
                            '"' => break,
                            other => value.push(other),
                        }
                    }
                    labels.push((key, value));
                }
                _ => {}
            }
        }
        &body[close + 1..]
    } else {
        &line[name_end..]
    };
    let value_text = rest.trim();
    let value_u64 = value_text.parse::<u64>().ok();
    if value_u64.is_none() {
        // Must at least be a float (or the special tokens).
        let float_ok =
            value_text.parse::<f64>().is_ok() || matches!(value_text, "+Inf" | "-Inf" | "NaN");
        if !float_ok {
            return None;
        }
    }
    Some(ParsedSample {
        name,
        labels,
        value_u64,
    })
}

fn family_of<'a>(
    name: &'a str,
    kinds: &std::collections::BTreeMap<String, String>,
) -> (String, Option<&'a str>) {
    for suffix in ["bucket", "sum", "count"] {
        if let Some(base) = name.strip_suffix(&format!("_{suffix}")) {
            if kinds.get(base).is_some_and(|k| k == "histogram") {
                return (base.to_string(), Some(suffix));
            }
        }
    }
    (name.to_string(), None)
}

fn valid_sample_name(name: &str) -> bool {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LATENCY_SECONDS;
    use crate::registry::{Registry, NO_LABELS};

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let registry = Registry::new();
        registry
            .counter(
                "actuary_http_requests_total",
                "Requests accepted.",
                NO_LABELS,
            )
            .add(3);
        registry
            .gauge(
                "actuary_result_cache_entries",
                "Entries resident.",
                NO_LABELS,
            )
            .set(2.0);
        let text = render(&registry.snapshot());
        assert!(text.contains("# HELP actuary_http_requests_total Requests accepted.\n"));
        assert!(text.contains("# TYPE actuary_http_requests_total counter\n"));
        assert!(text.contains("\nactuary_http_requests_total 3\n"));
        assert!(text.contains("actuary_result_cache_entries 2\n"));
        validate(&text).unwrap();
    }

    #[test]
    fn histograms_render_cumulative_buckets_sum_count() {
        let registry = Registry::new();
        let h = registry.histogram(
            "actuary_http_request_seconds",
            "Latency.",
            &[("route", "/run")],
            &[0.01, 0.1],
        );
        h.observe(0.005);
        h.observe(0.05);
        h.observe(5.0);
        let text = render(&registry.snapshot());
        assert!(
            text.contains("actuary_http_request_seconds_bucket{route=\"/run\",le=\"0.01\"} 1\n")
        );
        assert!(text.contains("actuary_http_request_seconds_bucket{route=\"/run\",le=\"0.1\"} 2\n"));
        assert!(
            text.contains("actuary_http_request_seconds_bucket{route=\"/run\",le=\"+Inf\"} 3\n")
        );
        assert!(text.contains("actuary_http_request_seconds_count{route=\"/run\"} 3\n"));
        assert!(text.contains("actuary_http_request_seconds_sum{route=\"/run\"} 5.055\n"));
        validate(&text).unwrap();
    }

    #[test]
    fn label_values_are_escaped_and_round_trip() {
        let registry = Registry::new();
        registry
            .counter("actuary_odd_total", "h", &[("path", "a\"b\\c\nd")])
            .inc();
        let text = render(&registry.snapshot());
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
        validate(&text).unwrap();
        let parsed = parse_sample(text.lines().last().unwrap()).unwrap();
        assert_eq!(
            parsed.labels,
            vec![("path".to_string(), "a\"b\\c\nd".to_string())]
        );
    }

    #[test]
    fn validator_rejects_broken_exposition() {
        assert!(validate("actuary_orphan_total 1\n").is_err(), "no TYPE");
        let no_help = "# TYPE actuary_x counter\nactuary_x 1\n";
        assert!(validate(no_help).is_err(), "TYPE without HELP");
        let bad_buckets = "# HELP actuary_h h\n# TYPE actuary_h histogram\n\
                           actuary_h_bucket{le=\"0.1\"} 5\n\
                           actuary_h_bucket{le=\"1\"} 3\n\
                           actuary_h_bucket{le=\"+Inf\"} 5\n\
                           actuary_h_sum 1\nactuary_h_count 5\n";
        assert!(validate(bad_buckets).is_err(), "non-cumulative buckets");
        let inf_mismatch = "# HELP actuary_h h\n# TYPE actuary_h histogram\n\
                            actuary_h_bucket{le=\"+Inf\"} 4\n\
                            actuary_h_sum 1\nactuary_h_count 5\n";
        assert!(validate(inf_mismatch).is_err(), "+Inf != _count");
    }

    #[test]
    fn default_latency_buckets_validate() {
        let registry = Registry::new();
        let h = registry.histogram(
            "actuary_engine_phase_seconds",
            "Phase wall time.",
            &[("phase", "dse.evaluate")],
            LATENCY_SECONDS,
        );
        h.observe(0.0001);
        h.observe(31.0);
        validate(&render(&registry.snapshot())).unwrap();
    }
}
