//! Phase span timers.
//!
//! A [`Span`] is a guard: created at phase entry (use the
//! [`crate::span!`] macro), it times the enclosed work and on drop
//! records the duration into the global
//! `actuary_engine_phase_seconds{phase="..."}` histogram, then notifies
//! the installed [`SpanObserver`]. The default observer emits a
//! `debug`-level `span.close` log event — run with `ACTUARY_LOG=debug`
//! (or `actuary serve --log-level debug`) to watch refine phases stream
//! by, which replaces the old `ACTUARY_REFINE_TRACE=1` hack.
//!
//! Spans are observation-only: they read the clock and write atomics,
//! and nothing on the result path ever reads them back.

use std::sync::OnceLock;

use crate::clock::Stopwatch;
use crate::log::{self, Field, Level};
use crate::metrics::LATENCY_SECONDS;
use crate::registry::Registry;

/// The histogram family every span records into (one sample per
/// distinct phase name).
pub const PHASE_HISTOGRAM: &str = "actuary_engine_phase_seconds";

/// Receives every closed span. Install one with [`set_observer`] to
/// redirect span telemetry somewhere other than the structured log.
pub trait SpanObserver: Send + Sync {
    /// Called as a span drops, with its wall time and recorded fields.
    fn on_close(&self, name: &'static str, seconds: f64, fields: &[(&'static str, u64)]);
}

static OBSERVER: OnceLock<Box<dyn SpanObserver>> = OnceLock::new();

/// Installs the process-wide span observer. The first call wins; later
/// calls return `Err` with the rejected observer.
pub fn set_observer(observer: Box<dyn SpanObserver>) -> Result<(), Box<dyn SpanObserver>> {
    OBSERVER.set(observer)
}

/// A running phase timer; see the module docs. Construct via
/// [`Span::enter`] or the [`crate::span!`] macro and let it drop at the
/// end of the phase.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    stopwatch: Stopwatch,
    fields: Vec<(&'static str, u64)>,
}

impl Span {
    /// Starts timing a phase. `name` should be a dotted static path
    /// (`dse.evaluate`, `refine.coarse`) — it becomes the `phase` label.
    pub fn enter(name: &'static str) -> Span {
        Span {
            name,
            stopwatch: Stopwatch::start(),
            fields: Vec::new(),
        }
    }

    /// Attaches a quantity to the span (`cells`, `core_evaluations`);
    /// reported to the observer at close.
    pub fn record(&mut self, key: &'static str, value: u64) {
        self.fields.push((key, value));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let seconds = self.stopwatch.elapsed_seconds();
        Registry::global()
            .histogram(
                PHASE_HISTOGRAM,
                "Wall time per engine phase.",
                &[("phase", self.name)],
                LATENCY_SECONDS,
            )
            .observe(seconds);
        if let Some(observer) = OBSERVER.get() {
            observer.on_close(self.name, seconds, &self.fields);
        } else if log::enabled(Level::Debug) {
            let mut fields: Vec<(&'static str, Field)> = Vec::with_capacity(self.fields.len() + 2);
            fields.push(("phase", self.name.into()));
            fields.push(("seconds", seconds.into()));
            for &(key, value) in &self.fields {
                fields.push((key, value.into()));
            }
            log::event(Level::Debug, "span.close", &fields);
        }
    }
}

/// Opens a [`Span`] for the current scope:
///
/// ```
/// let mut span = actuary_obs::span!("dse.evaluate");
/// span.record("core_evaluations", 128);
/// // ... phase work; the drop at scope end records the duration.
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::Span::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Value;

    #[test]
    fn dropped_spans_land_in_the_global_phase_histogram() {
        {
            let mut span = crate::span!("test.phase");
            span.record("cells", 42);
        }
        let snap = Registry::global().snapshot();
        let family = snap
            .families
            .iter()
            .find(|f| f.name == PHASE_HISTOGRAM)
            .expect("phase family registered");
        let sample = family
            .samples
            .iter()
            .find(|s| {
                s.labels
                    .iter()
                    .any(|(k, v)| k == "phase" && v == "test.phase")
            })
            .expect("phase sample present");
        match &sample.value {
            Value::Histogram(h) => assert!(h.count >= 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
