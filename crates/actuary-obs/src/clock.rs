//! The workspace's one approved clock.
//!
//! `actuary-lint`'s determinism check bans `Instant`/`SystemTime` in
//! every non-compat crate *except this one* (the bench crate, a load
//! generator, is exempt): result-producing code must never read time,
//! and the serving layer routes all its timing — request latency, the
//! admission governor's token refill, rate-limited operator notes —
//! through here. Centralizing the reads keeps "who looks at the clock"
//! a one-crate audit.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// A monotonic instant, measured as the duration since the process-wide
/// anchor (first clock read). Copy-sized and totally ordered, unlike
/// `Instant` arithmetic which panics on misuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Tick(Duration);

impl Tick {
    /// Seconds elapsed from `earlier` to `self`; zero when the ticks are
    /// out of order (saturating, never negative).
    pub fn seconds_since(self, earlier: Tick) -> f64 {
        self.0.saturating_sub(earlier.0).as_secs_f64()
    }
}

/// The current monotonic tick.
pub fn now() -> Tick {
    let anchor = *ANCHOR.get_or_init(Instant::now);
    Tick(Instant::now().saturating_duration_since(anchor))
}

/// A started timer; [`Stopwatch::elapsed_seconds`] reads it.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Tick,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: now() }
    }

    /// Seconds since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        now().seconds_since(self.started)
    }
}

/// Milliseconds since the Unix epoch — wall-clock, **only** for log
/// timestamps (a machine with a stepping clock may emit non-monotone
/// `ts_ms` values; durations always come from [`now`]).
pub fn unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotone_and_saturating() {
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(b.seconds_since(a) >= 0.0);
        assert_eq!(a.seconds_since(b).max(0.0), a.seconds_since(b));
        // Out-of-order subtraction saturates to zero instead of panicking.
        assert_eq!(a.seconds_since(b), 0.0);
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_seconds() >= 0.001);
    }
}
