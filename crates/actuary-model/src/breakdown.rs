use std::fmt;
use std::ops::Add;

use serde::{Deserialize, Serialize};

use actuary_units::Money;

/// The five-component RE cost breakdown of the paper's §3.2.
///
/// > "The RE cost in our model consists of five parts: 1) cost of raw chips,
/// > 2) cost of chip defects, 3) cost of raw packages, 4) cost of package
/// > defects, 5) cost of wasted known good dies (KGDs) resulting from
/// > packaging defects."
///
/// Every figure-4-style stacked bar in the paper plots exactly these five
/// components; [`ReCostBreakdown::components`] returns them in the paper's
/// legend order.
///
/// # Examples
///
/// ```
/// use actuary_model::ReCostBreakdown;
/// use actuary_units::Money;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let b = ReCostBreakdown {
///     raw_chips: Money::from_usd(100.0)?,
///     chip_defects: Money::from_usd(40.0)?,
///     raw_package: Money::from_usd(20.0)?,
///     package_defects: Money::from_usd(5.0)?,
///     wasted_kgd: Money::from_usd(3.0)?,
/// };
/// assert_eq!(b.total().usd(), 168.0);
/// assert_eq!(b.packaging_total().usd(), 28.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReCostBreakdown {
    /// 1) Cost of raw chips (dies at perfect yield).
    pub raw_chips: Money,
    /// 2) Cost of chip defects (die yield loss).
    pub chip_defects: Money,
    /// 3) Cost of the raw package (substrate, interposer, bumps, assembly).
    pub raw_package: Money,
    /// 4) Cost of package defects (packaging yield loss on package
    ///    materials).
    pub package_defects: Money,
    /// 5) Cost of known-good dies wasted by packaging defects.
    pub wasted_kgd: Money,
}

impl ReCostBreakdown {
    /// The component labels, in the paper's legend order.
    pub const COMPONENT_LABELS: [&'static str; 5] = [
        "Cost of Raw Chips",
        "Cost of Chip Defects",
        "Cost of Raw Package",
        "Cost of Package Defects",
        "Cost of Wasted KGD",
    ];

    /// Total RE cost (sum of all five components).
    pub fn total(&self) -> Money {
        self.raw_chips
            + self.chip_defects
            + self.raw_package
            + self.package_defects
            + self.wasted_kgd
    }

    /// The paper's "cost of packaging": raw package + package defects +
    /// wasted KGD (Figure 5, footnote 2).
    pub fn packaging_total(&self) -> Money {
        self.raw_package + self.package_defects + self.wasted_kgd
    }

    /// Die-related cost: raw chips + chip defects.
    pub fn die_total(&self) -> Money {
        self.raw_chips + self.chip_defects
    }

    /// Components paired with their labels, in legend order.
    pub fn components(&self) -> [(&'static str, Money); 5] {
        [
            (Self::COMPONENT_LABELS[0], self.raw_chips),
            (Self::COMPONENT_LABELS[1], self.chip_defects),
            (Self::COMPONENT_LABELS[2], self.raw_package),
            (Self::COMPONENT_LABELS[3], self.package_defects),
            (Self::COMPONENT_LABELS[4], self.wasted_kgd),
        ]
    }

    /// Scales every component by a dimensionless factor (used for
    /// normalization).
    pub fn scaled(&self, factor: f64) -> ReCostBreakdown {
        ReCostBreakdown {
            raw_chips: self.raw_chips * factor,
            chip_defects: self.chip_defects * factor,
            raw_package: self.raw_package * factor,
            package_defects: self.package_defects * factor,
            wasted_kgd: self.wasted_kgd * factor,
        }
    }

    /// `true` when every component is non-negative — an invariant of every
    /// cost the engine produces, asserted by the property suite.
    pub fn is_non_negative(&self) -> bool {
        !self.raw_chips.is_negative()
            && !self.chip_defects.is_negative()
            && !self.raw_package.is_negative()
            && !self.package_defects.is_negative()
            && !self.wasted_kgd.is_negative()
    }
}

impl Add for ReCostBreakdown {
    type Output = ReCostBreakdown;

    fn add(self, rhs: ReCostBreakdown) -> ReCostBreakdown {
        ReCostBreakdown {
            raw_chips: self.raw_chips + rhs.raw_chips,
            chip_defects: self.chip_defects + rhs.chip_defects,
            raw_package: self.raw_package + rhs.raw_package,
            package_defects: self.package_defects + rhs.package_defects,
            wasted_kgd: self.wasted_kgd + rhs.wasted_kgd,
        }
    }
}

impl fmt::Display for ReCostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RE {} (chips {} + defects {} + package {} + pkg defects {} + wasted KGD {})",
            self.total(),
            self.raw_chips,
            self.chip_defects,
            self.raw_package,
            self.package_defects,
            self.wasted_kgd
        )
    }
}

/// NRE cost breakdown used by the total-cost figures (Figure 6, 8, 9, 10):
/// module design, chip-level design (incl. masks/IP), package design and D2D
/// interface design.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NreBreakdown {
    /// `Σ K_m·S_m` — module design and block verification.
    pub modules: Money,
    /// `Σ (K_c·S_c + C)` — system verification, physical design, masks, IP.
    pub chips: Money,
    /// `Σ (K_p·S_p + C_p)` — package/interposer design.
    pub packages: Money,
    /// `Σ C_D2D` — D2D interface design per node.
    pub d2d: Money,
}

impl NreBreakdown {
    /// The component labels, in the paper's Figure 6 legend order.
    pub const COMPONENT_LABELS: [&'static str; 4] = [
        "NRE Cost of Modules",
        "NRE Cost of Chips",
        "NRE Cost of Packages",
        "NRE Cost of D2D Interface",
    ];

    /// Total NRE.
    pub fn total(&self) -> Money {
        self.modules + self.chips + self.packages + self.d2d
    }

    /// Components paired with their labels.
    pub fn components(&self) -> [(&'static str, Money); 4] {
        [
            (Self::COMPONENT_LABELS[0], self.modules),
            (Self::COMPONENT_LABELS[1], self.chips),
            (Self::COMPONENT_LABELS[2], self.packages),
            (Self::COMPONENT_LABELS[3], self.d2d),
        ]
    }

    /// Scales every component (e.g. per-unit amortization).
    pub fn scaled(&self, factor: f64) -> NreBreakdown {
        NreBreakdown {
            modules: self.modules * factor,
            chips: self.chips * factor,
            packages: self.packages * factor,
            d2d: self.d2d * factor,
        }
    }

    /// `true` when every component is non-negative.
    pub fn is_non_negative(&self) -> bool {
        !self.modules.is_negative()
            && !self.chips.is_negative()
            && !self.packages.is_negative()
            && !self.d2d.is_negative()
    }
}

impl Add for NreBreakdown {
    type Output = NreBreakdown;

    fn add(self, rhs: NreBreakdown) -> NreBreakdown {
        NreBreakdown {
            modules: self.modules + rhs.modules,
            chips: self.chips + rhs.chips,
            packages: self.packages + rhs.packages,
            d2d: self.d2d + rhs.d2d,
        }
    }
}

impl fmt::Display for NreBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NRE {} (modules {} + chips {} + packages {} + D2D {})",
            self.total(),
            self.modules,
            self.chips,
            self.packages,
            self.d2d
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usd(v: f64) -> Money {
        Money::from_usd(v).unwrap()
    }

    fn sample() -> ReCostBreakdown {
        ReCostBreakdown {
            raw_chips: usd(100.0),
            chip_defects: usd(40.0),
            raw_package: usd(20.0),
            package_defects: usd(5.0),
            wasted_kgd: usd(3.0),
        }
    }

    #[test]
    fn totals() {
        let b = sample();
        assert_eq!(b.total().usd(), 168.0);
        assert_eq!(b.packaging_total().usd(), 28.0);
        assert_eq!(b.die_total().usd(), 140.0);
    }

    #[test]
    fn components_sum_to_total() {
        let b = sample();
        let sum: Money = b.components().iter().map(|(_, m)| *m).sum();
        assert_eq!(sum, b.total());
        assert_eq!(b.components()[0].0, "Cost of Raw Chips");
        assert_eq!(b.components()[4].0, "Cost of Wasted KGD");
    }

    #[test]
    fn scaling_and_adding() {
        let b = sample();
        let doubled = b.scaled(2.0);
        assert_eq!(doubled.total().usd(), 336.0);
        let sum = b + b;
        assert_eq!(sum.total(), doubled.total());
        assert!(b.is_non_negative());
    }

    #[test]
    fn negative_detection() {
        let mut b = sample();
        b.wasted_kgd = usd(-1.0);
        assert!(!b.is_non_negative());
    }

    #[test]
    fn nre_breakdown_totals() {
        let n = NreBreakdown {
            modules: usd(800.0),
            chips: usd(450.0),
            packages: usd(50.0),
            d2d: usd(10.0),
        };
        assert_eq!(n.total().usd(), 1310.0);
        let sum: Money = n.components().iter().map(|(_, m)| *m).sum();
        assert_eq!(sum, n.total());
        assert_eq!((n + n).total().usd(), 2620.0);
        assert_eq!(n.scaled(0.5).total().usd(), 655.0);
        assert!(n.is_non_negative());
    }

    #[test]
    fn display_mentions_every_component() {
        let b = sample();
        let s = b.to_string();
        assert!(s.contains("wasted KGD"), "{s}");
        let n = NreBreakdown::default();
        assert!(n.to_string().contains("D2D"));
    }
}
