//! The cost engine of the *Chiplet Actuary* model (DAC 2022).
//!
//! This crate implements the paper's equations on top of the technology
//! library ([`actuary_tech`]):
//!
//! * **RE (recurring engineering) cost** — [`re_cost`] computes the
//!   five-component breakdown of §3.2 (cost of raw chips, chip defects, raw
//!   package, package defects, and wasted known-good dies) for any die set
//!   and packaging technology, under either assembly flow of Eq. (5)
//!   ([`AssemblyFlow::ChipFirst`] / [`AssemblyFlow::ChipLast`]); the
//!   interposer/bonding yield algebra follows Eq. (4).
//! * **NRE (non-recurring engineering) cost** — the primitives of Eq. (6):
//!   [`module_design_cost`], [`chip_level_nre`], [`package_nre`] and
//!   [`d2d_nre`], from which portfolio-level NRE (Eq. (7)/(8)) is assembled
//!   by the `actuary-arch` crate.
//! * **Total cost** — [`TotalCost`] pairs RE with amortized NRE over a
//!   production [`Quantity`](actuary_units::Quantity) (§2.3).
//!
//! # Examples
//!
//! Compare a monolithic 800 mm² SoC at 5 nm with a two-chiplet MCM:
//!
//! ```
//! use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
//! use actuary_tech::{IntegrationKind, TechLibrary};
//! use actuary_units::Area;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let n5 = lib.node("5nm")?;
//!
//! let soc = re_cost(
//!     &[DiePlacement::new(n5, Area::from_mm2(800.0)?, 1)],
//!     lib.packaging(IntegrationKind::Soc)?,
//!     AssemblyFlow::ChipLast,
//! )?;
//! // Two chiplets of 400 mm² modules each + 10 % D2D overhead:
//! let die = n5.d2d().inflate_module_area(Area::from_mm2(400.0)?)?;
//! let mcm = re_cost(
//!     &[DiePlacement::new(n5, die, 2)],
//!     lib.packaging(IntegrationKind::Mcm)?,
//!     AssemblyFlow::ChipLast,
//! )?;
//! assert!(mcm.total() < soc.total(), "two chiplets must beat the 800 mm² SoC at 5 nm");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod breakdown;
mod error;
mod nre;
mod re;
mod total;

pub use breakdown::{NreBreakdown, ReCostBreakdown};
pub use error::ModelError;
pub use nre::{chip_level_nre, d2d_nre, module_design_cost, package_nre, package_nre_for_silicon};
pub use re::{overall_soc_yield, re_cost, re_cost_sized, AssemblyFlow, DiePlacement};
pub use total::TotalCost;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
