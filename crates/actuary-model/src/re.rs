//! RE (recurring engineering) cost: the paper's §3.2, Eq. (2), (4) and (5).

use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_tech::{PackagingTech, ProcessNode};
use actuary_units::{Area, Money, Prob};

use crate::breakdown::ReCostBreakdown;
use crate::error::ModelError;

/// A group of identical dies placed in one package: which process node they
/// are built on, the die area, and how many of them the package carries.
///
/// # Examples
///
/// ```
/// use actuary_model::DiePlacement;
/// use actuary_tech::TechLibrary;
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TechLibrary::paper_defaults()?;
/// let ccd = DiePlacement::new(lib.node("7nm")?, Area::from_mm2(74.0)?, 8);
/// assert_eq!(ccd.count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DiePlacement<'a> {
    node: &'a ProcessNode,
    area: Area,
    count: u32,
}

impl<'a> DiePlacement<'a> {
    /// Creates a placement of `count` identical dies.
    pub fn new(node: &'a ProcessNode, area: Area, count: u32) -> Self {
        DiePlacement { node, area, count }
    }

    /// The process node the dies are manufactured on.
    pub fn node(&self) -> &'a ProcessNode {
        self.node
    }

    /// Area of one die.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Number of identical dies in the package.
    pub fn count(&self) -> u32 {
        self.count
    }
}

/// The two assembly flows of the paper's Eq. (5).
///
/// In the **chip-first** flow the dies are committed to the package before
/// the packaging process completes, so every packaging defect destroys
/// known-good dies. In the **chip-last** (RDL-first) flow the package
/// (interposer) is manufactured and screened first; dies only risk the
/// bonding steps. The paper concludes chip-last "is the priority selection
/// for multi-chip systems" and uses it for all experiments — as does every
/// default in this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AssemblyFlow {
    /// Dies first, packaging after (cheap flow, wasteful on KGDs).
    ChipFirst,
    /// Packaging first, known-good dies bonded last (the paper's choice).
    #[default]
    ChipLast,
}

impl fmt::Display for AssemblyFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssemblyFlow::ChipFirst => f.write_str("chip-first"),
            AssemblyFlow::ChipLast => f.write_str("chip-last"),
        }
    }
}

impl std::str::FromStr for AssemblyFlow {
    type Err = String;

    /// Parses the user-facing flow grammar (`chip-first`/`first`,
    /// `chip-last`/`last`, case-insensitive) — the single definition the
    /// CLI flags and the scenario schema both use.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "chip-first" | "first" => Ok(AssemblyFlow::ChipFirst),
            "chip-last" | "last" => Ok(AssemblyFlow::ChipLast),
            other => Err(format!("unknown flow {other:?} (chip-first|chip-last)")),
        }
    }
}

/// The overall serial yield of a monolithic SoC, Eq. (2):
/// `Y_overall = Y_die × Y_packaging × Y_test` (wafer yield is folded into
/// the die defect density, as the paper's data does).
pub fn overall_soc_yield(node: &ProcessNode, die: Area, packaging: &PackagingTech) -> Prob {
    node.die_yield(die) * packaging.chip_bond_yield() * packaging.package_test_yield()
}

/// Computes the five-component RE cost of one packaged system (§3.2).
///
/// `dies` lists every die group in the package; `packaging` selects the
/// integration technology; `flow` selects the assembly flow of Eq. (5).
/// The result is the expected cost *per good packaged system*.
///
/// # Errors
///
/// * [`ModelError::InvalidConfiguration`] — empty die set, a zero die
///   count, or more than one die in a [`actuary_tech::IntegrationKind::Soc`]
///   package.
/// * [`ModelError::ZeroYield`] — a die, interposer, bonding or test yield of
///   zero makes the expected cost diverge.
/// * [`ModelError::Yield`] — a die or interposer does not fit its wafer.
///
/// # Examples
///
/// ```
/// use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
/// use actuary_tech::{IntegrationKind, TechLibrary};
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TechLibrary::paper_defaults()?;
/// let n7 = lib.node("7nm")?;
/// let breakdown = re_cost(
///     &[DiePlacement::new(n7, Area::from_mm2(222.2)?, 2)],
///     lib.packaging(IntegrationKind::Mcm)?,
///     AssemblyFlow::ChipLast,
/// )?;
/// assert!(breakdown.total().usd() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn re_cost(
    dies: &[DiePlacement<'_>],
    packaging: &PackagingTech,
    flow: AssemblyFlow,
) -> Result<ReCostBreakdown, ModelError> {
    re_cost_sized(dies, packaging, flow, None)
}

/// Like [`re_cost`], but sizes the package materials (substrate and
/// interposer) for `package_silicon` instead of the actual silicon carried.
///
/// This models *package reuse* (§5.1): when a package designed for a large
/// system is reused by a smaller one, the small system pays for the full
/// oversized substrate/interposer — "package reuse saves amortized NRE cost
/// of package for larger systems but wastes RE cost for smaller systems".
/// `None`, or any value smaller than the carried silicon, falls back to the
/// actual silicon.
///
/// # Errors
///
/// Same conditions as [`re_cost`].
pub fn re_cost_sized(
    dies: &[DiePlacement<'_>],
    packaging: &PackagingTech,
    flow: AssemblyFlow,
    package_silicon: Option<Area>,
) -> Result<ReCostBreakdown, ModelError> {
    if dies.is_empty() {
        return Err(ModelError::InvalidConfiguration {
            reason: "a system needs at least one die".to_string(),
        });
    }
    if dies.iter().any(|d| d.count() == 0) {
        return Err(ModelError::InvalidConfiguration {
            reason: "die placements must have a positive count".to_string(),
        });
    }
    let n_total: u32 = dies.iter().map(|d| d.count()).sum();
    if !packaging.kind().is_multi_chip() && n_total != 1 {
        return Err(ModelError::InvalidConfiguration {
            reason: format!(
                "a {} package carries exactly one die, got {n_total}",
                packaging.kind()
            ),
        });
    }

    // --- Die manufacturing: raw cost, defect cost, KGD cost. -------------
    let mut raw_chips = Money::ZERO;
    let mut chip_defects = Money::ZERO;
    let mut kgd_total = Money::ZERO;
    let mut total_silicon = Area::ZERO;
    for d in dies {
        let raw_one = d.node().raw_die_cost(d.area())?;
        let y = d.node().die_yield(d.area());
        if y.is_zero() {
            return Err(ModelError::ZeroYield {
                step: "die manufacturing",
            });
        }
        let raw = raw_one * d.count() as f64;
        let defects = raw * y.waste_factor()?;
        raw_chips += raw;
        chip_defects += defects;
        kgd_total += raw + defects;
        total_silicon += d.area() * d.count() as f64;
    }

    // --- Package materials. ----------------------------------------------
    // A reused package is sized for the largest member system; smaller
    // systems still pay for the full substrate/interposer.
    let sizing_silicon = match package_silicon {
        Some(s) => s.max(total_silicon),
        None => total_silicon,
    };
    let package_area = packaging.package_area(sizing_silicon)?;
    let substrate_raw = packaging.substrate_cost(package_area);
    let bonds_raw = packaging.bond_cost_per_chip() * n_total as f64;
    let assembly_raw = packaging.assembly_cost();

    let mut interposer_raw = Money::ZERO;
    let mut y1 = Prob::ONE;
    if let Some(spec) = packaging.interposer() {
        let interposer_area = spec.interposer_area(sizing_silicon)?;
        interposer_raw = spec.raw_cost(interposer_area)?;
        y1 = spec.manufacturing_yield(interposer_area);
        if y1.is_zero() {
            return Err(ModelError::ZeroYield {
                step: "interposer manufacturing",
            });
        }
    }
    let raw_package = substrate_raw + interposer_raw + bonds_raw + assembly_raw;

    // --- Yield chains. -----------------------------------------------------
    let y2_all = packaging.chip_bond_yield().powi(n_total);
    let y3 = packaging.substrate_attach_yield();
    let yt = packaging.package_test_yield();
    if y2_all.is_zero() {
        return Err(ModelError::ZeroYield {
            step: "chip bonding",
        });
    }
    if y3.is_zero() {
        return Err(ModelError::ZeroYield {
            step: "substrate attach",
        });
    }
    if yt.is_zero() {
        return Err(ModelError::ZeroYield {
            step: "final package test",
        });
    }

    let (package_defects, wasted_kgd) = match flow {
        AssemblyFlow::ChipLast => {
            if packaging.interposer().is_some() {
                // Chip-on-wafer-on-substrate, Eq. (4) with a final test
                // yield appended to every chain:
                //   interposer: manufactured (y1), chips bonded (y2ⁿ),
                //   attached to substrate (y3), tested (yt);
                //   substrate joins at attach; dies join at bonding.
                let int_chain = (y1 * y2_all * y3 * yt).reciprocal()?;
                let sub_chain = (y3 * yt).reciprocal()?;
                let die_chain = (y2_all * y3 * yt).reciprocal()?;
                let package_defects = interposer_raw * (int_chain - 1.0)
                    + substrate_raw * (sub_chain - 1.0)
                    + (bonds_raw + assembly_raw) * (die_chain - 1.0);
                let wasted_kgd = kgd_total * (die_chain - 1.0);
                (package_defects, wasted_kgd)
            } else {
                // SoC / MCM: dies bond directly onto the substrate.
                let chain = (y2_all * yt).reciprocal()?;
                let package_defects = (substrate_raw + bonds_raw + assembly_raw) * (chain - 1.0);
                let wasted_kgd = kgd_total * (chain - 1.0);
                (package_defects, wasted_kgd)
            }
        }
        AssemblyFlow::ChipFirst => {
            // Eq. (5), first line: the whole packaging chain (including
            // interposer fabrication) happens after the dies are committed,
            // so every packaging defect also destroys the dies.
            let chain = (y1 * y2_all * y3 * yt).reciprocal()?;
            let package_defects = raw_package * (chain - 1.0);
            let wasted_kgd = kgd_total * (chain - 1.0);
            (package_defects, wasted_kgd)
        }
    };

    Ok(ReCostBreakdown {
        raw_chips,
        chip_defects,
        raw_package,
        package_defects,
        wasted_kgd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_tech::{IntegrationKind, TechLibrary};
    use proptest::prelude::*;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    #[test]
    fn soc_hand_computation() {
        let lib = lib();
        let n7 = lib.node("7nm").unwrap();
        let soc = lib.packaging(IntegrationKind::Soc).unwrap();
        let die = area(100.0);
        let b = re_cost(
            &[DiePlacement::new(n7, die, 1)],
            soc,
            AssemblyFlow::ChipLast,
        )
        .unwrap();

        let raw = n7.raw_die_cost(die).unwrap();
        assert!((b.raw_chips.usd() - raw.usd()).abs() < 1e-9);

        let y = n7.die_yield(die);
        let expected_defects = raw.usd() * (1.0 / y.value() - 1.0);
        assert!((b.chip_defects.usd() - expected_defects).abs() < 1e-9);

        // Raw package: 400 mm² substrate at $0.005/mm² + $0.5 bond + $5.
        let expected_pkg = 400.0 * 0.005 + 0.5 + 5.0;
        assert!((b.raw_package.usd() - expected_pkg).abs() < 1e-9);

        // Packaging chain: y2·yt = 0.99².
        let chain = 1.0 / (0.99 * 0.99);
        let kgd = raw.usd() / y.value();
        assert!((b.wasted_kgd.usd() - kgd * (chain - 1.0)).abs() < 1e-9);
        assert!((b.package_defects.usd() - expected_pkg * (chain - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn eq4_structure_holds_for_chip_last_interposer() {
        // With the final-test yield set to 1, the chip-last breakdown must
        // reproduce Eq. (4) exactly.
        let mut lib = lib();
        let base = lib
            .packaging(IntegrationKind::TwoPointFiveD)
            .unwrap()
            .clone();
        let rebuilt = PackagingTech::builder(IntegrationKind::TwoPointFiveD)
            .substrate_cost_per_mm2(base.substrate_cost_per_mm2())
            .substrate_layer_factor(base.substrate_layer_factor())
            .package_body_factor(base.package_body_factor())
            .chip_bond_yield(base.chip_bond_yield())
            .substrate_attach_yield(base.substrate_attach_yield())
            .package_test_yield(Prob::ONE)
            .bond_cost_per_chip(Money::ZERO)
            .assembly_cost(Money::ZERO)
            .interposer(*base.interposer().unwrap())
            .build()
            .unwrap();
        lib.insert_packaging(rebuilt);
        let p = lib.packaging(IntegrationKind::TwoPointFiveD).unwrap();
        let n5 = lib.node("5nm").unwrap();

        let die = area(222.2);
        let n = 2u32;
        let b = re_cost(&[DiePlacement::new(n5, die, n)], p, AssemblyFlow::ChipLast).unwrap();

        let total_silicon = area(die.mm2() * n as f64);
        let spec = p.interposer().unwrap();
        let int_area = spec.interposer_area(total_silicon).unwrap();
        let c_int = spec.raw_cost(int_area).unwrap().usd();
        let y1 = spec.manufacturing_yield(int_area).value();
        let c_sub = p
            .substrate_cost(p.package_area(total_silicon).unwrap())
            .usd();
        let y2n = p.chip_bond_yield().value().powi(n as i32);
        let y3 = p.substrate_attach_yield().value();
        let kgd = b.raw_chips.usd() + b.chip_defects.usd();

        // Eq. (4): interposer, substrate and KGD defect terms.
        let expected_pkg_defects = c_int * (1.0 / (y1 * y2n * y3) - 1.0) + c_sub * (1.0 / y3 - 1.0);
        let expected_kgd = kgd * (1.0 / (y2n * y3) - 1.0);
        assert!(
            (b.package_defects.usd() - expected_pkg_defects).abs() < 1e-9,
            "package defects {} vs Eq.(4) {}",
            b.package_defects.usd(),
            expected_pkg_defects
        );
        assert!((b.wasted_kgd.usd() - expected_kgd).abs() < 1e-9);
        assert!((b.raw_package.usd() - (c_int + c_sub)).abs() < 1e-9);
    }

    #[test]
    fn chip_first_wastes_more_kgd_than_chip_last() {
        let lib = lib();
        let n5 = lib.node("5nm").unwrap();
        let p25 = lib.packaging(IntegrationKind::TwoPointFiveD).unwrap();
        let dies = [DiePlacement::new(n5, area(222.2), 2)];
        let first = re_cost(&dies, p25, AssemblyFlow::ChipFirst).unwrap();
        let last = re_cost(&dies, p25, AssemblyFlow::ChipLast).unwrap();
        assert!(
            first.wasted_kgd > last.wasted_kgd,
            "chip-first must waste more KGDs ({} vs {})",
            first.wasted_kgd,
            last.wasted_kgd
        );
        assert!(first.total() > last.total(), "chip-last must win overall");
        // Raw components are identical across flows.
        assert_eq!(first.raw_chips, last.raw_chips);
        assert_eq!(first.raw_package, last.raw_package);
    }

    #[test]
    fn flows_agree_without_interposer() {
        // For MCM the two flows differ only in nothing (no interposer stage),
        // so costs must match.
        let lib = lib();
        let n7 = lib.node("7nm").unwrap();
        let mcm = lib.packaging(IntegrationKind::Mcm).unwrap();
        let dies = [DiePlacement::new(n7, area(200.0), 3)];
        let first = re_cost(&dies, mcm, AssemblyFlow::ChipFirst).unwrap();
        let last = re_cost(&dies, mcm, AssemblyFlow::ChipLast).unwrap();
        assert!((first.total().usd() - last.total().usd()).abs() < 1e-9);
    }

    #[test]
    fn soc_rejects_multiple_dies() {
        let lib = lib();
        let n7 = lib.node("7nm").unwrap();
        let soc = lib.packaging(IntegrationKind::Soc).unwrap();
        let err = re_cost(
            &[DiePlacement::new(n7, area(100.0), 2)],
            soc,
            AssemblyFlow::ChipLast,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::InvalidConfiguration { .. }));
    }

    #[test]
    fn empty_and_zero_counts_rejected() {
        let lib = lib();
        let mcm = lib.packaging(IntegrationKind::Mcm).unwrap();
        assert!(matches!(
            re_cost(&[], mcm, AssemblyFlow::ChipLast),
            Err(ModelError::InvalidConfiguration { .. })
        ));
        let n7 = lib.node("7nm").unwrap();
        assert!(matches!(
            re_cost(
                &[DiePlacement::new(n7, area(100.0), 0)],
                mcm,
                AssemblyFlow::ChipLast
            ),
            Err(ModelError::InvalidConfiguration { .. })
        ));
    }

    #[test]
    fn single_chiplet_mcm_is_allowed() {
        // SCMS builds a 1X system on an MCM package (Figure 8).
        let lib = lib();
        let n7 = lib.node("7nm").unwrap();
        let mcm = lib.packaging(IntegrationKind::Mcm).unwrap();
        let b = re_cost(
            &[DiePlacement::new(n7, area(222.2), 1)],
            mcm,
            AssemblyFlow::ChipLast,
        );
        assert!(b.is_ok());
    }

    #[test]
    fn more_chiplets_cost_more_packaging() {
        let lib = lib();
        let n5 = lib.node("5nm").unwrap();
        let mcm = lib.packaging(IntegrationKind::Mcm).unwrap();
        // Same total silicon split in 2 vs 5 dies.
        let two = re_cost(
            &[DiePlacement::new(n5, area(400.0), 2)],
            mcm,
            AssemblyFlow::ChipLast,
        )
        .unwrap();
        let five = re_cost(
            &[DiePlacement::new(n5, area(160.0), 5)],
            mcm,
            AssemblyFlow::ChipLast,
        )
        .unwrap();
        assert!(
            five.packaging_total() > two.packaging_total(),
            "more bonds and worse bonding chain must cost more"
        );
        assert!(
            five.chip_defects < two.chip_defects,
            "smaller dies yield better"
        );
    }

    #[test]
    fn overall_soc_yield_is_serial_product() {
        let lib = lib();
        let n7 = lib.node("7nm").unwrap();
        let soc = lib.packaging(IntegrationKind::Soc).unwrap();
        let die = area(400.0);
        let y = overall_soc_yield(n7, die, soc);
        let expected = n7.die_yield(die).value() * 0.99 * 0.99;
        assert!((y.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn advanced_node_large_die_defect_cost_dominates() {
        // Paper §4.1: at 5 nm / 800 mm², die-defect cost exceeds 50 % of the
        // monolithic total.
        let lib = lib();
        let n5 = lib.node("5nm").unwrap();
        let soc = lib.packaging(IntegrationKind::Soc).unwrap();
        let b = re_cost(
            &[DiePlacement::new(n5, area(800.0), 1)],
            soc,
            AssemblyFlow::ChipLast,
        )
        .unwrap();
        let share = b.chip_defects.usd() / b.total().usd();
        assert!(share > 0.5, "defect share {share} must exceed 50%");
    }

    proptest! {
        #[test]
        fn breakdown_always_non_negative_and_consistent(
            mm2 in 20.0f64..800.0,
            count in 1u32..6,
            node_idx in 0usize..3,
            kind_idx in 0usize..3,
            chip_first in proptest::bool::ANY,
        ) {
            let lib = lib();
            let node = lib.node(["5nm", "7nm", "14nm"][node_idx]).unwrap();
            let kind = IntegrationKind::MULTI_CHIP[kind_idx];
            let p = lib.packaging(kind).unwrap();
            let flow = if chip_first { AssemblyFlow::ChipFirst } else { AssemblyFlow::ChipLast };
            let b = re_cost(&[DiePlacement::new(node, area(mm2), count)], p, flow).unwrap();
            prop_assert!(b.is_non_negative());
            let sum: Money = b.components().iter().map(|(_, m)| *m).sum();
            prop_assert!((sum.usd() - b.total().usd()).abs() < 1e-6);
            prop_assert!(b.total() >= b.raw_chips);
        }

        #[test]
        fn chip_last_never_loses_to_chip_first(
            mm2 in 20.0f64..400.0,
            count in 1u32..6,
            kind_idx in 0usize..3,
        ) {
            let lib = lib();
            let node = lib.node("5nm").unwrap();
            let kind = IntegrationKind::MULTI_CHIP[kind_idx];
            let p = lib.packaging(kind).unwrap();
            let dies = [DiePlacement::new(node, area(mm2), count)];
            let first = re_cost(&dies, p, AssemblyFlow::ChipFirst).unwrap();
            let last = re_cost(&dies, p, AssemblyFlow::ChipLast).unwrap();
            prop_assert!(last.total().usd() <= first.total().usd() + 1e-9);
        }
    }
}
