//! NRE (non-recurring engineering) cost primitives: the paper's §3.3,
//! Eq. (6)–(8).
//!
//! The paper expresses the NRE cost of any chip as
//!
//! `Cost = K_c·S_c + Σ K_m·S_mᵢ + C`                         (Eq. 6)
//!
//! where `K_c` covers chip-level work (system verification, physical
//! design), `K_m` covers module-level work (module design, block
//! verification) and `C` is the fixed per-chip cost (masks, IP licensing).
//! Families of systems (Eq. 7 for monolithic SoCs, Eq. 8 for chiplet-based
//! ones) sum these primitives while sharing module, chip, package and D2D
//! terms according to what is reused; that portfolio bookkeeping lives in
//! `actuary-arch`, built on the four primitives below.

use actuary_tech::{PackagingTech, ProcessNode};
use actuary_units::{Area, Money};

use crate::error::ModelError;

/// Module-design NRE: `K_m × S_m` (module design + block verification).
///
/// Paid once per distinct module, no matter how many chips or systems embed
/// it — the sharing rule behind both Eq. (7) and Eq. (8).
///
/// # Examples
///
/// ```
/// use actuary_model::module_design_cost;
/// use actuary_tech::TechLibrary;
/// use actuary_units::Area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = TechLibrary::paper_defaults()?;
/// let cost = module_design_cost(lib.node("14nm")?, Area::from_mm2(100.0)?);
/// assert_eq!(cost.musd(), 20.0);
/// # Ok(())
/// # }
/// ```
pub fn module_design_cost(node: &ProcessNode, module_area: Area) -> Money {
    node.nre().k_module * module_area.mm2()
}

/// Chip-level NRE: `K_c × S_c + C` (system verification, physical design,
/// plus the fixed mask-set and IP cost).
///
/// Paid once per distinct chip taped out. The module term of Eq. (6) is
/// *not* included here — add [`module_design_cost`] for every distinct
/// module the chip carries.
pub fn chip_level_nre(node: &ProcessNode, chip_area: Area) -> Money {
    node.nre().k_chip * chip_area.mm2() + node.nre().fixed_per_chip()
}

/// Package-design NRE: `K_p × S_p + C_p` (Eq. 7/8's package terms).
///
/// For interposer-based technologies the interposer area dominates the
/// design effort, so `S_p` should be the interposer area; for organic
/// substrates it is the package body area. [`package_nre_for_silicon`]
/// computes the right area from the carried silicon automatically.
pub fn package_nre(packaging: &PackagingTech, package_area: Area) -> Money {
    packaging.k_package_per_mm2() * package_area.mm2() + packaging.fixed_package_nre()
}

/// Package-design NRE derived from the total silicon the package carries
/// (picks interposer area for InFO/2.5D, body area otherwise).
///
/// # Errors
///
/// Returns [`ModelError::Unit`] if the derived area is invalid.
pub fn package_nre_for_silicon(
    packaging: &PackagingTech,
    total_silicon: Area,
) -> Result<Money, ModelError> {
    let area = match packaging.interposer() {
        Some(spec) => spec.interposer_area(total_silicon)?,
        None => packaging.package_area(total_silicon)?,
    };
    Ok(package_nre(packaging, area))
}

/// D2D-interface design NRE for one process node: the `C_D2D` of Eq. (8),
/// paid once per node used by a chiplet family.
pub fn d2d_nre(node: &ProcessNode) -> Money {
    node.d2d().nre_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_tech::{IntegrationKind, TechLibrary};
    use proptest::prelude::*;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    fn area(mm2: f64) -> Area {
        Area::from_mm2(mm2).unwrap()
    }

    #[test]
    fn module_cost_is_linear_in_area() {
        let lib = lib();
        let n5 = lib.node("5nm").unwrap();
        let one = module_design_cost(n5, area(100.0));
        let two = module_design_cost(n5, area(200.0));
        assert!((two.usd() - 2.0 * one.usd()).abs() < 1e-6);
        assert_eq!(module_design_cost(n5, Area::ZERO), Money::ZERO);
    }

    #[test]
    fn chip_nre_includes_fixed_cost() {
        let lib = lib();
        let n7 = lib.node("7nm").unwrap();
        let zero_area = chip_level_nre(n7, Area::ZERO);
        assert_eq!(zero_area, n7.nre().fixed_per_chip());
        let with_area = chip_level_nre(n7, area(100.0));
        assert!((with_area.usd() - (zero_area.usd() + 100.0 * n7.nre().k_chip.usd())).abs() < 1e-6);
    }

    #[test]
    fn package_nre_uses_interposer_area_for_advanced() {
        let lib = lib();
        let silicon = area(800.0);
        let mcm = lib.packaging(IntegrationKind::Mcm).unwrap();
        let p25 = lib.packaging(IntegrationKind::TwoPointFiveD).unwrap();
        let mcm_nre = package_nre_for_silicon(mcm, silicon).unwrap();
        let p25_nre = package_nre_for_silicon(p25, silicon).unwrap();
        // 2.5D: 880 mm² interposer at $30k/mm² + $5M fixed.
        let expected = 880.0 * 30_000.0 + 5.0e6;
        assert!((p25_nre.usd() - expected).abs() < 1.0);
        assert!(
            p25_nre > mcm_nre,
            "interposer design must dominate organic substrate design"
        );
    }

    #[test]
    fn d2d_nre_comes_from_node() {
        let lib = lib();
        assert_eq!(d2d_nre(lib.node("5nm").unwrap()).musd(), 15.0);
        assert_eq!(d2d_nre(lib.node("14nm").unwrap()).musd(), 6.0);
    }

    #[test]
    fn eq6_composition() {
        // Eq. (6) for a chip with two modules of 60 and 40 mm² plus 10 mm²
        // of D2D on 7 nm.
        let lib = lib();
        let n7 = lib.node("7nm").unwrap();
        let chip_area = area(110.0);
        let total = chip_level_nre(n7, chip_area)
            + module_design_cost(n7, area(60.0))
            + module_design_cost(n7, area(40.0));
        let k = n7.nre();
        let expected = k.k_chip.usd() * 110.0 + k.k_module.usd() * 100.0 + k.fixed_per_chip().usd();
        assert!((total.usd() - expected).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn nre_monotone_in_area(a in 0.0f64..900.0, b in 0.0f64..900.0) {
            let lib = lib();
            let n = lib.node("7nm").unwrap();
            let (small, large) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                chip_level_nre(n, area(small)).usd() <= chip_level_nre(n, area(large)).usd()
            );
            prop_assert!(
                module_design_cost(n, area(small)).usd()
                    <= module_design_cost(n, area(large)).usd()
            );
        }

        #[test]
        fn advanced_nodes_cost_more_nre(a in 1.0f64..900.0) {
            let lib = lib();
            let n5 = lib.node("5nm").unwrap();
            let n14 = lib.node("14nm").unwrap();
            prop_assert!(chip_level_nre(n5, area(a)) > chip_level_nre(n14, area(a)));
            prop_assert!(module_design_cost(n5, area(a)) > module_design_cost(n14, area(a)));
        }
    }
}
