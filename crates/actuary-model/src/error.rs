use std::error::Error;
use std::fmt;

use actuary_tech::TechError;
use actuary_units::UnitError;
use actuary_yield::YieldError;

/// Error produced by the cost engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The die set is inconsistent with the chosen packaging technology
    /// (e.g. several dies in a single-die SoC package, or an empty die set).
    InvalidConfiguration {
        /// What was wrong.
        reason: String,
    },
    /// A yield collapsed to zero so the expected cost diverges.
    ZeroYield {
        /// Which process step had zero yield.
        step: &'static str,
    },
    /// An underlying technology lookup or spec failed.
    Tech(TechError),
    /// An underlying yield/wafer computation failed.
    Yield(YieldError),
    /// An underlying unit value was invalid.
    Unit(UnitError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfiguration { reason } => {
                write!(f, "invalid system configuration: {reason}")
            }
            ModelError::ZeroYield { step } => {
                write!(f, "zero yield at {step}: the expected cost diverges")
            }
            ModelError::Tech(e) => write!(f, "{e}"),
            ModelError::Yield(e) => write!(f, "{e}"),
            ModelError::Unit(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Tech(e) => Some(e),
            ModelError::Yield(e) => Some(e),
            ModelError::Unit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TechError> for ModelError {
    fn from(e: TechError) -> Self {
        ModelError::Tech(e)
    }
}

impl From<YieldError> for ModelError {
    fn from(e: YieldError) -> Self {
        ModelError::Yield(e)
    }
}

impl From<UnitError> for ModelError {
    fn from(e: UnitError) -> Self {
        ModelError::Unit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = ModelError::InvalidConfiguration {
            reason: "no dies".into(),
        };
        assert!(e.to_string().contains("no dies"));
        let e = ModelError::ZeroYield {
            step: "interposer manufacturing",
        };
        assert!(e.to_string().contains("interposer"));
    }

    #[test]
    fn conversion_chain() {
        let unit = UnitError::DivisionByZero { context: "test" };
        let model: ModelError = unit.into();
        assert!(Error::source(&model).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ModelError>();
    }
}
