use std::fmt;

use serde::{Deserialize, Serialize};

use actuary_units::{Money, Quantity};

use crate::breakdown::{NreBreakdown, ReCostBreakdown};
use crate::error::ModelError;

/// Total engineering cost of one system: per-unit RE plus NRE amortized
/// over the production quantity (§2.3).
///
/// > "For one VLSI system, its final engineering cost consists of the RE and
/// > the amortized NRE cost."
///
/// # Examples
///
/// ```
/// use actuary_model::{NreBreakdown, ReCostBreakdown, TotalCost};
/// use actuary_units::{Money, Quantity};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let re = ReCostBreakdown { raw_chips: Money::from_usd(100.0)?, ..Default::default() };
/// let nre = NreBreakdown { chips: Money::from_musd(50.0)?, ..Default::default() };
/// let cost = TotalCost::new(re, nre, Quantity::new(500_000));
/// assert_eq!(cost.amortized_nre_per_unit()?.usd(), 100.0);
/// assert_eq!(cost.per_unit()?.usd(), 200.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TotalCost {
    re: ReCostBreakdown,
    nre: NreBreakdown,
    quantity: Quantity,
}

impl TotalCost {
    /// Bundles a per-unit RE breakdown with a total NRE breakdown amortized
    /// over `quantity` units.
    pub fn new(re: ReCostBreakdown, nre: NreBreakdown, quantity: Quantity) -> Self {
        TotalCost { re, nre, quantity }
    }

    /// The per-unit RE breakdown.
    pub fn re(&self) -> &ReCostBreakdown {
        &self.re
    }

    /// The total (un-amortized) NRE breakdown.
    pub fn nre(&self) -> &NreBreakdown {
        &self.nre
    }

    /// The production quantity the NRE is spread over.
    pub fn quantity(&self) -> Quantity {
        self.quantity
    }

    /// Per-unit RE cost.
    pub fn re_per_unit(&self) -> Money {
        self.re.total()
    }

    /// Per-unit amortized NRE.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unit`] if the quantity is zero.
    pub fn amortized_nre_per_unit(&self) -> Result<Money, ModelError> {
        Ok(self.nre.total().amortize(self.quantity)?)
    }

    /// Per-unit amortized NRE breakdown (each component divided by the
    /// quantity).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unit`] if the quantity is zero.
    pub fn amortized_nre_breakdown(&self) -> Result<NreBreakdown, ModelError> {
        if self.quantity.is_zero() {
            // Reuse Money::amortize's error for a consistent message.
            self.nre.total().amortize(self.quantity)?;
        }
        Ok(self.nre.scaled(1.0 / self.quantity.as_f64()))
    }

    /// Total per-unit engineering cost: RE + amortized NRE.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unit`] if the quantity is zero.
    pub fn per_unit(&self) -> Result<Money, ModelError> {
        Ok(self.re_per_unit() + self.amortized_nre_per_unit()?)
    }

    /// Program cost for the entire production run: `quantity × RE + NRE`.
    pub fn program_total(&self) -> Money {
        self.re.total() * self.quantity.as_f64() + self.nre.total()
    }

    /// Fraction of the per-unit cost that is RE (the paper's Figure 6 prints
    /// this percentage under each bar).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Unit`] if the quantity is zero or the total is
    /// zero.
    pub fn re_share(&self) -> Result<f64, ModelError> {
        let total = self.per_unit()?;
        Ok(self.re_per_unit().normalized_to(total)?)
    }
}

impl fmt::Display for TotalCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total cost over {} units: RE {} / unit, NRE {}",
            self.quantity,
            self.re.total(),
            self.nre.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn usd(v: f64) -> Money {
        Money::from_usd(v).unwrap()
    }

    fn sample() -> TotalCost {
        TotalCost::new(
            ReCostBreakdown {
                raw_chips: usd(60.0),
                chip_defects: usd(25.0),
                raw_package: usd(10.0),
                package_defects: usd(3.0),
                wasted_kgd: usd(2.0),
            },
            NreBreakdown {
                modules: usd(160.0e6),
                chips: usd(96.0e6),
                packages: usd(16.0e6),
                d2d: usd(6.0e6),
            },
            Quantity::new(2_000_000),
        )
    }

    #[test]
    fn per_unit_math() {
        let t = sample();
        assert_eq!(t.re_per_unit().usd(), 100.0);
        assert_eq!(t.amortized_nre_per_unit().unwrap().usd(), 139.0);
        assert_eq!(t.per_unit().unwrap().usd(), 239.0);
        assert!((t.re_share().unwrap() - 100.0 / 239.0).abs() < 1e-12);
    }

    #[test]
    fn program_total() {
        let t = sample();
        let expected = 100.0 * 2.0e6 + 278.0e6;
        assert!((t.program_total().usd() - expected).abs() < 1.0);
    }

    #[test]
    fn amortized_breakdown_sums_to_amortized_total() {
        let t = sample();
        let b = t.amortized_nre_breakdown().unwrap();
        assert!((b.total().usd() - t.amortized_nre_per_unit().unwrap().usd()).abs() < 1e-9);
        assert_eq!(b.modules.usd(), 80.0);
    }

    #[test]
    fn zero_quantity_errors() {
        let mut t = sample();
        t = TotalCost::new(*t.re(), *t.nre(), Quantity::ZERO);
        assert!(t.amortized_nre_per_unit().is_err());
        assert!(t.per_unit().is_err());
        assert!(t.amortized_nre_breakdown().is_err());
    }

    #[test]
    fn display() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("2,000,000"), "{s}");
    }

    proptest! {
        #[test]
        fn re_share_increases_with_quantity(q in 1u64..100_000_000) {
            let base = sample();
            let small = TotalCost::new(*base.re(), *base.nre(), Quantity::new(q));
            let large = TotalCost::new(*base.re(), *base.nre(), Quantity::new(q * 10));
            prop_assert!(large.re_share().unwrap() >= small.re_share().unwrap());
        }

        #[test]
        fn per_unit_approaches_re_at_scale(q in 1_000_000_000u64..10_000_000_000) {
            let base = sample();
            let t = TotalCost::new(*base.re(), *base.nre(), Quantity::new(q));
            let per_unit = t.per_unit().unwrap().usd();
            prop_assert!((per_unit - 100.0) < 1.0, "per-unit {per_unit} must approach RE");
        }
    }
}
