//! Figure 10: average total cost of the FSMC reuse scheme — `n` chiplet
//! types in a `k`-socket package building every multiset collocation —
//! across five `(k, n)` situations, as SoC / MCM / 2.5D, normalized to the
//! SoC average of the first situation.

use actuary_arch::reuse::FsmcSpec;
use actuary_model::AssemblyFlow;
use actuary_report::{StackedBarChart, Table};
use actuary_tech::{IntegrationKind, TechLibrary};

use crate::common::{pct, ShapeCheck};
use crate::Result;

/// The five `(sockets k, chiplet types n)` situations of the paper.
pub const SITUATIONS: [(u32, u32); 5] = [(2, 2), (2, 4), (3, 4), (4, 4), (4, 6)];

/// One bar of Figure 10 (one situation × one integration).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Cell {
    /// Number of package sockets `k`.
    pub sockets: u32,
    /// Number of chiplet types `n`.
    pub chiplet_types: u32,
    /// Integration scheme of the bar.
    pub integration: IntegrationKind,
    /// Number of systems built (`Σ C(n+i−1, i)`).
    pub system_count: u64,
    /// Average normalized per-unit RE.
    pub re_norm: f64,
    /// Average normalized per-unit amortized NRE (modules).
    pub nre_modules_norm: f64,
    /// Average normalized per-unit amortized NRE (chips).
    pub nre_chips_norm: f64,
    /// Average normalized per-unit amortized NRE (packages + D2D).
    pub nre_packages_norm: f64,
}

impl Fig10Cell {
    /// Average normalized per-unit total.
    pub fn total(&self) -> f64 {
        self.re_norm + self.nre_modules_norm + self.nre_chips_norm + self.nre_packages_norm
    }

    /// NRE share of the average total.
    pub fn nre_share(&self) -> f64 {
        1.0 - self.re_norm / self.total()
    }
}

/// The full Figure 10 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// Every bar: 5 situations × 3 integrations.
    pub cells: Vec<Fig10Cell>,
}

/// Average per-unit components across a portfolio's systems (unweighted, as
/// the paper's "average normalized cost").
fn averages(cost: &actuary_arch::PortfolioCost) -> (f64, f64, f64, f64) {
    let n = cost.systems().len() as f64;
    let mut re = 0.0;
    let mut modules = 0.0;
    let mut chips = 0.0;
    let mut packages = 0.0;
    for sc in cost.systems() {
        re += sc.re().total().usd();
        let nre = sc.nre_per_unit();
        modules += nre.modules.usd();
        chips += nre.chips.usd();
        packages += nre.packages.usd() + nre.d2d.usd();
    }
    (re / n, modules / n, chips / n, packages / n)
}

/// Computes the Figure 10 dataset.
///
/// # Errors
///
/// Propagates library and cost-engine errors.
pub fn compute(lib: &TechLibrary) -> Result<Fig10> {
    let flow = AssemblyFlow::ChipLast;

    // Normalization basis: SoC average of the first situation.
    let first_soc = FsmcSpec::paper_example(SITUATIONS[0].0, SITUATIONS[0].1)?
        .soc_portfolio()?
        .cost(lib, flow)?;
    let (re, m, c, p) = averages(&first_soc);
    let basis = re + m + c + p;

    let mut cells = Vec::new();
    for (k, n) in SITUATIONS {
        for kind in [
            IntegrationKind::Soc,
            IntegrationKind::Mcm,
            IntegrationKind::TwoPointFiveD,
        ] {
            let mut spec = FsmcSpec::paper_example(k, n)?;
            let cost = if kind == IntegrationKind::Soc {
                spec.soc_portfolio()?.cost(lib, flow)?
            } else {
                spec.integration = kind;
                spec.portfolio()?.cost(lib, flow)?
            };
            let (re, modules, chips, packages) = averages(&cost);
            cells.push(Fig10Cell {
                sockets: k,
                chiplet_types: n,
                integration: kind,
                system_count: spec.system_count(),
                re_norm: re / basis,
                nre_modules_norm: modules / basis,
                nre_chips_norm: chips / basis,
                nre_packages_norm: packages / basis,
            });
        }
    }
    Ok(Fig10 { cells })
}

impl Fig10 {
    /// Looks up one bar.
    pub fn cell(&self, k: u32, n: u32, integration: IntegrationKind) -> Option<&Fig10Cell> {
        self.cells
            .iter()
            .find(|c| c.sockets == k && c.chiplet_types == n && c.integration == integration)
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut chart =
            StackedBarChart::new("Figure 10: FSMC reuse, average cost (normalized to k=2,n=2 SoC)");
        for (k, n) in SITUATIONS {
            for kind in [
                IntegrationKind::Soc,
                IntegrationKind::Mcm,
                IntegrationKind::TwoPointFiveD,
            ] {
                if let Some(c) = self.cell(k, n, kind) {
                    chart.push_bar(
                        format!("k={k} n={n} {kind}"),
                        &[
                            ("RE", c.re_norm),
                            ("NRE modules", c.nre_modules_norm),
                            ("NRE chips", c.nre_chips_norm),
                            ("NRE packages+D2D", c.nre_packages_norm),
                        ],
                    );
                }
            }
        }
        chart.render(48)
    }

    /// The dataset as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "sockets",
            "types",
            "integration",
            "systems",
            "re",
            "nre_modules",
            "nre_chips",
            "nre_packages",
            "total",
            "nre_share",
        ]);
        for c in &self.cells {
            table.push_row(vec![
                c.sockets.to_string(),
                c.chiplet_types.to_string(),
                c.integration.to_string(),
                c.system_count.to_string(),
                format!("{:.3}", c.re_norm),
                format!("{:.3}", c.nre_modules_norm),
                format!("{:.3}", c.nre_chips_norm),
                format!("{:.3}", c.nre_packages_norm),
                format!("{:.3}", c.total()),
                pct(c.nre_share()),
            ]);
        }
        table
    }

    /// The paper's qualitative claims about Figure 10 (§5.3).
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();

        // More reuse → lower average MCM NRE; at (4,6) it is nearly
        // negligible ("small enough to be ignored").
        if let (Some(low), Some(high)) = (
            self.cell(2, 2, IntegrationKind::Mcm),
            self.cell(4, 6, IntegrationKind::Mcm),
        ) {
            let nre_low = low.total() - low.re_norm;
            let nre_high = high.total() - high.re_norm;
            checks.push(ShapeCheck::new(
                "more reuse lowers the average amortized NRE (MCM, (2,2)→(4,6))",
                "NRE(4,6) < NRE(2,2)",
                format!("{nre_low:.3} → {nre_high:.3}"),
                nre_high < nre_low,
            ));
            checks.push(ShapeCheck::new(
                "at full reuse the amortized NRE is small enough to be ignored",
                "NRE share < 15% at (4,6) MCM",
                pct(high.nre_share()),
                high.nre_share() < 0.15,
            ));
        }
        // Multi-chip beats SoC on average in the high-reuse situations.
        {
            let mut measured = Vec::new();
            let mut ok = true;
            for (k, n) in [(3u32, 4u32), (4, 4), (4, 6)] {
                if let (Some(mcm), Some(soc)) = (
                    self.cell(k, n, IntegrationKind::Mcm),
                    self.cell(k, n, IntegrationKind::Soc),
                ) {
                    measured.push(format!(
                        "(k={k},n={n}): {:.2} vs {:.2}",
                        mcm.total(),
                        soc.total()
                    ));
                    if mcm.total() >= soc.total() {
                        ok = false;
                    }
                }
            }
            checks.push(ShapeCheck::new(
                "with high reuse, MCM average total beats the SoC average",
                "MCM < SoC for (3,4), (4,4), (4,6)",
                measured.join("; "),
                ok,
            ));
        }
        // The system-count formula values (and the paper's 119 vs 209
        // discrepancy, recorded but not failed on).
        if let Some(c) = self.cell(4, 6, IntegrationKind::Mcm) {
            checks.push(ShapeCheck::new(
                "Σ C(n+i−1, i) for n=6, k=4 (paper prose says 'up to 119')",
                "209 by the printed formula (119 in prose — discrepancy documented)",
                c.system_count.to_string(),
                c.system_count == 209,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig10 {
        compute(&TechLibrary::paper_defaults().unwrap()).unwrap()
    }

    #[test]
    fn dataset_dimensions() {
        let f = fig();
        assert_eq!(f.cells.len(), 5 * 3);
        assert_eq!(
            f.cell(4, 6, IntegrationKind::Mcm).unwrap().system_count,
            209
        );
        assert_eq!(f.cell(2, 2, IntegrationKind::Mcm).unwrap().system_count, 5);
    }

    #[test]
    fn all_shape_checks_pass() {
        for c in fig().checks() {
            assert!(c.pass, "{c}");
        }
    }

    #[test]
    fn normalization_first_soc_is_one() {
        let f = fig();
        let c = f.cell(2, 2, IntegrationKind::Soc).unwrap();
        assert!((c.total() - 1.0).abs() < 1e-9, "{}", c.total());
    }

    #[test]
    fn mcm_nre_monotone_decreasing_across_situations() {
        let f = fig();
        let mut last = f64::INFINITY;
        for (k, n) in SITUATIONS {
            let c = f.cell(k, n, IntegrationKind::Mcm).unwrap();
            let nre = c.total() - c.re_norm;
            assert!(
                nre <= last + 1e-9,
                "(k={k},n={n}): NRE {nre} rose above {last}"
            );
            last = nre;
        }
    }

    #[test]
    fn render_and_table() {
        let f = fig();
        assert!(f.render().contains("k=4 n=6"));
        assert_eq!(f.to_table().row_count(), 15);
    }
}
