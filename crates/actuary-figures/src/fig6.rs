//! Figure 6: total (RE + amortized NRE) cost structure of a single
//! 800 mm²-module system at 14 nm and 5 nm, built as a monolithic SoC or as
//! two chiplets on MCM/InFO/2.5D, across production quantities 500 k / 2 M
//! / 10 M — normalized to the SoC RE cost of each node.

use actuary_arch::{partition::equal_chiplets, Portfolio, System, SystemCost};
use actuary_model::AssemblyFlow;
use actuary_report::{StackedBarChart, Table};
use actuary_tech::{IntegrationKind, TechLibrary};
use actuary_units::{Area, Quantity};

use crate::common::{pct, ShapeCheck};
use crate::Result;

/// The two panel nodes.
pub const NODES: [&str; 2] = ["14nm", "5nm"];
/// The production quantities of the paper.
pub const QUANTITIES: [u64; 3] = [500_000, 2_000_000, 10_000_000];
/// Total module area of the single system.
pub const MODULE_AREA_MM2: f64 = 800.0;
/// Chiplet count of the multi-chip variants.
pub const CHIPLETS: u32 = 2;

/// One bar of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Cell {
    /// Panel node.
    pub node: String,
    /// Production quantity.
    pub quantity: u64,
    /// Integration scheme.
    pub integration: IntegrationKind,
    /// Per-unit RE, normalized to the node's SoC RE.
    pub re_norm: f64,
    /// Per-unit amortized module NRE (normalized).
    pub nre_modules_norm: f64,
    /// Per-unit amortized chip NRE (normalized).
    pub nre_chips_norm: f64,
    /// Per-unit amortized package NRE (normalized).
    pub nre_packages_norm: f64,
    /// Per-unit amortized D2D NRE (normalized).
    pub nre_d2d_norm: f64,
}

impl Fig6Cell {
    /// Normalized per-unit total.
    pub fn total(&self) -> f64 {
        self.re_norm
            + self.nre_modules_norm
            + self.nre_chips_norm
            + self.nre_packages_norm
            + self.nre_d2d_norm
    }

    /// RE share of the total (the percentage the paper prints under each
    /// bar).
    pub fn re_share(&self) -> f64 {
        self.re_norm / self.total()
    }

    /// Share of one NRE component in the total.
    pub fn share_of(&self, component: f64) -> f64 {
        component / self.total()
    }
}

/// The full Figure 6 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// Every bar: 2 nodes × 3 quantities × 4 integrations.
    pub cells: Vec<Fig6Cell>,
}

/// Builds the single system of one bar (no reuse: distinct chiplets).
fn build_system(node: &str, integration: IntegrationKind, quantity: u64) -> Result<System> {
    let area = Area::from_mm2(MODULE_AREA_MM2)?;
    let chips = if integration.is_multi_chip() {
        equal_chiplets("fig6", node, area, CHIPLETS)?
    } else {
        equal_chiplets("fig6", node, area, 1)?
    };
    let mut builder = System::builder("fig6-sys", integration).quantity(Quantity::new(quantity));
    for chip in chips {
        builder = builder.chip(chip, 1);
    }
    builder.build()
}

/// Per-unit cost of one bar.
fn system_cost(lib: &TechLibrary, system: System) -> Result<SystemCost> {
    let cost = Portfolio::new(vec![system]).cost(lib, AssemblyFlow::ChipLast)?;
    Ok(cost.systems()[0].clone())
}

/// Computes the Figure 6 dataset.
///
/// # Errors
///
/// Propagates library and cost-engine errors.
pub fn compute(lib: &TechLibrary) -> Result<Fig6> {
    let mut cells = Vec::new();
    for node in NODES {
        // Normalization basis: the node's SoC RE (quantity-independent).
        let soc = system_cost(lib, build_system(node, IntegrationKind::Soc, 1_000_000)?)?;
        let basis = soc.re().total().usd();
        for &quantity in &QUANTITIES {
            for kind in IntegrationKind::ALL {
                let sc = system_cost(lib, build_system(node, kind, quantity)?)?;
                let nre = sc.nre_per_unit();
                cells.push(Fig6Cell {
                    node: node.to_string(),
                    quantity,
                    integration: kind,
                    re_norm: sc.re().total().usd() / basis,
                    nre_modules_norm: nre.modules.usd() / basis,
                    nre_chips_norm: nre.chips.usd() / basis,
                    nre_packages_norm: nre.packages.usd() / basis,
                    nre_d2d_norm: nre.d2d.usd() / basis,
                });
            }
        }
    }
    Ok(Fig6 { cells })
}

impl Fig6 {
    /// Looks up one bar.
    pub fn cell(
        &self,
        node: &str,
        quantity: u64,
        integration: IntegrationKind,
    ) -> Option<&Fig6Cell> {
        self.cells
            .iter()
            .find(|c| c.node == node && c.quantity == quantity && c.integration == integration)
    }

    /// Renders one panel (node) as a stacked bar chart.
    pub fn render_panel(&self, node: &str) -> String {
        let mut chart = StackedBarChart::new(format!(
            "Figure 6 panel: {CHIPLETS} chiplets, {node} (normalized to SoC RE)"
        ));
        for &q in &QUANTITIES {
            for kind in IntegrationKind::ALL {
                if let Some(c) = self.cell(node, q, kind) {
                    chart.push_bar(
                        format!("{}k {kind}", q / 1_000),
                        &[
                            ("RE Cost of Systems", c.re_norm),
                            ("NRE Cost of Modules", c.nre_modules_norm),
                            ("NRE Cost of Chips", c.nre_chips_norm),
                            ("NRE Cost of Packages", c.nre_packages_norm),
                            ("NRE Cost of D2D Interface", c.nre_d2d_norm),
                        ],
                    );
                }
            }
        }
        chart.render(48)
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}",
            self.render_panel("14nm"),
            self.render_panel("5nm")
        )
    }

    /// The dataset as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "node",
            "quantity",
            "integration",
            "re",
            "nre_modules",
            "nre_chips",
            "nre_packages",
            "nre_d2d",
            "total",
            "re_share",
        ]);
        for c in &self.cells {
            table.push_row(vec![
                c.node.clone(),
                c.quantity.to_string(),
                c.integration.to_string(),
                format!("{:.3}", c.re_norm),
                format!("{:.3}", c.nre_modules_norm),
                format!("{:.3}", c.nre_chips_norm),
                format!("{:.3}", c.nre_packages_norm),
                format!("{:.3}", c.nre_d2d_norm),
                format!("{:.3}", c.total()),
                pct(c.re_share()),
            ]);
        }
        table
    }

    /// The paper's qualitative claims about Figure 6 (§4.2).
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();

        // D2D NRE ≤ 2 % of the total for every multi-chip bar.
        {
            let mut worst = 0.0f64;
            for c in &self.cells {
                if c.integration.is_multi_chip() {
                    worst = worst.max(c.share_of(c.nre_d2d_norm));
                }
            }
            checks.push(ShapeCheck::new(
                "the D2D interface NRE overhead is no more than 2%",
                "≤ 2%",
                pct(worst),
                worst <= 0.02,
            ));
        }
        // Package NRE ≤ 9 % (worst case is 2.5D at the smallest quantity).
        {
            let mut worst = 0.0f64;
            for c in &self.cells {
                worst = worst.max(c.share_of(c.nre_packages_norm));
            }
            checks.push(ShapeCheck::new(
                "the packaging NRE overhead is no more than 9% (2.5D)",
                "≤ 9%",
                pct(worst),
                worst <= 0.09,
            ));
        }
        // Multi-chip chip NRE ≈ 36 % of the total at 500 k (5 nm MCM).
        if let Some(c) = self.cell("5nm", 500_000, IntegrationKind::Mcm) {
            let share = c.share_of(c.nre_chips_norm);
            checks.push(ShapeCheck::new(
                "multi-chip chip NRE is ~36% of total at 500k (5nm MCM)",
                "~36% (25-45%)",
                pct(share),
                (0.25..=0.45).contains(&share),
            ));
        }
        // 5 nm multi-chip pays back at ~2 M units: SoC wins at 500 k, MCM
        // wins by 2 M.
        {
            let soc_500k = self.cell("5nm", 500_000, IntegrationKind::Soc);
            let mcm_500k = self.cell("5nm", 500_000, IntegrationKind::Mcm);
            let soc_2m = self.cell("5nm", 2_000_000, IntegrationKind::Soc);
            let mcm_2m = self.cell("5nm", 2_000_000, IntegrationKind::Mcm);
            if let (Some(s5), Some(m5), Some(s2), Some(m2)) = (soc_500k, mcm_500k, soc_2m, mcm_2m) {
                checks.push(ShapeCheck::new(
                    "at 5nm multi-chip pays back when quantity reaches ~2M",
                    "SoC ≤ MCM at 500k, MCM ≤ SoC at 2M",
                    format!(
                        "500k: {:.2} vs {:.2}; 2M: {:.2} vs {:.2}",
                        s5.total(),
                        m5.total(),
                        s2.total(),
                        m2.total()
                    ),
                    s5.total() <= m5.total() && m2.total() <= s2.total(),
                ));
            }
        }
        // RE share of the 14 nm SoC grows ≈ 22 % → 53 % → 85 %.
        {
            let targets = [(500_000u64, 0.22), (2_000_000, 0.53), (10_000_000, 0.85)];
            let mut measured = Vec::new();
            let mut ok = true;
            for (q, expected) in targets {
                if let Some(c) = self.cell("14nm", q, IntegrationKind::Soc) {
                    let share = c.re_share();
                    measured.push(format!("{}k:{}", q / 1000, pct(share)));
                    if (share - expected).abs() > 0.10 {
                        ok = false;
                    }
                }
            }
            checks.push(ShapeCheck::new(
                "14nm SoC RE share grows ≈ 22% → 53% → 85% with quantity",
                "22% / 53% / 85% (±10 pts)",
                measured.join(" "),
                ok,
            ));
        }
        // Monolithic SoC is the better choice at 500 k for both nodes.
        {
            let mut ok = true;
            let mut measured = Vec::new();
            for node in NODES {
                if let (Some(soc), Some(mcm)) = (
                    self.cell(node, 500_000, IntegrationKind::Soc),
                    self.cell(node, 500_000, IntegrationKind::Mcm),
                ) {
                    measured.push(format!("{node}: {:.2} vs {:.2}", soc.total(), mcm.total()));
                    if soc.total() > mcm.total() {
                        ok = false;
                    }
                }
            }
            checks.push(ShapeCheck::new(
                "monolithic SoC is the better single-system choice at 500k",
                "SoC ≤ MCM at 500k",
                measured.join("; "),
                ok,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig6 {
        compute(&TechLibrary::paper_defaults().unwrap()).unwrap()
    }

    #[test]
    fn dataset_dimensions() {
        assert_eq!(fig().cells.len(), 2 * 3 * 4);
    }

    #[test]
    fn re_does_not_depend_on_quantity() {
        let f = fig();
        let a = f.cell("5nm", 500_000, IntegrationKind::Mcm).unwrap();
        let b = f.cell("5nm", 10_000_000, IntegrationKind::Mcm).unwrap();
        assert!((a.re_norm - b.re_norm).abs() < 1e-9);
        assert!(
            a.nre_chips_norm > b.nre_chips_norm,
            "NRE amortizes with quantity"
        );
    }

    #[test]
    fn soc_re_normalizes_to_one() {
        let f = fig();
        for node in NODES {
            let c = f.cell(node, 500_000, IntegrationKind::Soc).unwrap();
            assert!((c.re_norm - 1.0).abs() < 1e-9, "{node}: {}", c.re_norm);
            assert_eq!(c.nre_d2d_norm, 0.0, "SoC has no D2D");
        }
    }

    #[test]
    fn all_shape_checks_pass() {
        for c in fig().checks() {
            assert!(c.pass, "{c}");
        }
    }

    #[test]
    fn totals_decrease_with_quantity() {
        let f = fig();
        for node in NODES {
            for kind in IntegrationKind::ALL {
                let t500 = f.cell(node, 500_000, kind).unwrap().total();
                let t10m = f.cell(node, 10_000_000, kind).unwrap().total();
                assert!(t10m < t500, "{node} {kind}");
            }
        }
    }

    #[test]
    fn render_and_table() {
        let f = fig();
        let text = f.render();
        assert!(text.contains("14nm"));
        assert!(text.contains("5nm"));
        assert_eq!(f.to_table().row_count(), 24);
    }
}
