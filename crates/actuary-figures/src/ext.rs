//! Extension studies beyond the paper's figures.
//!
//! Two analyses the paper motivates in prose but does not plot:
//!
//! * [`maturity_study`] — §4.1: "As the yield of 7 nm technology improves
//!   in recent years, the advantage is further smaller." We sweep a
//!   defect-density learning curve and track the chiplet saving over
//!   process age.
//! * [`harvest_study`] — the industry practice the paper's EPYC reference
//!   relies on: partial-good die salvage (binning), which the base model's
//!   all-or-nothing yield ignores. We quantify how salvage changes the
//!   effective cost of both the chiplet and the monolithic option.

use actuary_dse::maturity::{library_at_age, DefectRamp};
use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
use actuary_report::Table;
use actuary_tech::{IntegrationKind, TechLibrary};
use actuary_units::Area;
use actuary_yield::HarvestSpec;

use crate::common::{pct, ShapeCheck};
use crate::Result;

/// One sampled age of the maturity study.
#[derive(Debug, Clone, PartialEq)]
pub struct MaturityRow {
    /// Process age in months.
    pub age_months: f64,
    /// Defect density at this age (/cm²).
    pub defect_density: f64,
    /// Monolithic SoC RE cost (USD/unit).
    pub soc_cost_usd: f64,
    /// Two-chiplet MCM RE cost (USD/unit).
    pub mcm_cost_usd: f64,
}

impl MaturityRow {
    /// Relative chiplet saving vs monolithic at this age.
    pub fn saving(&self) -> f64 {
        (self.soc_cost_usd - self.mcm_cost_usd) / self.soc_cost_usd
    }
}

/// The maturity study result.
#[derive(Debug, Clone, PartialEq)]
pub struct MaturityStudy {
    /// Sampled rows in age order.
    pub rows: Vec<MaturityRow>,
}

/// Sweeps a 7 nm defect ramp (0.13 → 0.05, τ = 12 months) over the first
/// four years of the process and compares a 600 mm² monolithic die with two
/// chiplets on MCM.
///
/// # Errors
///
/// Propagates library and cost-engine errors.
pub fn maturity_study(lib: &TechLibrary) -> Result<MaturityStudy> {
    let ramp = DefectRamp::new(0.13, 0.05, 12.0)?;
    let module_area = Area::from_mm2(600.0)?;
    let mut rows = Vec::new();
    for age in [0.0, 6.0, 12.0, 18.0, 24.0, 36.0, 48.0] {
        let snapshot = library_at_age(lib, "7nm", &ramp, age)?;
        let node = snapshot.node("7nm")?;
        let soc = re_cost(
            &[DiePlacement::new(node, module_area, 1)],
            snapshot.packaging(IntegrationKind::Soc)?,
            AssemblyFlow::ChipLast,
        )?;
        let die = node.d2d().inflate_module_area(module_area / 2.0)?;
        let mcm = re_cost(
            &[DiePlacement::new(node, die, 2)],
            snapshot.packaging(IntegrationKind::Mcm)?,
            AssemblyFlow::ChipLast,
        )?;
        rows.push(MaturityRow {
            age_months: age,
            defect_density: node.defect_density().value(),
            soc_cost_usd: soc.total().usd(),
            mcm_cost_usd: mcm.total().usd(),
        });
    }
    Ok(MaturityStudy { rows })
}

impl MaturityStudy {
    /// The study as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "age_months",
            "defect_density",
            "soc_usd",
            "mcm_usd",
            "saving",
        ]);
        for r in &self.rows {
            table.push_row(vec![
                format!("{:.0}", r.age_months),
                format!("{:.3}", r.defect_density),
                format!("{:.2}", r.soc_cost_usd),
                format!("{:.2}", r.mcm_cost_usd),
                pct(r.saving()),
            ]);
        }
        table
    }

    /// The §4.1 claims about process maturity.
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        if let (Some(first), Some(last)) = (self.rows.first(), self.rows.last()) {
            checks.push(ShapeCheck::new(
                "the chiplet advantage shrinks as the process matures",
                "saving(48mo) < saving(0mo)",
                format!("{} → {}", pct(first.saving()), pct(last.saving())),
                last.saving() < first.saving(),
            ));
            checks.push(ShapeCheck::new(
                "chiplets win on the immature process",
                "saving(0mo) > 0",
                pct(first.saving()),
                first.saving() > 0.0,
            ));
        }
        let monotone = self
            .rows
            .windows(2)
            .all(|w| w[1].saving() <= w[0].saving() + 1e-9);
        checks.push(ShapeCheck::new(
            "the saving declines monotonically with age",
            "monotone decreasing",
            if monotone { "monotone" } else { "non-monotone" }.to_string(),
            monotone,
        ));
        checks
    }
}

/// One bin requirement of the harvest study.
#[derive(Debug, Clone, PartialEq)]
pub struct HarvestRow {
    /// Minimum good cores out of 8 for the die to be sellable.
    pub min_good: u32,
    /// Sellable yield of the 74 mm² CCD.
    pub ccd_yield: f64,
    /// Effective cost per sellable CCD (USD).
    pub ccd_cost_usd: f64,
    /// Sellable yield of the ~700 mm² monolithic 64-core die (same core
    /// fraction salvaged).
    pub mono_yield: f64,
    /// Effective cost per sellable monolithic die (USD).
    pub mono_cost_usd: f64,
}

/// The harvest study result.
#[derive(Debug, Clone, PartialEq)]
pub struct HarvestStudy {
    /// One row per bin requirement (8-of-8 down to 4-of-8 equivalents).
    pub rows: Vec<HarvestRow>,
}

/// Compares salvage on an EPYC-style 74 mm² 8-core CCD against a ~700 mm²
/// monolithic 64-core die at early-ramp 7 nm (D = 0.13), for a range of
/// bin requirements (same fraction of cores required on both).
///
/// # Errors
///
/// Propagates library and yield-model errors.
pub fn harvest_study(lib: &TechLibrary) -> Result<HarvestStudy> {
    let node = lib.node("7nm")?;
    let d = actuary_yield::DefectDensity::per_cm2(0.13)?;
    let cluster = node.cluster();
    let ccd = Area::from_mm2(74.0)?;
    let mono = Area::from_mm2(700.0)?;
    let ccd_raw = node.wafer().raw_die_cost(node.wafer_price(), ccd)?;
    let mono_raw = node.wafer().raw_die_cost(node.wafer_price(), mono)?;

    let mut rows = Vec::new();
    for min_good in [8u32, 7, 6, 5, 4] {
        let ccd_spec = HarvestSpec::new(8, min_good, 0.60)?;
        let mono_spec = HarvestSpec::new(64, min_good * 8, 0.60)?;
        let ccd_yield = ccd_spec.sellable_yield(d, ccd, cluster)?;
        let mono_yield = mono_spec.sellable_yield(d, mono, cluster)?;
        rows.push(HarvestRow {
            min_good,
            ccd_yield: ccd_yield.value(),
            ccd_cost_usd: ccd_spec
                .cost_per_sellable_die(ccd_raw, d, ccd, cluster)?
                .usd(),
            mono_yield: mono_yield.value(),
            mono_cost_usd: mono_spec
                .cost_per_sellable_die(mono_raw, d, mono, cluster)?
                .usd(),
        });
    }
    Ok(HarvestStudy { rows })
}

impl HarvestStudy {
    /// The study as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "bin (of 8)",
            "ccd_yield",
            "ccd_cost_usd",
            "mono_yield",
            "mono_cost_usd",
            "8xccd_vs_mono",
        ]);
        for r in &self.rows {
            table.push_row(vec![
                format!("≥{}", r.min_good),
                pct(r.ccd_yield),
                format!("{:.2}", r.ccd_cost_usd),
                pct(r.mono_yield),
                format!("{:.2}", r.mono_cost_usd),
                format!("{:.2}x", 8.0 * r.ccd_cost_usd / r.mono_cost_usd),
            ]);
        }
        table
    }

    /// Claims about salvage economics.
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        if let (Some(strict), Some(loose)) = (self.rows.first(), self.rows.last()) {
            checks.push(ShapeCheck::new(
                "salvage raises the sellable yield of both options",
                "yield(≥4) > yield(≥8)",
                format!(
                    "ccd {} → {}, mono {} → {}",
                    pct(strict.ccd_yield),
                    pct(loose.ccd_yield),
                    pct(strict.mono_yield),
                    pct(loose.mono_yield)
                ),
                loose.ccd_yield > strict.ccd_yield && loose.mono_yield > strict.mono_yield,
            ));
            checks.push(ShapeCheck::new(
                "salvage helps the monolithic die more (it has more to lose)",
                "mono cost reduction > ccd cost reduction",
                format!(
                    "mono {} vs ccd {}",
                    pct(1.0 - loose.mono_cost_usd / strict.mono_cost_usd),
                    pct(1.0 - loose.ccd_cost_usd / strict.ccd_cost_usd)
                ),
                (1.0 - loose.mono_cost_usd / strict.mono_cost_usd)
                    > (1.0 - loose.ccd_cost_usd / strict.ccd_cost_usd),
            ));
            checks.push(ShapeCheck::new(
                "even with salvage, eight chiplets stay cheaper than the monolith",
                "8 × ccd cost < mono cost at every bin",
                format!(
                    "{:.2}x at the loosest bin",
                    8.0 * loose.ccd_cost_usd / loose.mono_cost_usd
                ),
                self.rows
                    .iter()
                    .all(|r| 8.0 * r.ccd_cost_usd < r.mono_cost_usd),
            ));
        }
        checks
    }
}

/// One yield-model variant of the ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldModelRow {
    /// Variant label ("poisson-like", "paper (c=10)", "max clustering").
    pub label: String,
    /// Cluster parameter used.
    // lint:allow(unit-suffix): the negative-binomial clustering α is dimensionless
    pub cluster: f64,
    /// Yield of an 800 mm² 5 nm die under this model.
    pub yield_800mm2_frac: f64,
    /// Smallest Figure 4 grid area where the 2-chiplet MCM beats the SoC.
    pub crossover_mm2: Option<f64>,
}

/// The yield-model ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldModelAblation {
    /// One row per model variant.
    pub rows: Vec<YieldModelRow>,
}

/// Ablates the yield-model choice: the negative-binomial cluster parameter
/// interpolates between Poisson (`c → ∞`, no clustering, pessimistic for
/// big dies) and heavy clustering (`c = 1`). The paper picks `c = 10`; this
/// study shows how the pick moves the multi-chip turning point.
///
/// # Errors
///
/// Propagates library and cost-engine errors.
pub fn yield_model_ablation(lib: &TechLibrary) -> Result<YieldModelAblation> {
    let variants: [(&str, f64); 3] = [
        ("poisson-like (c=1e6)", 1.0e6),
        ("paper (c=10)", 10.0),
        ("max clustering (c=1)", 1.0),
    ];
    let mut rows = Vec::new();
    for (label, cluster) in variants {
        let snapshot = lib.with_modified_node("5nm", |n| {
            actuary_tech::ProcessNode::builder(n.id().clone())
                .defect_density(n.defect_density().value())
                .cluster(cluster)
                .wafer_price(n.wafer_price())
                .wafer(n.wafer())
                .k_module(n.nre().k_module)
                .k_chip(n.nre().k_chip)
                .mask_set(n.nre().mask_set)
                .ip_license(n.nre().ip_license)
                .relative_density(n.relative_density())
                .d2d(*n.d2d())
                .build()
        })?;
        let node = snapshot.node("5nm")?;
        let yield_800mm2_frac = node.die_yield(Area::from_mm2(800.0)?).value();
        // Discrete crossover on the Figure 4 grid.
        let mut crossover = None;
        for step in 1..=18 {
            let area = Area::from_mm2(step as f64 * 50.0)?;
            let soc = re_cost(
                &[DiePlacement::new(node, area, 1)],
                snapshot.packaging(IntegrationKind::Soc)?,
                AssemblyFlow::ChipLast,
            )?;
            let die = node.d2d().inflate_module_area(area / 2.0)?;
            let mcm = re_cost(
                &[DiePlacement::new(node, die, 2)],
                snapshot.packaging(IntegrationKind::Mcm)?,
                AssemblyFlow::ChipLast,
            )?;
            if mcm.total() < soc.total() {
                crossover = Some(area.mm2());
                break;
            }
        }
        rows.push(YieldModelRow {
            label: label.to_string(),
            cluster,
            yield_800mm2_frac,
            crossover_mm2: crossover,
        });
    }
    Ok(YieldModelAblation { rows })
}

impl YieldModelAblation {
    /// The ablation as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec!["model", "cluster", "yield@800mm2", "mcm crossover"]);
        for r in &self.rows {
            table.push_row(vec![
                r.label.clone(),
                format!("{:.0}", r.cluster),
                pct(r.yield_800mm2_frac),
                r.crossover_mm2
                    .map_or("none".to_string(), |a| format!("{a:.0} mm²")),
            ]);
        }
        table
    }

    /// Claims about the yield-model choice.
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        if self.rows.len() == 3 {
            let (poisson, paper, clustered) = (&self.rows[0], &self.rows[1], &self.rows[2]);
            checks.push(ShapeCheck::new(
                "clustering raises large-die yield (Poisson < NB(10) < NB(1))",
                "monotone in clustering",
                format!(
                    "{} < {} < {}",
                    pct(poisson.yield_800mm2_frac),
                    pct(paper.yield_800mm2_frac),
                    pct(clustered.yield_800mm2_frac)
                ),
                poisson.yield_800mm2_frac < paper.yield_800mm2_frac
                    && paper.yield_800mm2_frac < clustered.yield_800mm2_frac,
            ));
            let cross = |r: &YieldModelRow| r.crossover_mm2.unwrap_or(f64::INFINITY);
            checks.push(ShapeCheck::new(
                "a pessimistic yield model moves the multi-chip turning point earlier",
                "crossover(poisson) ≤ crossover(paper) ≤ crossover(clustered)",
                format!(
                    "{:.0} / {:.0} / {:.0} mm²",
                    cross(poisson),
                    cross(paper),
                    cross(clustered)
                ),
                cross(poisson) <= cross(paper) && cross(paper) <= cross(clustered),
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> TechLibrary {
        TechLibrary::paper_defaults().unwrap()
    }

    #[test]
    fn maturity_study_claims_hold() {
        let study = maturity_study(&lib()).unwrap();
        assert_eq!(study.rows.len(), 7);
        for c in study.checks() {
            assert!(c.pass, "{c}");
        }
        assert!(study.to_table().row_count() == 7);
    }

    #[test]
    fn maturity_defect_density_follows_ramp() {
        let study = maturity_study(&lib()).unwrap();
        assert!((study.rows[0].defect_density - 0.13).abs() < 1e-9);
        assert!(study.rows.last().unwrap().defect_density < 0.06);
    }

    #[test]
    fn harvest_study_claims_hold() {
        let study = harvest_study(&lib()).unwrap();
        assert_eq!(study.rows.len(), 5);
        for c in study.checks() {
            assert!(c.pass, "{c}");
        }
        assert_eq!(study.to_table().row_count(), 5);
    }

    #[test]
    fn harvest_costs_decrease_with_looser_bins() {
        let study = harvest_study(&lib()).unwrap();
        for pair in study.rows.windows(2) {
            assert!(pair[1].ccd_cost_usd <= pair[0].ccd_cost_usd + 1e-9);
            assert!(pair[1].mono_cost_usd <= pair[0].mono_cost_usd + 1e-9);
        }
    }

    #[test]
    fn yield_model_ablation_claims_hold() {
        let ablation = yield_model_ablation(&lib()).unwrap();
        assert_eq!(ablation.rows.len(), 3);
        for c in ablation.checks() {
            assert!(c.pass, "{c}");
        }
        assert_eq!(ablation.to_table().row_count(), 3);
    }

    #[test]
    fn yield_model_ablation_poisson_limit() {
        let ablation = yield_model_ablation(&lib()).unwrap();
        // c = 1e6 ≈ Poisson: e^(−0.88) ≈ 0.4148 at 800 mm², D = 0.11.
        let poisson_row = &ablation.rows[0];
        assert!(
            (poisson_row.yield_800mm2_frac - (-0.88f64).exp()).abs() < 1e-3,
            "{}",
            poisson_row.yield_800mm2_frac
        );
    }
}
