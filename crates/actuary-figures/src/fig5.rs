//! Figure 5: validation against AMD's chiplet architecture — 7 nm CCDs plus
//! a 12 nm IOD on an MCM, vs a hypothetical monolithic 7 nm die, for 16–64
//! cores.
//!
//! Model choices (documented in `DESIGN.md` §4):
//!
//! * CCD: 74 mm² die at 7 nm with early-ramp defect density 0.13 /cm² (the
//!   paper's stated assumption), 8 cores per CCD, 10 % of the die being the
//!   D2D (IFOP) interface.
//! * IOD: 416 mm² at 12 nm, defect density 0.12 /cm².
//! * The chiplet package is the constant server socket: its substrate is
//!   sized for the largest (64-core) configuration for every core count,
//!   which is why the paper's packaging share *grows* as core count
//!   shrinks.
//! * The hypothetical monolithic die carries the CCD logic without D2D plus
//!   the IOD ported to 7 nm by relative transistor density.

use actuary_model::{re_cost, re_cost_sized, AssemblyFlow, DiePlacement, ReCostBreakdown};
use actuary_report::{StackedBarChart, Table};
use actuary_tech::{IntegrationKind, ProcessNode, TechLibrary};
use actuary_units::Area;

use crate::common::{pct, ShapeCheck};
use crate::Result;

/// Core counts of the five product configurations.
pub const CORES: [u32; 5] = [16, 24, 32, 48, 64];
/// CCD die area (mm²) including the D2D interface.
pub const CCD_AREA_MM2: f64 = 74.0;
/// Cores per CCD.
pub const CORES_PER_CCD: u32 = 8;
/// IOD die area at 12 nm (mm²).
pub const IOD_AREA_MM2: f64 = 416.0;
/// Early-ramp defect densities the paper uses for this validation.
pub const D_7NM: f64 = 0.13;
/// Early-ramp 12 nm defect density.
pub const D_12NM: f64 = 0.12;

/// One core-count row of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Number of cores.
    pub cores: u32,
    /// Number of CCDs.
    pub ccds: u32,
    /// Chiplet (MCM) RE breakdown, normalized.
    pub chiplet: ReCostBreakdown,
    /// Hypothetical monolithic 7 nm RE breakdown, normalized.
    pub monolithic: ReCostBreakdown,
    /// Monolithic die area in mm².
    pub monolithic_area_mm2: f64,
}

impl Fig5Row {
    /// Packaging share of the chiplet bar.
    pub fn chiplet_packaging_share(&self) -> f64 {
        self.chiplet.packaging_total().usd() / self.chiplet.total().usd()
    }

    /// Packaging share of the monolithic bar.
    pub fn soc_packaging_share(&self) -> f64 {
        self.monolithic.packaging_total().usd() / self.monolithic.total().usd()
    }

    /// Die-cost saving of the chiplet version vs monolithic.
    pub fn die_cost_saving(&self) -> f64 {
        let mono = self.monolithic.die_total().usd();
        (mono - self.chiplet.die_total().usd()) / mono
    }
}

/// The full Figure 5 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// One row per core count, normalized to the 16-core monolithic total.
    pub rows: Vec<Fig5Row>,
}

/// Builds the validation library: paper defaults with the early-ramp defect
/// densities (7 nm → 0.13, 12 nm → 0.12).
///
/// # Errors
///
/// Propagates library errors.
pub fn validation_library(base: &TechLibrary) -> Result<TechLibrary> {
    let with7 = base.with_modified_node("7nm", |n| rebuild_with_defect(n, D_7NM))?;
    Ok(with7.with_modified_node("12nm", |n| rebuild_with_defect(n, D_12NM))?)
}

fn rebuild_with_defect(
    node: &ProcessNode,
    defect: f64,
) -> std::result::Result<ProcessNode, actuary_tech::TechError> {
    ProcessNode::builder(node.id().clone())
        .defect_density(defect)
        .cluster(node.cluster())
        .wafer_price(node.wafer_price())
        .wafer(node.wafer())
        .k_module(node.nre().k_module)
        .k_chip(node.nre().k_chip)
        .mask_set(node.nre().mask_set)
        .ip_license(node.nre().ip_license)
        .relative_density(node.relative_density())
        .d2d(*node.d2d())
        .build()
}

/// Computes the Figure 5 dataset.
///
/// # Errors
///
/// Propagates library and cost-engine errors.
pub fn compute(base: &TechLibrary) -> Result<Fig5> {
    let lib = validation_library(base)?;
    let n7 = lib.node("7nm")?;
    let n12 = lib.node("12nm")?;
    let mcm = lib.packaging(IntegrationKind::Mcm)?;
    let soc = lib.packaging(IntegrationKind::Soc)?;

    let ccd = Area::from_mm2(CCD_AREA_MM2)?;
    let iod = Area::from_mm2(IOD_AREA_MM2)?;
    // The socket substrate is sized for the 64-core configuration.
    let max_ccds = CORES[CORES.len() - 1] / CORES_PER_CCD;
    let socket_silicon = Area::from_mm2(CCD_AREA_MM2 * max_ccds as f64 + IOD_AREA_MM2)?;
    // Monolithic: CCD logic without D2D + IOD ported 12 nm → 7 nm.
    let ccd_logic = ccd * (1.0 - n7.d2d().area_fraction());
    let iod_at_7nm = n7.port_area_from(iod, n12)?;

    let mut raw_rows = Vec::new();
    for &cores in &CORES {
        let ccds = cores / CORES_PER_CCD;
        let chiplet = re_cost_sized(
            &[
                DiePlacement::new(n7, ccd, ccds),
                DiePlacement::new(n12, iod, 1),
            ],
            mcm,
            AssemblyFlow::ChipLast,
            Some(socket_silicon),
        )
        .map_err(actuary_arch::ArchError::from)?;
        let mono_area = Area::from_mm2(ccd_logic.mm2() * ccds as f64 + iod_at_7nm.mm2())?;
        let monolithic = re_cost(
            &[DiePlacement::new(n7, mono_area, 1)],
            soc,
            AssemblyFlow::ChipLast,
        )
        .map_err(actuary_arch::ArchError::from)?;
        raw_rows.push((cores, ccds, chiplet, monolithic, mono_area.mm2()));
    }

    // Normalize to the 16-core monolithic total.
    let basis = raw_rows[0].3.total().usd();
    let rows = raw_rows
        .into_iter()
        .map(|(cores, ccds, chiplet, monolithic, area)| Fig5Row {
            cores,
            ccds,
            chiplet: chiplet.scaled(1.0 / basis),
            monolithic: monolithic.scaled(1.0 / basis),
            monolithic_area_mm2: area,
        })
        .collect();
    Ok(Fig5 { rows })
}

impl Fig5 {
    /// Looks up the row for a core count.
    pub fn row(&self, cores: u32) -> Option<&Fig5Row> {
        self.rows.iter().find(|r| r.cores == cores)
    }

    /// Renders the paired bars.
    pub fn render(&self) -> String {
        let mut chart = StackedBarChart::new(
            "Figure 5: AMD validation (normalized to the 16-core monolithic SoC)",
        );
        for r in &self.rows {
            let chiplet_segs: Vec<(&str, f64)> = r
                .chiplet
                .components()
                .iter()
                .map(|(l, m)| (*l, m.usd()))
                .collect();
            chart.push_bar(format!("{:>2} cores chiplet", r.cores), &chiplet_segs);
            let mono_segs: Vec<(&str, f64)> = r
                .monolithic
                .components()
                .iter()
                .map(|(l, m)| (*l, m.usd()))
                .collect();
            chart.push_bar(format!("{:>2} cores mono7nm", r.cores), &mono_segs);
        }
        chart.render(48)
    }

    /// The dataset as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "cores",
            "ccds",
            "chiplet_total",
            "chiplet_pkg_share",
            "mono_total",
            "mono_pkg_share",
            "die_cost_saving",
            "mono_area_mm2",
        ]);
        for r in &self.rows {
            table.push_row(vec![
                r.cores.to_string(),
                r.ccds.to_string(),
                format!("{:.3}", r.chiplet.total().usd()),
                pct(r.chiplet_packaging_share()),
                format!("{:.3}", r.monolithic.total().usd()),
                pct(r.soc_packaging_share()),
                pct(r.die_cost_saving()),
                format!("{:.0}", r.monolithic_area_mm2),
            ]);
        }
        table
    }

    /// The paper's qualitative claims about Figure 5 (§4.1).
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        if let Some(r64) = self.row(64) {
            checks.push(ShapeCheck::new(
                "multi-chip saves up to ~50% of the die cost at 64 cores",
                "~50% (35-60%)",
                pct(r64.die_cost_saving()),
                (0.35..=0.60).contains(&r64.die_cost_saving()),
            ));
            checks.push(ShapeCheck::new(
                "the 64-core chiplet system is cheaper than monolithic",
                "chiplet < monolithic",
                format!(
                    "{:.2} vs {:.2}",
                    r64.chiplet.total().usd(),
                    r64.monolithic.total().usd()
                ),
                r64.chiplet.total() < r64.monolithic.total(),
            ));
        }
        // Chiplet packaging share ≈ 24-30 % (we accept 20-45 % given the
        // public-data substrate calibration), growing as cores shrink.
        let mut shares = Vec::new();
        for &cores in &CORES {
            if let Some(r) = self.row(cores) {
                shares.push((cores, r.chiplet_packaging_share()));
            }
        }
        if let (Some(&(_, s16)), Some(&(_, s64))) = (shares.first(), shares.last()) {
            checks.push(ShapeCheck::new(
                "chiplet packaging share is in the ~24-30% band",
                "24-30% (accept 20-45%)",
                shares
                    .iter()
                    .map(|(c, s)| format!("{c}:{}", pct(*s)))
                    .collect::<Vec<_>>()
                    .join(" "),
                shares.iter().all(|(_, s)| (0.20..=0.45).contains(s)),
            ));
            checks.push(ShapeCheck::new(
                "packaging share grows as the core count shrinks",
                "share(16) > share(64)",
                format!("{} vs {}", pct(s16), pct(s64)),
                s16 > s64,
            ));
        }
        // Monolithic packaging share ≈ 5-6 %.
        if let Some(r64) = self.row(64) {
            checks.push(ShapeCheck::new(
                "monolithic packaging share stays small (~5-6%)",
                "5-6% (accept <12%)",
                pct(r64.soc_packaging_share()),
                r64.soc_packaging_share() < 0.12,
            ));
        }
        // The chiplet advantage shrinks at lower core counts.
        if let (Some(r16), Some(r64)) = (self.row(16), self.row(64)) {
            let ratio16 = r16.chiplet.total().usd() / r16.monolithic.total().usd();
            let ratio64 = r64.chiplet.total().usd() / r64.monolithic.total().usd();
            checks.push(ShapeCheck::new(
                "the chiplet advantage shrinks for smaller systems",
                "cost ratio at 16 cores > ratio at 64 cores",
                format!("{ratio16:.2} vs {ratio64:.2}"),
                ratio16 > ratio64,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig5 {
        compute(&TechLibrary::paper_defaults().unwrap()).unwrap()
    }

    #[test]
    fn five_core_counts() {
        let f = fig();
        assert_eq!(f.rows.len(), 5);
        assert_eq!(f.row(64).unwrap().ccds, 8);
        assert_eq!(f.row(16).unwrap().ccds, 2);
    }

    #[test]
    fn normalization_basis() {
        let f = fig();
        assert!((f.row(16).unwrap().monolithic.total().usd() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monolithic_area_stays_under_reticle() {
        let f = fig();
        for r in &f.rows {
            assert!(
                r.monolithic_area_mm2 < 858.0,
                "{} cores: {} mm²",
                r.cores,
                r.monolithic_area_mm2
            );
        }
    }

    #[test]
    fn all_shape_checks_pass() {
        for c in fig().checks() {
            assert!(c.pass, "{c}");
        }
    }

    #[test]
    fn validation_library_overrides_defects() {
        let lib = validation_library(&TechLibrary::paper_defaults().unwrap()).unwrap();
        assert_eq!(lib.node("7nm").unwrap().defect_density().value(), 0.13);
        assert_eq!(lib.node("12nm").unwrap().defect_density().value(), 0.12);
        // 5 nm untouched.
        assert_eq!(lib.node("5nm").unwrap().defect_density().value(), 0.11);
    }

    #[test]
    fn render_and_table() {
        let f = fig();
        assert!(f.render().contains("64 cores chiplet"));
        assert_eq!(f.to_table().row_count(), 5);
    }
}
