//! Figure 4: normalized RE cost breakdowns for SoC/MCM/InFO/2.5D across
//! die areas (100–900 mm²), chiplet counts (2/3/5) and nodes (14/7/5 nm),
//! with 10 % D2D overhead and no reuse, normalized to the 100 mm² SoC of
//! each node.

use actuary_model::{re_cost, AssemblyFlow, DiePlacement, ReCostBreakdown};
use actuary_report::{StackedBarChart, Table};
use actuary_tech::{IntegrationKind, TechLibrary};
use actuary_units::Area;

use crate::common::{pct, ShapeCheck};
use crate::Result;

/// Nodes of the three panel rows, in the paper's order.
pub const NODES: [&str; 3] = ["14nm", "7nm", "5nm"];
/// Chiplet counts of the three panel columns.
pub const CHIPLET_COUNTS: [u32; 3] = [2, 3, 5];
/// Module-area grid (mm²).
pub const AREAS_MM2: [f64; 9] = [
    100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0,
];

/// One bar of Figure 4: a (node, chiplet count, integration, area) cell
/// with its five-component breakdown normalized to the node's 100 mm² SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Cell {
    /// Process node of the panel row.
    pub node: String,
    /// Chiplet count of the panel column (irrelevant for the SoC bars).
    pub chiplets: u32,
    /// Integration scheme of the bar.
    pub integration: IntegrationKind,
    /// Total module area (the x axis).
    pub area_mm2: f64,
    /// RE breakdown normalized to the node's 100 mm² SoC total.
    pub breakdown: ReCostBreakdown,
}

impl Fig4Cell {
    /// Normalized total of this bar.
    pub fn total(&self) -> f64 {
        self.breakdown.total().usd()
    }
}

/// The full Figure 4 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Every bar of the 3×3 panel grid.
    pub cells: Vec<Fig4Cell>,
}

/// Computes one raw (un-normalized) RE breakdown.
fn raw_cell(
    lib: &TechLibrary,
    node_id: &str,
    integration: IntegrationKind,
    module_area: Area,
    chiplets: u32,
) -> Result<ReCostBreakdown> {
    let node = lib.node(node_id)?;
    let packaging = lib.packaging(integration)?;
    let placements = if integration.is_multi_chip() {
        let per_chiplet = module_area / chiplets as f64;
        let die = node.d2d().inflate_module_area(per_chiplet)?;
        vec![DiePlacement::new(node, die, chiplets)]
    } else {
        vec![DiePlacement::new(node, module_area, 1)]
    };
    Ok(re_cost(&placements, packaging, AssemblyFlow::ChipLast)?)
}

/// Computes the Figure 4 dataset.
///
/// # Errors
///
/// Propagates library and cost-engine errors.
pub fn compute(lib: &TechLibrary) -> Result<Fig4> {
    let mut cells = Vec::new();
    for node_id in NODES {
        // Per-panel normalization basis: the node's 100 mm² SoC.
        let basis = raw_cell(
            lib,
            node_id,
            IntegrationKind::Soc,
            Area::from_mm2(100.0)?,
            1,
        )?
        .total();
        for &chiplets in &CHIPLET_COUNTS {
            for &area_mm2 in &AREAS_MM2 {
                let area = Area::from_mm2(area_mm2)?;
                for kind in IntegrationKind::ALL {
                    let raw = raw_cell(lib, node_id, kind, area, chiplets)?;
                    cells.push(Fig4Cell {
                        node: node_id.to_string(),
                        chiplets,
                        integration: kind,
                        area_mm2,
                        breakdown: raw.scaled(1.0 / basis.usd()),
                    });
                }
            }
        }
    }
    Ok(Fig4 { cells })
}

impl Fig4 {
    /// Looks up one bar.
    pub fn cell(
        &self,
        node: &str,
        chiplets: u32,
        integration: IntegrationKind,
        area_mm2: f64,
    ) -> Option<&Fig4Cell> {
        self.cells.iter().find(|c| {
            c.node == node
                && c.chiplets == chiplets
                && c.integration == integration
                && (c.area_mm2 - area_mm2).abs() < 1e-9
        })
    }

    /// Smallest module area at which `integration` beats the monolithic SoC
    /// at `node` with `chiplets` chiplets (the "turning point" of §4.1).
    pub fn turning_point(
        &self,
        node: &str,
        chiplets: u32,
        integration: IntegrationKind,
    ) -> Option<f64> {
        AREAS_MM2.iter().copied().find(|&a| {
            match (
                self.cell(node, chiplets, integration, a),
                self.cell(node, chiplets, IntegrationKind::Soc, a),
            ) {
                (Some(multi), Some(soc)) => multi.total() < soc.total(),
                _ => false,
            }
        })
    }

    /// Renders one panel (node × chiplet count) as a stacked bar chart.
    pub fn render_panel(&self, node: &str, chiplets: u32) -> String {
        let mut chart = StackedBarChart::new(format!(
            "Figure 4 panel: {node}, {chiplets} chiplets (normalized to 100 mm² SoC)"
        ));
        for &area in &AREAS_MM2 {
            for kind in IntegrationKind::ALL {
                if let Some(cell) = self.cell(node, chiplets, kind, area) {
                    let segs: Vec<(&str, f64)> = cell
                        .breakdown
                        .components()
                        .iter()
                        .map(|(l, m)| (*l, m.usd()))
                        .collect();
                    chart.push_bar(format!("{area:>4.0} {kind}"), &segs);
                }
            }
        }
        chart.render(48)
    }

    /// Renders every panel.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for node in NODES {
            for &chiplets in &CHIPLET_COUNTS {
                out.push_str(&self.render_panel(node, chiplets));
                out.push('\n');
            }
        }
        out
    }

    /// The dataset as a flat table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "node",
            "chiplets",
            "integration",
            "area_mm2",
            "raw_chips",
            "chip_defects",
            "raw_package",
            "package_defects",
            "wasted_kgd",
            "total",
        ]);
        for c in &self.cells {
            table.push_row(vec![
                c.node.clone(),
                c.chiplets.to_string(),
                c.integration.to_string(),
                format!("{:.0}", c.area_mm2),
                format!("{:.4}", c.breakdown.raw_chips.usd()),
                format!("{:.4}", c.breakdown.chip_defects.usd()),
                format!("{:.4}", c.breakdown.raw_package.usd()),
                format!("{:.4}", c.breakdown.package_defects.usd()),
                format!("{:.4}", c.breakdown.wasted_kgd.usd()),
                format!("{:.4}", c.total()),
            ]);
        }
        table
    }

    /// The paper's qualitative claims about Figure 4 (§4.1).
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();

        // 1. 5 nm / 800 mm²: die-defect cost > 50 % of the monolithic total.
        if let Some(soc) = self.cell("5nm", 2, IntegrationKind::Soc, 800.0) {
            let share = soc.breakdown.chip_defects.usd() / soc.total();
            checks.push(ShapeCheck::new(
                "at 5nm/800mm² die defects exceed 50% of the monolithic cost",
                "> 50%",
                pct(share),
                share > 0.50,
            ));
        }

        // 2. 14 nm: up to ~35 % savings from yield improvement.
        {
            let mut best = 0.0f64;
            for &a in &AREAS_MM2 {
                if let (Some(soc), Some(mcm)) = (
                    self.cell("14nm", 3, IntegrationKind::Soc, a),
                    self.cell("14nm", 3, IntegrationKind::Mcm, a),
                ) {
                    let saving = (soc.breakdown.chip_defects.usd()
                        - mcm.breakdown.chip_defects.usd())
                        / soc.total();
                    best = best.max(saving);
                }
            }
            checks.push(ShapeCheck::new(
                "at 14nm yield-improvement savings reach up to ~35%",
                "~35% (25-45%)",
                pct(best),
                (0.25..=0.45).contains(&best),
            ));
        }

        // 3. Overhead shares at 14 nm / 900 mm²: > 25 % for MCM, > 50 % for
        //    2.5D (D2D + packaging overhead of the multi-chip total).
        for (kind, bound) in [
            (IntegrationKind::Mcm, 0.25),
            (IntegrationKind::TwoPointFiveD, 0.50),
        ] {
            if let Some(cell) = self.cell("14nm", 2, kind, 900.0) {
                let d2d_die_cost = cell.breakdown.die_total().usd() * 0.10;
                let overhead =
                    (cell.breakdown.packaging_total().usd() + d2d_die_cost) / cell.total();
                checks.push(ShapeCheck::new(
                    format!(
                        "14nm {kind} D2D+packaging overhead exceeds {:.0}%",
                        bound * 100.0
                    ),
                    format!("> {:.0}%", bound * 100.0),
                    pct(overhead),
                    overhead > bound,
                ));
            }
        }

        // 4. The turning point comes earlier for advanced technology.
        {
            let tp_5nm = self.turning_point("5nm", 2, IntegrationKind::Mcm);
            let tp_14nm = self.turning_point("14nm", 2, IntegrationKind::Mcm);
            let (m5, m14) = (
                tp_5nm.map_or("none".to_string(), |a| format!("{a:.0} mm²")),
                tp_14nm.map_or("none".to_string(), |a| format!("{a:.0} mm²")),
            );
            let pass = match (tp_5nm, tp_14nm) {
                (Some(a5), Some(a14)) => a5 <= a14,
                (Some(_), None) => true,
                _ => false,
            };
            checks.push(ShapeCheck::new(
                "the MCM turning point comes earlier at 5nm than at 14nm",
                "area(5nm) ≤ area(14nm)",
                format!("5nm: {m5}, 14nm: {m14}"),
                pass,
            ));
        }

        // 5. 2.5D packaging ≈ 50 % of total at 7 nm / 900 mm².
        if let Some(cell) = self.cell("7nm", 2, IntegrationKind::TwoPointFiveD, 900.0) {
            let share = cell.breakdown.packaging_total().usd() / cell.total();
            checks.push(ShapeCheck::new(
                "2.5D packaging is ~50% of total at 7nm/900mm²",
                "~50% (35-60%)",
                pct(share),
                (0.35..=0.60).contains(&share),
            ));
        }

        // 6. Granularity has marginal utility: the extra die-defect saving
        //    of 3→5 chiplets is < 10 % at 5 nm / 800 mm² MCM (measured in
        //    the panel's normalized units, i.e. relative to the SoC bar at
        //    the same area, which is how the figure is read).
        if let (Some(three), Some(five), Some(soc)) = (
            self.cell("5nm", 3, IntegrationKind::Mcm, 800.0),
            self.cell("5nm", 5, IntegrationKind::Mcm, 800.0),
            self.cell("5nm", 3, IntegrationKind::Soc, 800.0),
        ) {
            let saving = (three.breakdown.chip_defects.usd() - five.breakdown.chip_defects.usd())
                / soc.total();
            checks.push(ShapeCheck::new(
                "extra defect saving from 3→5 chiplets is <10% at 5nm/800mm² MCM",
                "< 10%",
                pct(saving),
                saving < 0.10,
            ));
        }

        // 7. Benefits increase with area (5 nm, 2-chiplet MCM).
        {
            let saving_at = |a: f64| -> Option<f64> {
                let soc = self.cell("5nm", 2, IntegrationKind::Soc, a)?;
                let mcm = self.cell("5nm", 2, IntegrationKind::Mcm, a)?;
                Some((soc.total() - mcm.total()) / soc.total())
            };
            if let (Some(small), Some(large)) = (saving_at(300.0), saving_at(900.0)) {
                checks.push(ShapeCheck::new(
                    "multi-chip benefits increase with area (5nm MCM, 300→900mm²)",
                    "saving(900) > saving(300)",
                    format!("{} → {}", pct(small), pct(large)),
                    large > small,
                ));
            }
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig4 {
        compute(&TechLibrary::paper_defaults().unwrap()).unwrap()
    }

    #[test]
    fn dataset_dimensions() {
        let f = fig();
        // 3 nodes × 3 chiplet counts × 9 areas × 4 integrations.
        assert_eq!(f.cells.len(), 3 * 3 * 9 * 4);
    }

    #[test]
    fn normalization_basis_is_one() {
        let f = fig();
        for node in NODES {
            let basis = f.cell(node, 2, IntegrationKind::Soc, 100.0).unwrap();
            assert!(
                (basis.total() - 1.0).abs() < 1e-9,
                "{node}: basis {}",
                basis.total()
            );
        }
    }

    #[test]
    fn all_shape_checks_pass() {
        for c in fig().checks() {
            assert!(c.pass, "{c}");
        }
    }

    #[test]
    fn soc_bars_do_not_depend_on_chiplet_count() {
        let f = fig();
        let a = f.cell("7nm", 2, IntegrationKind::Soc, 500.0).unwrap();
        let b = f.cell("7nm", 5, IntegrationKind::Soc, 500.0).unwrap();
        assert!((a.total() - b.total()).abs() < 1e-12);
    }

    #[test]
    fn totals_grow_with_area() {
        let f = fig();
        for kind in IntegrationKind::ALL {
            let small = f.cell("7nm", 2, kind, 100.0).unwrap().total();
            let large = f.cell("7nm", 2, kind, 900.0).unwrap().total();
            assert!(large > small, "{kind}: {large} vs {small}");
        }
    }

    #[test]
    fn render_produces_panels() {
        let f = fig();
        let text = f.render_panel("5nm", 2);
        assert!(text.contains("5nm"));
        assert!(text.contains("SoC"));
        assert!(text.contains("2.5D"));
        let table = f.to_table();
        assert_eq!(table.row_count(), f.cells.len());
    }
}
