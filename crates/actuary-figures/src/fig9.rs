//! Figure 9: total cost of the OCME reuse scheme — a reused center die plus
//! extension dies (7 nm, 4 × 160 mm² sockets, 500 k units per system),
//! compared as SoC / plain MCM / package-reused MCM / package-reused
//! heterogeneous MCM (center at 14 nm) — normalized to the RE cost of the
//! largest MCM system.

use actuary_arch::reuse::OcmeSpec;
use actuary_arch::PortfolioCost;
use actuary_model::AssemblyFlow;
use actuary_report::{StackedBarChart, Table};
use actuary_tech::{NodeId, TechLibrary};

use crate::common::{pct, ShapeCheck};
use crate::Result;

/// System names of the four OCME configurations, in size order.
pub const SYSTEMS: [&str; 4] = ["C", "C+1X", "C+1X+1Y", "C+2X+2Y"];

/// The four compared variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig9Variant {
    /// Monolithic SoC baseline.
    Soc,
    /// Ordinary MCM (own package per system).
    Mcm,
    /// MCM with one shared package design.
    McmPackageReuse,
    /// Package-reused MCM with the center die at 14 nm.
    McmPackageReuseHetero,
}

impl Fig9Variant {
    /// All variants in display order.
    pub const ALL: [Fig9Variant; 4] = [
        Fig9Variant::Soc,
        Fig9Variant::Mcm,
        Fig9Variant::McmPackageReuse,
        Fig9Variant::McmPackageReuseHetero,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Fig9Variant::Soc => "SoC",
            Fig9Variant::Mcm => "MCM",
            Fig9Variant::McmPackageReuse => "MCM+pkg-reuse",
            Fig9Variant::McmPackageReuseHetero => "MCM+pkg-reuse+hetero",
        }
    }
}

/// One bar of Figure 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Cell {
    /// System name (`C`, `C+1X`, …).
    pub system: String,
    /// Compared variant.
    pub variant: Fig9Variant,
    /// Normalized per-unit RE.
    pub re_norm: f64,
    /// Normalized per-unit amortized NRE (modules).
    pub nre_modules_norm: f64,
    /// Normalized per-unit amortized NRE (chips).
    pub nre_chips_norm: f64,
    /// Normalized per-unit amortized NRE (packages).
    pub nre_packages_norm: f64,
    /// Normalized per-unit amortized NRE (D2D).
    pub nre_d2d_norm: f64,
}

impl Fig9Cell {
    /// Normalized per-unit total.
    pub fn total(&self) -> f64 {
        self.re_norm
            + self.nre_modules_norm
            + self.nre_chips_norm
            + self.nre_packages_norm
            + self.nre_d2d_norm
    }
}

/// The full Figure 9 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// Every bar: 4 systems × 4 variants.
    pub cells: Vec<Fig9Cell>,
}

fn push_cells(cells: &mut Vec<Fig9Cell>, cost: &PortfolioCost, variant: Fig9Variant, basis: f64) {
    for sc in cost.systems() {
        let system = sc.name().trim_end_matches("-soc").to_string();
        let nre = sc.nre_per_unit();
        cells.push(Fig9Cell {
            system,
            variant,
            re_norm: sc.re().total().usd() / basis,
            nre_modules_norm: nre.modules.usd() / basis,
            nre_chips_norm: nre.chips.usd() / basis,
            nre_packages_norm: nre.packages.usd() / basis,
            nre_d2d_norm: nre.d2d.usd() / basis,
        });
    }
}

/// Computes the Figure 9 dataset.
///
/// # Errors
///
/// Propagates library and cost-engine errors.
pub fn compute(lib: &TechLibrary) -> Result<Fig9> {
    let flow = AssemblyFlow::ChipLast;
    let plain = OcmeSpec::paper_example()?;
    let mcm = plain.portfolio()?.cost(lib, flow)?;
    // Normalization basis: RE of the largest MCM system.
    let basis = mcm
        .system("C+2X+2Y")
        .expect("OCME portfolio contains C+2X+2Y")
        .re()
        .total()
        .usd();

    let mut cells = Vec::new();
    let soc = plain.soc_portfolio()?.cost(lib, flow)?;
    push_cells(&mut cells, &soc, Fig9Variant::Soc, basis);
    push_cells(&mut cells, &mcm, Fig9Variant::Mcm, basis);

    let mut reuse = OcmeSpec::paper_example()?;
    reuse.package_reuse = true;
    let mcm_reuse = reuse.portfolio()?.cost(lib, flow)?;
    push_cells(&mut cells, &mcm_reuse, Fig9Variant::McmPackageReuse, basis);

    let mut hetero = OcmeSpec::paper_example()?;
    hetero.package_reuse = true;
    hetero.center_node = Some(NodeId::new("14nm"));
    let mcm_hetero = hetero.portfolio()?.cost(lib, flow)?;
    push_cells(
        &mut cells,
        &mcm_hetero,
        Fig9Variant::McmPackageReuseHetero,
        basis,
    );

    Ok(Fig9 { cells })
}

impl Fig9 {
    /// Looks up one bar.
    pub fn cell(&self, system: &str, variant: Fig9Variant) -> Option<&Fig9Cell> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.variant == variant)
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut chart =
            StackedBarChart::new("Figure 9: OCME reuse (normalized to the C+2X+2Y MCM RE cost)");
        for system in SYSTEMS {
            for variant in Fig9Variant::ALL {
                if let Some(c) = self.cell(system, variant) {
                    chart.push_bar(
                        format!("{system} {}", variant.label()),
                        &[
                            ("RE", c.re_norm),
                            ("NRE modules", c.nre_modules_norm),
                            ("NRE chips", c.nre_chips_norm),
                            ("NRE packages", c.nre_packages_norm),
                            ("NRE D2D", c.nre_d2d_norm),
                        ],
                    );
                }
            }
        }
        chart.render(48)
    }

    /// The dataset as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "system",
            "variant",
            "re",
            "nre_modules",
            "nre_chips",
            "nre_packages",
            "nre_d2d",
            "total",
        ]);
        for c in &self.cells {
            table.push_row(vec![
                c.system.clone(),
                c.variant.label().to_string(),
                format!("{:.3}", c.re_norm),
                format!("{:.3}", c.nre_modules_norm),
                format!("{:.3}", c.nre_chips_norm),
                format!("{:.3}", c.nre_packages_norm),
                format!("{:.3}", c.nre_d2d_norm),
                format!("{:.3}", c.total()),
            ]);
        }
        table
    }

    /// Average normalized total over the four systems of a variant.
    pub fn average_total(&self, variant: Fig9Variant) -> f64 {
        let totals: Vec<f64> = SYSTEMS
            .iter()
            .filter_map(|s| self.cell(s, variant))
            .map(|c| c.total())
            .collect();
        totals.iter().sum::<f64>() / totals.len() as f64
    }

    /// The paper's qualitative claims about Figure 9 (§5.2).
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();

        // NRE saving vs SoC is real but below 50 % (less than SCMS).
        {
            let nre_of = |variant: Fig9Variant| -> f64 {
                SYSTEMS
                    .iter()
                    .filter_map(|s| self.cell(s, variant))
                    .map(|c| {
                        c.nre_modules_norm + c.nre_chips_norm + c.nre_packages_norm + c.nre_d2d_norm
                    })
                    .sum()
            };
            let soc = nre_of(Fig9Variant::Soc);
            let mcm = nre_of(Fig9Variant::Mcm);
            let saving = 1.0 - mcm / soc;
            checks.push(ShapeCheck::new(
                "OCME NRE saving vs SoC is evident but below 50%",
                "0% < saving < 50%",
                pct(saving),
                saving > 0.0 && saving < 0.50,
            ));
        }
        // Heterogeneous integration cuts totals by more than 10 % further.
        {
            let homo = self.average_total(Fig9Variant::McmPackageReuse);
            let hetero = self.average_total(Fig9Variant::McmPackageReuseHetero);
            let saving = 1.0 - hetero / homo;
            checks.push(ShapeCheck::new(
                "heterogeneity (14nm center) cuts the total by more than 10%",
                "> 10%",
                pct(saving),
                saving > 0.10,
            ));
        }
        // The single-C system benefits the most from heterogeneity
        // ("almost half the cost-saving").
        if let (Some(homo), Some(hetero)) = (
            self.cell("C", Fig9Variant::McmPackageReuse),
            self.cell("C", Fig9Variant::McmPackageReuseHetero),
        ) {
            let saving = 1.0 - hetero.total() / homo.total();
            checks.push(ShapeCheck::new(
                "the single-C system nearly halves with heterogeneity",
                "~50% (30-60%)",
                pct(saving),
                (0.30..=0.60).contains(&saving),
            ));
        }
        // Package reuse helps the big system but hurts the small one (RE).
        if let (Some(own), Some(reused)) = (
            self.cell("C", Fig9Variant::Mcm),
            self.cell("C", Fig9Variant::McmPackageReuse),
        ) {
            checks.push(ShapeCheck::new(
                "the C system pays extra RE on the reused 5-socket package",
                "RE(reused) > RE(own)",
                format!("{:.3} vs {:.3}", reused.re_norm, own.re_norm),
                reused.re_norm > own.re_norm,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig9 {
        compute(&TechLibrary::paper_defaults().unwrap()).unwrap()
    }

    #[test]
    fn dataset_dimensions() {
        assert_eq!(fig().cells.len(), 4 * 4);
    }

    #[test]
    fn normalization_basis() {
        let f = fig();
        let c = f.cell("C+2X+2Y", Fig9Variant::Mcm).unwrap();
        assert!((c.re_norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_shape_checks_pass() {
        for c in fig().checks() {
            assert!(c.pass, "{c}");
        }
    }

    #[test]
    fn soc_has_no_d2d() {
        let f = fig();
        for system in SYSTEMS {
            assert_eq!(f.cell(system, Fig9Variant::Soc).unwrap().nre_d2d_norm, 0.0);
        }
    }

    #[test]
    fn bigger_systems_cost_more() {
        let f = fig();
        for variant in Fig9Variant::ALL {
            let c = f.cell("C", variant).unwrap().re_norm;
            let big = f.cell("C+2X+2Y", variant).unwrap().re_norm;
            assert!(big > c, "{variant:?}");
        }
    }

    #[test]
    fn render_and_table() {
        let f = fig();
        assert!(f.render().contains("C+2X+2Y"));
        assert_eq!(f.to_table().row_count(), 16);
    }
}
