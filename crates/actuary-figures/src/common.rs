//! Shared helpers for figure reproduction.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One qualitative claim from the paper's prose about a figure, with the
/// value this reproduction measured and whether it holds.
///
/// `EXPERIMENTS.md` is generated from these records, and the integration
/// suite asserts `pass` for every claim of every figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeCheck {
    /// The paper's claim, quoted or paraphrased.
    pub claim: String,
    /// What the paper states (target value or direction).
    pub expected: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measured value satisfies the claim.
    pub pass: bool,
}

impl ShapeCheck {
    /// Builds a check from a predicate result.
    pub fn new(
        claim: impl Into<String>,
        expected: impl Into<String>,
        measured: impl Into<String>,
        pass: bool,
    ) -> Self {
        ShapeCheck {
            claim: claim.into(),
            expected: expected.into(),
            measured: measured.into(),
            pass,
        }
    }
}

impl fmt::Display for ShapeCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} (paper: {}, measured: {})",
            if self.pass { "PASS" } else { "FAIL" },
            self.claim,
            self.expected,
            self.measured
        )
    }
}

/// Formats a fraction as a percent string for check records.
pub(crate) fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_marks_pass_and_fail() {
        let ok = ShapeCheck::new("claim", "x > 1", "1.5", true);
        assert!(ok.to_string().starts_with("[PASS]"));
        let bad = ShapeCheck::new("claim", "x > 1", "0.5", false);
        assert!(bad.to_string().starts_with("[FAIL]"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.256), "25.6%");
    }
}
