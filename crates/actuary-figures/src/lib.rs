//! Reproduction of every quantitative figure of *Chiplet Actuary*
//! (DAC 2022).
//!
//! The paper's evaluation consists of Figures 2, 4, 5, 6, 8, 9 and 10
//! (1, 3 and 7 are conceptual diagrams). Each `figN` module builds the
//! exact dataset behind the corresponding figure from a
//! [`TechLibrary`](actuary_tech::TechLibrary), renders it as text, and
//! returns machine-checkable [`ShapeCheck`]s for the qualitative claims the
//! paper's prose makes about that figure. The same datasets feed the CLI
//! (`actuary repro --figure N`), the Criterion benches and the
//! `EXPERIMENTS.md` record.
//!
//! # Examples
//!
//! ```
//! use actuary_figures::fig2;
//! use actuary_tech::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = TechLibrary::paper_defaults()?;
//! let fig = fig2::compute(&lib)?;
//! assert!(fig.checks().iter().all(|c| c.pass), "{:#?}", fig.checks());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod common;
pub mod ext;
pub mod fig10;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;

pub use common::ShapeCheck;

/// Convenience result alias (errors are architecture-level).
pub type Result<T> = std::result::Result<T, actuary_arch::ArchError>;
