//! Figure 8: total cost of the SCMS reuse scheme — one 7 nm chiplet
//! (200 mm² module area) building 1X/2X/4X systems on MCM and 2.5D, with
//! and without package reuse, 500 k units each — normalized to the RE cost
//! of the 4X MCM system.

use actuary_arch::reuse::ScmsSpec;
use actuary_arch::PortfolioCost;
use actuary_model::AssemblyFlow;
use actuary_report::{StackedBarChart, Table};
use actuary_tech::{IntegrationKind, TechLibrary};

use crate::common::{pct, ShapeCheck};
use crate::Result;

/// The five compared variants per multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig8Variant {
    /// Monolithic SoC baseline (module reuse only).
    Soc,
    /// MCM, each system with its own package design.
    Mcm,
    /// MCM with one shared (4X-sized) package design.
    McmPackageReuse,
    /// 2.5D, each system with its own interposer design.
    TwoPointFiveD,
    /// 2.5D with one shared (4X-sized) interposer design.
    TwoPointFiveDPackageReuse,
}

impl Fig8Variant {
    /// All variants in display order.
    pub const ALL: [Fig8Variant; 5] = [
        Fig8Variant::Soc,
        Fig8Variant::Mcm,
        Fig8Variant::McmPackageReuse,
        Fig8Variant::TwoPointFiveD,
        Fig8Variant::TwoPointFiveDPackageReuse,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Fig8Variant::Soc => "SoC",
            Fig8Variant::Mcm => "MCM",
            Fig8Variant::McmPackageReuse => "MCM+pkg-reuse",
            Fig8Variant::TwoPointFiveD => "2.5D",
            Fig8Variant::TwoPointFiveDPackageReuse => "2.5D+pkg-reuse",
        }
    }
}

/// One bar of Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Cell {
    /// Chiplet multiplicity (1, 2 or 4).
    pub multiplicity: u32,
    /// Compared variant.
    pub variant: Fig8Variant,
    /// Normalized per-unit RE.
    pub re_norm: f64,
    /// Normalized per-unit RE spent on packaging only.
    pub re_packaging_norm: f64,
    /// Normalized per-unit amortized NRE of modules.
    pub nre_modules_norm: f64,
    /// Normalized per-unit amortized NRE of chips.
    pub nre_chips_norm: f64,
    /// Normalized per-unit amortized NRE of packages.
    pub nre_packages_norm: f64,
    /// Normalized per-unit amortized NRE of the D2D interface.
    pub nre_d2d_norm: f64,
}

impl Fig8Cell {
    /// Normalized per-unit total.
    pub fn total(&self) -> f64 {
        self.re_norm
            + self.nre_modules_norm
            + self.nre_chips_norm
            + self.nre_packages_norm
            + self.nre_d2d_norm
    }
}

/// The full Figure 8 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8 {
    /// Every bar: 3 multiplicities × 5 variants.
    pub cells: Vec<Fig8Cell>,
}

fn spec(integration: IntegrationKind, package_reuse: bool) -> Result<ScmsSpec> {
    let mut spec = ScmsSpec::paper_example()?;
    spec.integration = integration;
    spec.package_reuse = package_reuse;
    Ok(spec)
}

fn push_cells(
    cells: &mut Vec<Fig8Cell>,
    cost: &PortfolioCost,
    variant: Fig8Variant,
    suffix: &str,
    basis: f64,
) {
    for sc in cost.systems() {
        let multiplicity: u32 = sc
            .name()
            .trim_end_matches(suffix)
            .trim_end_matches('X')
            .parse()
            .expect("SCMS system names start with the multiplicity");
        let nre = sc.nre_per_unit();
        cells.push(Fig8Cell {
            multiplicity,
            variant,
            re_norm: sc.re().total().usd() / basis,
            re_packaging_norm: sc.re().packaging_total().usd() / basis,
            nre_modules_norm: nre.modules.usd() / basis,
            nre_chips_norm: nre.chips.usd() / basis,
            nre_packages_norm: nre.packages.usd() / basis,
            nre_d2d_norm: nre.d2d.usd() / basis,
        });
    }
}

/// Computes the Figure 8 dataset.
///
/// # Errors
///
/// Propagates library and cost-engine errors.
pub fn compute(lib: &TechLibrary) -> Result<Fig8> {
    let flow = AssemblyFlow::ChipLast;
    let mcm = spec(IntegrationKind::Mcm, false)?
        .portfolio()?
        .cost(lib, flow)?;
    // Normalization basis: RE of the 4X MCM system.
    let basis = mcm
        .system("4X")
        .expect("SCMS portfolio contains a 4X system")
        .re()
        .total()
        .usd();

    let mut cells = Vec::new();
    let soc = spec(IntegrationKind::Mcm, false)?
        .soc_portfolio()?
        .cost(lib, flow)?;
    push_cells(&mut cells, &soc, Fig8Variant::Soc, "-soc", basis);
    push_cells(&mut cells, &mcm, Fig8Variant::Mcm, "", basis);
    let mcm_reuse = spec(IntegrationKind::Mcm, true)?
        .portfolio()?
        .cost(lib, flow)?;
    push_cells(
        &mut cells,
        &mcm_reuse,
        Fig8Variant::McmPackageReuse,
        "",
        basis,
    );
    let p25 = spec(IntegrationKind::TwoPointFiveD, false)?
        .portfolio()?
        .cost(lib, flow)?;
    push_cells(&mut cells, &p25, Fig8Variant::TwoPointFiveD, "", basis);
    let p25_reuse = spec(IntegrationKind::TwoPointFiveD, true)?
        .portfolio()?
        .cost(lib, flow)?;
    push_cells(
        &mut cells,
        &p25_reuse,
        Fig8Variant::TwoPointFiveDPackageReuse,
        "",
        basis,
    );
    Ok(Fig8 { cells })
}

impl Fig8 {
    /// Looks up one bar.
    pub fn cell(&self, multiplicity: u32, variant: Fig8Variant) -> Option<&Fig8Cell> {
        self.cells
            .iter()
            .find(|c| c.multiplicity == multiplicity && c.variant == variant)
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let mut chart =
            StackedBarChart::new("Figure 8: SCMS reuse (normalized to the 4X MCM RE cost)");
        for &m in &[1u32, 2, 4] {
            for variant in Fig8Variant::ALL {
                if let Some(c) = self.cell(m, variant) {
                    chart.push_bar(
                        format!("{m}X {}", variant.label()),
                        &[
                            ("RE (non-packaging)", c.re_norm - c.re_packaging_norm),
                            ("RE packaging", c.re_packaging_norm),
                            ("NRE modules", c.nre_modules_norm),
                            ("NRE chips", c.nre_chips_norm),
                            ("NRE packages", c.nre_packages_norm),
                            ("NRE D2D", c.nre_d2d_norm),
                        ],
                    );
                }
            }
        }
        chart.render(48)
    }

    /// The dataset as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "multiplicity",
            "variant",
            "re",
            "re_packaging",
            "nre_modules",
            "nre_chips",
            "nre_packages",
            "nre_d2d",
            "total",
        ]);
        for c in &self.cells {
            table.push_row(vec![
                format!("{}X", c.multiplicity),
                c.variant.label().to_string(),
                format!("{:.3}", c.re_norm),
                format!("{:.3}", c.re_packaging_norm),
                format!("{:.3}", c.nre_modules_norm),
                format!("{:.3}", c.nre_chips_norm),
                format!("{:.3}", c.nre_packages_norm),
                format!("{:.3}", c.nre_d2d_norm),
                format!("{:.3}", c.total()),
            ]);
        }
        table
    }

    /// The paper's qualitative claims about Figure 8 (§5.1).
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();

        // Chiplet reuse saves ~¾ of the 4X chip NRE vs monolithic SoC.
        if let (Some(mcm), Some(soc)) = (
            self.cell(4, Fig8Variant::Mcm),
            self.cell(4, Fig8Variant::Soc),
        ) {
            let saving = 1.0 - mcm.nre_chips_norm / soc.nre_chips_norm;
            checks.push(ShapeCheck::new(
                "chiplet reuse saves nearly ¾ of the 4X chip NRE vs SoC",
                "~75% (60-90%)",
                pct(saving),
                (0.60..=0.90).contains(&saving),
            ));
        }
        // Package reuse cuts the 4X package NRE by ~⅔.
        if let (Some(own), Some(reused)) = (
            self.cell(4, Fig8Variant::Mcm),
            self.cell(4, Fig8Variant::McmPackageReuse),
        ) {
            let saving = 1.0 - reused.nre_packages_norm / own.nre_packages_norm;
            checks.push(ShapeCheck::new(
                "package reuse cuts the 4X package NRE by two-thirds",
                "~67% (55-75%)",
                pct(saving),
                (0.55..=0.75).contains(&saving),
            ));
        }
        // Package reuse raises the 1X MCM total by > 20 %.
        if let (Some(own), Some(reused)) = (
            self.cell(1, Fig8Variant::Mcm),
            self.cell(1, Fig8Variant::McmPackageReuse),
        ) {
            let increase = reused.total() / own.total() - 1.0;
            checks.push(ShapeCheck::new(
                "package reuse raises the 1X system total by more than 20%",
                "> 20%",
                pct(increase),
                increase > 0.20,
            ));
        }
        // Reusing the 4X interposer in the 1X 2.5D system makes packaging
        // more than 50 % of its (RE) cost.
        if let Some(c) = self.cell(1, Fig8Variant::TwoPointFiveDPackageReuse) {
            let share = c.re_packaging_norm / c.re_norm;
            checks.push(ShapeCheck::new(
                "the 1X 2.5D system on the reused 4X interposer spends >50% on packaging",
                "> 50%",
                pct(share),
                share > 0.50,
            ));
        }
        // 2.5D still benefits from chiplet reuse (4X 2.5D beats 4X SoC in
        // chip NRE).
        if let (Some(p25), Some(soc)) = (
            self.cell(4, Fig8Variant::TwoPointFiveD),
            self.cell(4, Fig8Variant::Soc),
        ) {
            checks.push(ShapeCheck::new(
                "2.5D still benefits from chiplet reuse",
                "chip NRE(2.5D 4X) < chip NRE(SoC 4X)",
                format!("{:.3} vs {:.3}", p25.nre_chips_norm, soc.nre_chips_norm),
                p25.nre_chips_norm < soc.nre_chips_norm,
            ));
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig8 {
        compute(&TechLibrary::paper_defaults().unwrap()).unwrap()
    }

    #[test]
    fn dataset_dimensions() {
        assert_eq!(fig().cells.len(), 3 * 5);
    }

    #[test]
    fn normalization_basis_is_4x_mcm_re() {
        let f = fig();
        let c = f.cell(4, Fig8Variant::Mcm).unwrap();
        assert!((c.re_norm - 1.0).abs() < 1e-9, "{}", c.re_norm);
    }

    #[test]
    fn all_shape_checks_pass() {
        for c in fig().checks() {
            assert!(c.pass, "{c}");
        }
    }

    #[test]
    fn bigger_systems_cost_more_re() {
        let f = fig();
        for variant in [Fig8Variant::Mcm, Fig8Variant::TwoPointFiveD] {
            let re1 = f.cell(1, variant).unwrap().re_norm;
            let re4 = f.cell(4, variant).unwrap().re_norm;
            assert!(re4 > re1, "{variant:?}");
        }
    }

    #[test]
    fn package_reuse_does_not_change_4x_re() {
        let f = fig();
        let own = f.cell(4, Fig8Variant::Mcm).unwrap();
        let reused = f.cell(4, Fig8Variant::McmPackageReuse).unwrap();
        assert!((own.re_norm - reused.re_norm).abs() < 1e-9);
    }

    #[test]
    fn render_and_table() {
        let f = fig();
        let text = f.render();
        assert!(text.contains("4X MCM"));
        assert!(text.contains("pkg-reuse"));
        assert_eq!(f.to_table().row_count(), 15);
    }
}
