//! Figure 2: yield and normalized cost/area vs die area for six
//! technologies (3/5/7/14 nm logic, fan-out RDL, silicon interposer).

use actuary_report::{LineChart, Table};
use actuary_tech::{IntegrationKind, TechLibrary};
use actuary_units::Area;
use actuary_yield::{DefectDensity, NegativeBinomial, WaferSpec, YieldModel};

use crate::common::ShapeCheck;
use crate::Result;

/// One sampled point of a Figure 2 curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Technology label ("3nm", …, "RDL", "SI").
    pub tech: String,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Die yield per Eq. (1), in `[0, 1]`.
    pub yield_frac: f64,
    /// Cost per good mm², normalized to the raw-wafer cost per mm².
    pub cost_per_area_norm: f64,
}

/// The full Figure 2 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// All sampled points, grouped by technology in area order.
    pub rows: Vec<Fig2Row>,
}

/// Area grid of the paper's Figure 2 (50 … 800 mm²).
pub const AREAS_MM2: [f64; 16] = [
    50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0, 550.0, 600.0, 650.0,
    700.0, 750.0, 800.0,
];

/// One technology curve source: defect parameters plus wafer economics.
struct TechCurve {
    label: String,
    defect: DefectDensity,
    cluster: f64,
    wafer_price: actuary_units::Money,
    wafer: WaferSpec,
}

/// Computes the Figure 2 dataset from a technology library: the four logic
/// nodes the paper plots plus the two packaging processes (RDL from InFO,
/// silicon interposer from 2.5D).
///
/// # Errors
///
/// Propagates library-lookup and geometry errors.
pub fn compute(lib: &TechLibrary) -> Result<Fig2> {
    let mut curves = Vec::new();
    for id in ["3nm", "5nm", "7nm", "14nm"] {
        let node = lib.node(id)?;
        curves.push(TechCurve {
            label: id.to_string(),
            defect: node.defect_density(),
            cluster: node.cluster(),
            wafer_price: node.wafer_price(),
            wafer: node.wafer(),
        });
    }
    let rdl = lib
        .packaging(IntegrationKind::Info)?
        .interposer()
        .expect("InFO defines an RDL interposer");
    curves.push(TechCurve {
        label: "RDL".to_string(),
        defect: rdl.defect_density(),
        cluster: rdl.cluster(),
        wafer_price: rdl.wafer_price(),
        wafer: rdl.wafer(),
    });
    let si = lib
        .packaging(IntegrationKind::TwoPointFiveD)?
        .interposer()
        .expect("2.5D defines a silicon interposer");
    curves.push(TechCurve {
        label: "SI".to_string(),
        defect: si.defect_density(),
        cluster: si.cluster(),
        wafer_price: si.wafer_price(),
        wafer: si.wafer(),
    });

    let mut rows = Vec::with_capacity(curves.len() * AREAS_MM2.len());
    for curve in &curves {
        let model =
            NegativeBinomial::new(curve.cluster).expect("preset cluster parameters are positive");
        let per_mm2 = curve.wafer.cost_per_usable_mm2(curve.wafer_price);
        for &area_mm2 in &AREAS_MM2 {
            let area = Area::from_mm2(area_mm2)?;
            let y = model.die_yield(curve.defect, area);
            let raw = curve.wafer.raw_die_cost(curve.wafer_price, area)?;
            let yielded = raw * y.reciprocal().map_err(actuary_model::ModelError::from)?;
            let norm = (yielded.usd() / area_mm2) / per_mm2.usd();
            rows.push(Fig2Row {
                tech: curve.label.clone(),
                area_mm2,
                yield_frac: y.value(),
                cost_per_area_norm: norm,
            });
        }
    }
    Ok(Fig2 { rows })
}

impl Fig2 {
    /// The distinct technology labels, in plot order.
    pub fn technologies(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for row in &self.rows {
            if !out.contains(&row.tech.as_str()) {
                out.push(row.tech.as_str());
            }
        }
        out
    }

    /// Looks up one sampled point.
    pub fn point(&self, tech: &str, area_mm2: f64) -> Option<&Fig2Row> {
        self.rows
            .iter()
            .find(|r| r.tech == tech && (r.area_mm2 - area_mm2).abs() < 1e-9)
    }

    /// Renders the two panels (yield and normalized cost/area) as ASCII
    /// line charts plus the data table.
    pub fn render(&self) -> String {
        let mut yield_chart = LineChart::new("Figure 2a: die yield vs area", "mm²", "yield %");
        let mut cost_chart = LineChart::new(
            "Figure 2b: normalized cost per area vs area",
            "mm²",
            "x raw wafer",
        );
        for tech in self.technologies() {
            let pts_yield: Vec<(f64, f64)> = self
                .rows
                .iter()
                .filter(|r| r.tech == tech)
                .map(|r| (r.area_mm2, r.yield_frac * 100.0))
                .collect();
            let pts_cost: Vec<(f64, f64)> = self
                .rows
                .iter()
                .filter(|r| r.tech == tech)
                .map(|r| (r.area_mm2, r.cost_per_area_norm))
                .collect();
            yield_chart.push_series(tech, pts_yield);
            cost_chart.push_series(tech, pts_cost);
        }
        format!(
            "{}\n{}",
            yield_chart.render(64, 16),
            cost_chart.render(64, 16)
        )
    }

    /// The dataset as a table (tech, area, yield %, normalized cost/area).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec!["tech", "area_mm2", "yield_pct", "norm_cost_per_area"]);
        for r in &self.rows {
            table.push_row(vec![
                r.tech.clone(),
                format!("{:.0}", r.area_mm2),
                format!("{:.2}", r.yield_frac * 100.0),
                format!("{:.4}", r.cost_per_area_norm),
            ]);
        }
        table
    }

    /// The paper's qualitative claims about Figure 2.
    pub fn checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();

        // Anchor: 3 nm at 800 mm² yields ≈ 20-25 %.
        if let Some(p) = self.point("3nm", 800.0) {
            checks.push(ShapeCheck::new(
                "3nm yield at 800 mm² (Figure 2 curve reads ≈ 20-25%)",
                "20-25%",
                crate::common::pct(p.yield_frac),
                (0.20..=0.25).contains(&p.yield_frac),
            ));
        }
        // Yield monotone decreasing in area for every technology.
        let mut monotone = true;
        for tech in self.technologies() {
            let ys: Vec<f64> = self
                .rows
                .iter()
                .filter(|r| r.tech == tech)
                .map(|r| r.yield_frac)
                .collect();
            if ys.windows(2).any(|w| w[1] > w[0] + 1e-12) {
                monotone = false;
            }
        }
        checks.push(ShapeCheck::new(
            "yield decreases with area for every technology",
            "monotone decreasing",
            if monotone { "monotone" } else { "non-monotone" },
            monotone,
        ));
        // Cost per area rises with area, fastest for the most advanced node.
        let rise = |tech: &str| -> f64 {
            let first = self
                .point(tech, 50.0)
                .map(|r| r.cost_per_area_norm)
                .unwrap_or(1.0);
            let last = self
                .point(tech, 800.0)
                .map(|r| r.cost_per_area_norm)
                .unwrap_or(1.0);
            last / first
        };
        let rise_3nm = rise("3nm");
        let rise_14nm = rise("14nm");
        checks.push(ShapeCheck::new(
            "normalized cost/area rises fastest at the most advanced node",
            "3nm rise > 14nm rise",
            format!("3nm {rise_3nm:.2}x vs 14nm {rise_14nm:.2}x"),
            rise_3nm > rise_14nm,
        ));
        // Packaging processes stay cheap: RDL/SI yields at 800 mm² above 60%.
        for tech in ["RDL", "SI"] {
            if let Some(p) = self.point(tech, 800.0) {
                checks.push(ShapeCheck::new(
                    format!("{tech} yield stays high at 800 mm² (Figure 2 reads > 60%)"),
                    "> 60%",
                    crate::common::pct(p.yield_frac),
                    p.yield_frac > 0.60,
                ));
            }
        }
        checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig2 {
        compute(&TechLibrary::paper_defaults().unwrap()).unwrap()
    }

    #[test]
    fn six_technologies_sampled() {
        let f = fig();
        assert_eq!(
            f.technologies(),
            vec!["3nm", "5nm", "7nm", "14nm", "RDL", "SI"]
        );
        assert_eq!(f.rows.len(), 6 * AREAS_MM2.len());
    }

    #[test]
    fn paper_anchor_points() {
        let f = fig();
        // Yields at 800 mm², read off the paper's curves.
        let expect = [
            ("3nm", 0.2267),
            ("5nm", 0.4303),
            ("7nm", 0.4991),
            ("14nm", 0.5377),
        ];
        for (tech, y) in expect {
            let p = f.point(tech, 800.0).unwrap();
            assert!(
                (p.yield_frac - y).abs() < 0.01,
                "{tech}: {} vs {y}",
                p.yield_frac
            );
        }
    }

    #[test]
    fn all_shape_checks_pass() {
        for c in fig().checks() {
            assert!(c.pass, "{c}");
        }
    }

    #[test]
    fn normalized_cost_starts_near_one() {
        // For small dies the cost/area approaches the raw wafer cost/area
        // (normalization ≈ 1 + small yield/edge loss).
        let f = fig();
        for tech in f.technologies() {
            let p = f.point(tech, 50.0).unwrap();
            assert!(
                (1.0..1.5).contains(&p.cost_per_area_norm),
                "{tech}: {}",
                p.cost_per_area_norm
            );
        }
    }

    #[test]
    fn render_and_table() {
        let f = fig();
        let text = f.render();
        assert!(text.contains("Figure 2a"));
        assert!(text.contains("Figure 2b"));
        let table = f.to_table();
        assert_eq!(table.row_count(), f.rows.len());
    }
}
