//! Typed access to a parsed [`Table`] with schema diagnostics.
//!
//! A [`View`] wraps a table, records every key the schema asks about, and
//! rejects leftovers at [`View::deny_unknown`] time with the offending
//! key's line and column plus the accepted-key list — the same philosophy
//! as the CLI's `reject_unknown_flags`.

use crate::error::ScenarioError;
use crate::toml::{Pos, Table, Value};

/// A schema-checking lens over one table.
pub(crate) struct View<'a> {
    table: &'a Table,
    /// Human context for messages, e.g. "[nodes.7nm]".
    context: String,
    /// Keys the schema has asked about (accepted keys).
    known: Vec<&'static str>,
}

impl<'a> View<'a> {
    pub(crate) fn new(table: &'a Table, context: impl Into<String>) -> Self {
        View {
            table,
            context: context.into(),
            known: Vec::new(),
        }
    }

    /// Position of the underlying table (its header or first key).
    pub(crate) fn pos(&self) -> Pos {
        self.table.pos
    }

    pub(crate) fn context(&self) -> &str {
        &self.context
    }

    /// The raw entries of the underlying table — for schemas whose keys are
    /// data (node ids, packaging kinds) rather than a fixed vocabulary.
    pub(crate) fn raw_entries(&self) -> &'a [crate::toml::Entry] {
        self.table.entries()
    }

    fn lookup(&mut self, key: &'static str) -> Option<&'a crate::toml::Entry> {
        if !self.known.contains(&key) {
            self.known.push(key);
        }
        self.table.get(key)
    }

    fn type_error(&self, key: &str, pos: Pos, want: &str, got: &Value) -> ScenarioError {
        ScenarioError::schema(
            pos,
            format!(
                "key `{key}` in {} must be {want}, got {}",
                self.context,
                got.type_name()
            ),
        )
    }

    fn missing(&self, key: &str) -> ScenarioError {
        ScenarioError::schema(
            self.table.pos,
            format!("missing required key `{key}` in {}", self.context),
        )
    }

    /// Optional string.
    pub(crate) fn opt_str(
        &mut self,
        key: &'static str,
    ) -> Result<Option<Spanned<&'a str>>, ScenarioError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Str(s) => Ok(Some(Spanned {
                    value: s.as_str(),
                    pos: e.value_pos,
                })),
                other => Err(self.type_error(key, e.value_pos, "a string", other)),
            },
        }
    }

    /// Required string.
    pub(crate) fn req_str(&mut self, key: &'static str) -> Result<Spanned<&'a str>, ScenarioError> {
        self.opt_str(key)?.ok_or_else(|| self.missing(key))
    }

    /// Optional float (integers are accepted and widened).
    pub(crate) fn opt_f64(
        &mut self,
        key: &'static str,
    ) -> Result<Option<Spanned<f64>>, ScenarioError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Float(v) => Ok(Some(Spanned {
                    value: *v,
                    pos: e.value_pos,
                })),
                Value::Int(v) => Ok(Some(Spanned {
                    value: *v as f64,
                    pos: e.value_pos,
                })),
                other => Err(self.type_error(key, e.value_pos, "a number", other)),
            },
        }
    }

    /// Required float.
    pub(crate) fn req_f64(&mut self, key: &'static str) -> Result<Spanned<f64>, ScenarioError> {
        self.opt_f64(key)?.ok_or_else(|| self.missing(key))
    }

    /// Optional non-negative integer.
    pub(crate) fn opt_u64(
        &mut self,
        key: &'static str,
    ) -> Result<Option<Spanned<u64>>, ScenarioError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Int(v) if *v >= 0 => Ok(Some(Spanned {
                    value: *v as u64,
                    pos: e.value_pos,
                })),
                Value::Int(_) => Err(ScenarioError::schema(
                    e.value_pos,
                    format!(
                        "key `{key}` in {} must be a non-negative integer",
                        self.context
                    ),
                )),
                other => Err(self.type_error(key, e.value_pos, "an integer", other)),
            },
        }
    }

    /// Required non-negative integer.
    pub(crate) fn req_u64(&mut self, key: &'static str) -> Result<Spanned<u64>, ScenarioError> {
        self.opt_u64(key)?.ok_or_else(|| self.missing(key))
    }

    /// Optional `u32` (range-checked).
    pub(crate) fn opt_u32(
        &mut self,
        key: &'static str,
    ) -> Result<Option<Spanned<u32>>, ScenarioError> {
        match self.opt_u64(key)? {
            None => Ok(None),
            Some(s) => {
                let value = u32::try_from(s.value).map_err(|_| {
                    ScenarioError::schema(
                        s.pos,
                        format!("key `{key}` in {} is too large for u32", self.context),
                    )
                })?;
                Ok(Some(Spanned { value, pos: s.pos }))
            }
        }
    }

    /// Required `u32`.
    pub(crate) fn req_u32(&mut self, key: &'static str) -> Result<Spanned<u32>, ScenarioError> {
        self.opt_u32(key)?.ok_or_else(|| self.missing(key))
    }

    /// Optional boolean.
    pub(crate) fn opt_bool(
        &mut self,
        key: &'static str,
    ) -> Result<Option<Spanned<bool>>, ScenarioError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Bool(v) => Ok(Some(Spanned {
                    value: *v,
                    pos: e.value_pos,
                })),
                other => Err(self.type_error(key, e.value_pos, "a boolean", other)),
            },
        }
    }

    /// Optional array, each element converted by `f` (which receives the
    /// element and its position).
    pub(crate) fn opt_array<T>(
        &mut self,
        key: &'static str,
        mut f: impl FnMut(&'a Value, Pos) -> Result<T, ScenarioError>,
    ) -> Result<Option<Vec<T>>, ScenarioError> {
        match self.lookup(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Array(items) => {
                    let mut out = Vec::with_capacity(items.len());
                    for (value, pos) in items {
                        out.push(f(value, *pos)?);
                    }
                    Ok(Some(out))
                }
                other => Err(self.type_error(key, e.value_pos, "an array", other)),
            },
        }
    }

    /// Required array.
    pub(crate) fn req_array<T>(
        &mut self,
        key: &'static str,
        f: impl FnMut(&'a Value, Pos) -> Result<T, ScenarioError>,
    ) -> Result<Vec<T>, ScenarioError> {
        self.opt_array(key, f)?.ok_or_else(|| self.missing(key))
    }

    /// Optional sub-table, returned as a child [`View`] whose context
    /// extends this view's bracketed path (`[nodes]` → `[nodes.7nm]`).
    pub(crate) fn opt_table(
        &mut self,
        key: &'static str,
    ) -> Result<Option<View<'a>>, ScenarioError> {
        let child_context = {
            let inner = self.context.trim_start_matches('[').trim_end_matches(']');
            if inner.is_empty() || !self.context.starts_with('[') {
                format!("[{key}]")
            } else {
                format!("[{inner}.{key}]")
            }
        };
        match self.lookup(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Table(t) => Ok(Some(View::new(t, child_context))),
                other => Err(self.type_error(key, e.value_pos, "a table", other)),
            },
        }
    }

    /// Optional array of tables (`[[key]]`).
    pub(crate) fn opt_tables(
        &mut self,
        key: &'static str,
    ) -> Result<Vec<&'a Table>, ScenarioError> {
        match self.lookup(key) {
            None => Ok(Vec::new()),
            Some(e) => match &e.value {
                Value::Tables(tables) => Ok(tables.iter().collect()),
                // A single [key] table is accepted as a one-element list.
                Value::Table(t) => Ok(vec![t]),
                other => Err(self.type_error(key, e.value_pos, "an array of tables", other)),
            },
        }
    }

    /// Errors on the first key the schema never asked about, naming its
    /// position and the accepted keys.
    pub(crate) fn deny_unknown(&self) -> Result<(), ScenarioError> {
        for entry in self.table.entries() {
            if !self.known.iter().any(|k| *k == entry.key) {
                let mut accepted: Vec<&str> = self.known.clone();
                accepted.sort_unstable();
                return Err(ScenarioError::schema(
                    entry.key_pos,
                    format!(
                        "unknown key `{}` in {} (accepted: {})",
                        entry.key,
                        self.context,
                        if accepted.is_empty() {
                            "none".to_string()
                        } else {
                            accepted.join(", ")
                        }
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// A value plus the position it came from.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Spanned<T> {
    pub value: T,
    pub pos: Pos,
}

/// Converts an array element to a string, with a position-carrying error.
pub(crate) fn elem_str<'a>(
    value: &'a Value,
    pos: Pos,
    what: &str,
) -> Result<Spanned<&'a str>, ScenarioError> {
    match value {
        Value::Str(s) => Ok(Spanned {
            value: s.as_str(),
            pos,
        }),
        other => Err(ScenarioError::schema(
            pos,
            format!("{what} must be a string, got {}", other.type_name()),
        )),
    }
}

/// Converts an array element to an f64.
pub(crate) fn elem_f64(value: &Value, pos: Pos, what: &str) -> Result<f64, ScenarioError> {
    match value {
        Value::Float(v) => Ok(*v),
        Value::Int(v) => Ok(*v as f64),
        other => Err(ScenarioError::schema(
            pos,
            format!("{what} must be a number, got {}", other.type_name()),
        )),
    }
}

/// Converts an array element to a u64.
pub(crate) fn elem_u64(value: &Value, pos: Pos, what: &str) -> Result<u64, ScenarioError> {
    match value {
        Value::Int(v) if *v >= 0 => Ok(*v as u64),
        Value::Int(_) => Err(ScenarioError::schema(
            pos,
            format!("{what} must be non-negative"),
        )),
        other => Err(ScenarioError::schema(
            pos,
            format!("{what} must be an integer, got {}", other.type_name()),
        )),
    }
}

/// Converts an array element to a u32.
pub(crate) fn elem_u32(value: &Value, pos: Pos, what: &str) -> Result<u32, ScenarioError> {
    let v = elem_u64(value, pos, what)?;
    u32::try_from(v).map_err(|_| ScenarioError::schema(pos, format!("{what} is too large")))
}
