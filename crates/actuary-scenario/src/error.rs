//! The scenario subsystem's error type.

use std::fmt;

use crate::toml::{ParseError, Pos};

/// Everything that can go wrong between a scenario file and its results.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file is not valid scenario TOML (lexical/structural).
    Parse {
        /// Offending position.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// The document parsed but violates the scenario schema (unknown key,
    /// wrong type, missing field, unknown node id, …).
    Schema {
        /// Position of the offending key or value.
        pos: Pos,
        /// What went wrong.
        message: String,
    },
    /// The scenario lowered cleanly but the cost engine rejected it at run
    /// time (geometric infeasibility of a concrete job, …).
    Engine {
        /// The job (or stage) that failed.
        context: String,
        /// The engine's message.
        message: String,
    },
}

impl ScenarioError {
    /// Convenience constructor for schema errors.
    pub(crate) fn schema(pos: Pos, message: impl Into<String>) -> Self {
        ScenarioError::Schema {
            pos,
            message: message.into(),
        }
    }

    /// The source position, if the error points into the file.
    pub fn pos(&self) -> Option<Pos> {
        match self {
            ScenarioError::Parse { pos, .. } | ScenarioError::Schema { pos, .. } => Some(*pos),
            ScenarioError::Engine { .. } => None,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { pos, message } => write!(f, "{pos}: {message}"),
            ScenarioError::Schema { pos, message } => write!(f, "{pos}: {message}"),
            ScenarioError::Engine { context, message } => {
                write!(f, "job `{context}`: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParseError> for ScenarioError {
    fn from(e: ParseError) -> Self {
        ScenarioError::Parse {
            pos: e.pos,
            message: e.message,
        }
    }
}
