//! **actuary-scenario** — declarative scenario files for the chiplet
//! cost model.
//!
//! Everything the engine can evaluate — technology libraries, systems,
//! portfolios, reuse schemes and exploration spaces — can be described in
//! a TOML file instead of Rust. A scenario is parsed by the crate's own
//! std-only [`toml`] parser (the offline serde shim has no deserializer),
//! lowered through a schema layer with line/column diagnostics, and
//! executed through the existing `actuary-arch` / `actuary-dse` engines.
//!
//! # Layer role
//!
//! In the workspace's strict dependency DAG (`units → yield → tech →
//! model → arch → {mc, dse} → {scenario, report} → figures → cli`), this
//! crate is the *input boundary*: the only layer that parses untrusted
//! text. Everything below it takes typed values; everything above it
//! (`actuary-cli`'s `run` and `serve`) hands raw documents here and gets
//! either a [`Scenario`] or a positioned [`ScenarioError`] back. That is
//! why the whole crate is panic-free (machine-checked by `actuary-lint`)
//! and why content addressing lives here too: [`canon`] digests the
//! *parsed* tree ([`Scenario::from_doc`] runs on the same tree), so the
//! serving layer can cache results by what a document means rather than
//! how it is formatted.
//!
//! # File shape
//!
//! ```toml
//! name = "my-study"
//! extends = "preset"          # start from the paper's calibration
//!
//! [nodes.7nm]                 # overlay: only this key changes
//! wafer_price_usd = 11000
//!
//! [[portfolio]]               # cost a reuse-scheme portfolio
//! name = "scms-mcm"
//! scheme = "scms"
//! node = "7nm"
//! chiplet_module_area_mm2 = 200.0
//! multiplicities = [1, 2, 4]
//! integration = "mcm"
//! quantity = 500000
//!
//! [explore]                   # grid exploration through actuary-dse
//! nodes = ["7nm"]
//! areas_mm2 = [400.0, 800.0]
//! quantities = [500000]
//! ```
//!
//! See the repository README ("Scenario files") for the full schema
//! reference; `examples/scenarios/` reproduces the paper's Figures 2, 6,
//! 8, 9 and 10 from scenario files alone.
//!
//! # Examples
//!
//! ```
//! use actuary_scenario::Scenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::from_toml(concat!(
//!     "name = \"demo\"\n",
//!     "[[portfolio]]\n",
//!     "name = \"scms\"\n",
//!     "scheme = \"scms\"\n",
//!     "node = \"7nm\"\n",
//!     "chiplet_module_area_mm2 = 200.0\n",
//!     "multiplicities = [1, 2, 4]\n",
//!     "integration = \"mcm\"\n",
//!     "quantity = 500000\n",
//! ))?;
//! let run = scenario.run(1)?;
//! assert_eq!(run.cost_rows.len(), 3); // 1X, 2X, 4X
//! # Ok(())
//! # }
//! ```
//!
//! Errors always name the offending position:
//!
//! ```
//! use actuary_scenario::Scenario;
//!
//! let err = Scenario::from_toml("name = \"x\"\nquanttiy = 1\n").unwrap_err();
//! assert_eq!(
//!     err.to_string(),
//!     "line 2, column 1: unknown key `quanttiy` in the scenario root (accepted: \
//!      description, explore, extends, name, nodes, packaging, portfolio, sweep, yield)"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod error;
mod jobs;
mod schema;
mod tech;
pub mod toml;

pub use canon::ScenarioDigest;
pub use error::ScenarioError;
pub use jobs::{
    CostJob, CostRow, ExploreJob, ExploreOutput, ExploreRun, Job, Scenario, ScenarioRun,
    StreamSink, SweepAxis, SweepJob, SweepRun, YieldJob, YieldRow, YieldTech,
};
pub use tech::library_to_scenario;

#[cfg(test)]
mod tests {
    use super::*;
    use actuary_tech::TechLibrary;

    fn minimal(job: &str) -> String {
        format!("name = \"t\"\n{job}")
    }

    const SCMS_JOB: &str = concat!(
        "[[portfolio]]\n",
        "name = \"j\"\n",
        "scheme = \"scms\"\n",
        "node = \"7nm\"\n",
        "chiplet_module_area_mm2 = 200.0\n",
        "multiplicities = [1, 2, 4]\n",
        "integration = \"mcm\"\n",
        "quantity = 500000\n",
    );

    #[test]
    fn scms_scenario_runs() {
        let s = Scenario::from_toml(&minimal(SCMS_JOB)).unwrap();
        assert_eq!(s.jobs.len(), 1);
        let run = s.run(1).unwrap();
        assert_eq!(run.cost_rows.len(), 3);
        assert!(run.cost_rows.iter().all(|r| r.per_unit_usd > 0.0));
        let csv = run.costs_artifact().csv();
        assert!(csv.starts_with(
            "job,system,quantity,re_usd,re_packaging_usd,nre_modules_usd,nre_chips_usd,\
             nre_packages_usd,nre_d2d_usd,per_unit_usd\n"
        ));
        assert_eq!(csv.lines().count(), 4);
        // The run exposes exactly one artifact — the cost table.
        let artifacts = run.artifacts();
        assert_eq!(artifacts.len(), 1);
        assert_eq!(artifacts[0].name(), "costs");
    }

    #[test]
    fn schema_errors_name_line_and_column() {
        // (scenario text, expected "line N, column M" prefix, fragment)
        let cases: &[(String, &str, &str)] = &[
            (
                minimal("[[portfolio]]\nname = \"j\"\nscheme = \"scms\"\nnode = \"9nm\"\n"),
                "line 5, column 8",
                "unknown process node",
            ),
            (
                minimal("[[portfolio]]\nname = \"j\"\nscheme = \"weird\"\n"),
                "line 4, column 10",
                "unknown scheme",
            ),
            (
                minimal(&SCMS_JOB.replace("quantity = 500000", "quantity = \"many\"")),
                "line 9, column 12",
                "must be an integer",
            ),
            (
                minimal(&format!("{SCMS_JOB}typo_key = 1\n")),
                "line 10, column 1",
                "unknown key `typo_key`",
            ),
            (
                "extends = \"wat\"\nname = \"t\"\n".to_string(),
                "line 1, column 11",
                "unknown base library",
            ),
            (
                minimal("[nodes.4nm]\ncluster = 9.0\n"),
                "line 2, column 1",
                "requires key `defect_density`",
            ),
        ];
        for (input, prefix, fragment) in cases {
            let err = Scenario::from_toml(input).expect_err(input);
            let message = err.to_string();
            assert!(
                message.starts_with(prefix),
                "{input:?}: {message} must start with {prefix:?}"
            );
            assert!(
                message.contains(fragment),
                "{input:?}: {message} must mention {fragment:?}"
            );
        }
    }

    #[test]
    fn extends_overlay_keeps_unmentioned_parameters() {
        let s = Scenario::from_toml(&minimal(&format!(
            "[nodes.7nm]\nwafer_price_usd = 12000\n{SCMS_JOB}"
        )))
        .unwrap();
        let base = TechLibrary::paper_defaults().unwrap();
        let n7 = s.library.node("7nm").unwrap();
        assert_eq!(n7.wafer_price().usd(), 12000.0);
        // Everything else keeps the preset calibration.
        let b7 = base.node("7nm").unwrap();
        assert_eq!(n7.defect_density(), b7.defect_density());
        assert_eq!(n7.nre().k_module, b7.nre().k_module);
        assert_eq!(n7.d2d(), b7.d2d());
        assert_eq!(s.library.node_count(), base.node_count());
    }

    #[test]
    fn extends_none_starts_empty() {
        let err =
            Scenario::from_toml(&minimal(&format!("extends = \"none\"\n{SCMS_JOB}"))).unwrap_err();
        assert!(err.to_string().contains("unknown process node"), "{err}");
    }

    #[test]
    fn custom_heterogeneous_system() {
        let s = Scenario::from_toml(&minimal(concat!(
            "[[portfolio]]\n",
            "name = \"amd-like\"\n",
            "scheme = \"custom\"\n",
            "flow = \"chip-first\"\n",
            "[[portfolio.system]]\n",
            "name = \"epyc\"\n",
            "integration = \"mcm\"\n",
            "quantity = 1000000\n",
            "[[portfolio.system.chip]]\n",
            "name = \"ccd\"\n",
            "node = \"7nm\"\n",
            "count = 8\n",
            "[[portfolio.system.chip.module]]\n",
            "name = \"cores\"\n",
            "area_mm2 = 67.0\n",
            "[[portfolio.system.chip]]\n",
            "name = \"iod\"\n",
            "node = \"12nm\"\n",
            "[[portfolio.system.chip.module]]\n",
            "name = \"io\"\n",
            "area_mm2 = 370.0\n",
        )))
        .unwrap();
        let run = s.run(1).unwrap();
        assert_eq!(run.cost_rows.len(), 1);
        let row = &run.cost_rows[0];
        assert_eq!(row.system, "epyc");
        assert!(row.per_unit_usd > 0.0);
    }

    #[test]
    fn yield_job_matches_direct_computation() {
        let s = Scenario::from_toml(&minimal(concat!(
            "[[yield]]\n",
            "name = \"y\"\n",
            "techs = [\"7nm\", \"2.5d\"]\n",
            "areas_mm2 = [100, 800]\n",
        )))
        .unwrap();
        let run = s.run(1).unwrap();
        assert_eq!(run.yield_rows.len(), 4);
        let lib = TechLibrary::paper_defaults().unwrap();
        let n7 = lib.node("7nm").unwrap();
        let direct = n7.die_yield(actuary_units::Area::from_mm2(100.0).unwrap());
        assert_eq!(run.yield_rows[0].yield_frac, direct.value());
        assert!(run.yields_artifact().csv().contains("2.5D-interposer"));
    }

    #[test]
    fn explore_job_rides_the_dse_engine() {
        let s = Scenario::from_toml(&minimal(concat!(
            "[explore]\n",
            "nodes = [\"7nm\"]\n",
            "areas_mm2 = [200.0, 400.0]\n",
            "quantities = [500000]\n",
            "integrations = [\"soc\", \"mcm\"]\n",
            "chiplets = [1, 2]\n",
            "schemes = [\"none\", \"scms\"]\n",
        )))
        .unwrap();
        let run = s.run(1).unwrap();
        assert_eq!(run.explores.len(), 1);
        let result = &run.explores[0].result;
        assert_eq!(result.len(), 2 * 2 * 2 * 2);
        assert!(result.feasible_count() > 0);
    }

    #[test]
    fn sweep_job_runs_the_figure4_workload() {
        let s = Scenario::from_toml(&minimal(concat!(
            "[[sweep]]\n",
            "name = \"re\"\n",
            "node = \"7nm\"\n",
            "chiplets = 2\n",
            "integrations = [\"soc\", \"mcm\"]\n",
            "areas_mm2 = [100, 400, 900]\n",
        )))
        .unwrap();
        let run = s.run(1).unwrap();
        assert_eq!(run.sweeps.len(), 1);
        let sweep = &run.sweeps[0].sweep;
        assert_eq!(sweep.points().len(), 3);
        assert_eq!(sweep.x_label(), "area_mm2");
        // §4.1: at 7nm the 2-chiplet MCM overtakes the SoC within the grid.
        let mcm = sweep.series_values("MCM").unwrap();
        let soc = sweep.series_values("SoC").unwrap();
        assert!(mcm[2].1 < soc[2].1, "MCM must win at 900 mm²");
        // The run's only artifact is the sweep table, job-qualified.
        let artifacts = run.artifacts();
        assert_eq!(artifacts.len(), 1);
        assert_eq!(artifacts[0].name(), "re-sweep");
        assert_eq!(artifacts[0].kind(), "sweep");
        let csv = run.sweeps[0].sweep.artifact("re-sweep").csv();
        assert!(csv.starts_with("area_mm2,SoC,MCM\n"), "{csv}");
    }

    #[test]
    fn quantity_sweep_runs_the_crossover_workload() {
        // §4.2 declaratively: per-unit total cost vs production quantity at
        // a fixed area. NRE dominates at low volume, so every series must
        // fall monotonically as the quantity grows.
        let s = Scenario::from_toml(&minimal(concat!(
            "[[sweep]]\n",
            "name = \"payback\"\n",
            "node = \"7nm\"\n",
            "chiplets = 2\n",
            "area_mm2 = 600.0\n",
            "integrations = [\"soc\", \"mcm\"]\n",
            "quantities = [10000, 100000, 1000000, 10000000]\n",
        )))
        .unwrap();
        let run = s.run(1).unwrap();
        let sweep = &run.sweeps[0].sweep;
        assert_eq!(sweep.x_label(), "quantity");
        assert_eq!(sweep.points().len(), 4);
        for name in ["SoC", "MCM"] {
            let values = sweep.series_values(name).unwrap();
            for pair in values.windows(2) {
                assert!(
                    pair[1].1 < pair[0].1,
                    "{name}: per-unit total must fall with quantity, got {values:?}"
                );
            }
        }
        let csv = run.artifacts().remove(0).csv();
        assert!(csv.starts_with("quantity,SoC,MCM\n"), "{csv}");
    }

    #[test]
    fn sweep_axis_keys_are_mutually_exclusive() {
        let base = concat!(
            "[[sweep]]\n",
            "name = \"s\"\n",
            "node = \"7nm\"\n",
            "chiplets = 2\n",
            "integrations = [\"mcm\"]\n",
        );
        let cases: &[(String, &str)] = &[
            (
                minimal(&format!(
                    "{base}areas_mm2 = [100]\nquantities = [1000]\narea_mm2 = 100.0\n"
                )),
                "exactly one swept axis",
            ),
            (minimal(base), "exactly one swept axis"),
            (
                minimal(&format!("{base}quantities = [1000]\n")),
                "needs the fixed `area_mm2` key",
            ),
            (
                minimal(&format!("{base}areas_mm2 = [100]\narea_mm2 = 100.0\n")),
                "only pairs with a `quantities` sweep",
            ),
        ];
        for (input, fragment) in cases {
            let err = Scenario::from_toml(input).expect_err(input);
            assert!(
                err.to_string().contains(fragment),
                "{input:?}: {err} must mention {fragment:?}"
            );
        }
    }

    #[test]
    fn refine_mode_matches_the_exhaustive_explore_job() {
        let axes = concat!(
            "nodes = [\"7nm\"]\n",
            "areas_mm2 = [100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0]\n",
            "quantities = [500000, 10000000]\n",
            "integrations = [\"soc\", \"mcm\"]\n",
            "chiplets = [1, 2, 4]\n",
            "outputs = [\"winners\", \"pareto\"]\n",
        );
        let refined =
            Scenario::from_toml(&minimal(&format!("[explore]\nmode = \"refine\"\n{axes}")))
                .unwrap()
                .run(1)
                .unwrap();
        let exhaustive = Scenario::from_toml(&minimal(&format!(
            "[explore]\nmode = \"exhaustive\"\n{axes}"
        )))
        .unwrap()
        .run(1)
        .unwrap();
        let csvs = |run: &ScenarioRun| -> Vec<String> {
            run.artifacts().into_iter().map(|a| a.csv()).collect()
        };
        assert_eq!(csvs(&refined), csvs(&exhaustive));

        let err = Scenario::from_toml(&minimal("[explore]\nmode = \"wat\"\n")).unwrap_err();
        assert!(err.to_string().contains("unknown explore mode"), "{err}");
    }

    #[test]
    fn explore_outputs_select_the_emitted_artifacts() {
        let s = Scenario::from_toml(&minimal(concat!(
            "[explore]\n",
            "nodes = [\"7nm\"]\n",
            "areas_mm2 = [200.0, 400.0]\n",
            "quantities = [500000, 2000000]\n",
            "integrations = [\"soc\", \"mcm\"]\n",
            "chiplets = [1, 2]\n",
            "outputs = [\"winners\", \"pareto\", \"pareto_program\"]\n",
        )))
        .unwrap();
        let run = s.run(1).unwrap();
        let names: Vec<String> = run
            .artifacts()
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(
            names,
            [
                "explore-winners",
                "explore-pareto",
                "explore-pareto_program"
            ],
            "the grid was not selected, so it must not be emitted"
        );
    }

    #[test]
    fn sweep_and_outputs_schema_errors_name_positions() {
        let cases: &[(String, &str)] = &[
            (
                minimal(concat!(
                    "[[sweep]]\n",
                    "name = \"s\"\n",
                    "node = \"7nm\"\n",
                    "chiplets = 1\n",
                    "integrations = [\"mcm\"]\n",
                    "areas_mm2 = [100]\n",
                )),
                "at least 2 chiplets",
            ),
            (
                minimal(concat!(
                    "[explore]\n",
                    "nodes = [\"7nm\"]\n",
                    "outputs = [\"winers\"]\n",
                )),
                "unknown output",
            ),
            (
                minimal(concat!(
                    "[[sweep]]\n",
                    "name = \"s\"\n",
                    "node = \"7nm\"\n",
                    "chiplets = 2\n",
                    "integrations = [\"mcm\", \"mcm\"]\n",
                    "areas_mm2 = [100]\n",
                )),
                "duplicate integration",
            ),
            (
                minimal(concat!(
                    "[explore]\n",
                    "nodes = [\"7nm\"]\n",
                    "outputs = [\"grid\", \"grid\"]\n",
                )),
                "duplicate output",
            ),
        ];
        for (input, fragment) in cases {
            let err = Scenario::from_toml(input).expect_err(input);
            let message = err.to_string();
            assert!(message.starts_with("line "), "{input:?}: {message}");
            assert!(
                message.contains(fragment),
                "{input:?}: {message} must mention {fragment:?}"
            );
        }
    }

    #[test]
    fn scenario_without_jobs_is_rejected() {
        let err = Scenario::from_toml("name = \"t\"\n").unwrap_err();
        assert!(err.to_string().contains("defines no jobs"), "{err}");
    }

    #[test]
    fn duplicate_job_names_are_rejected() {
        let err = Scenario::from_toml(&minimal(&format!("{SCMS_JOB}{SCMS_JOB}"))).unwrap_err();
        assert!(err.to_string().contains("duplicate job name"), "{err}");
    }

    #[test]
    fn names_that_would_escape_the_output_directory_are_rejected() {
        // Scenario and job names become output file names; a traversal
        // name must fail at parse time, pointing at the value.
        for bad in ["../evil", "a/b", "", "a b"] {
            let input = minimal(SCMS_JOB).replace("name = \"t\"", &format!("name = \"{bad}\""));
            let err = Scenario::from_toml(&input).expect_err(bad);
            assert!(
                err.to_string().contains("names output files"),
                "{bad}: {err}"
            );
        }
        let input = minimal(&SCMS_JOB.replace("name = \"j\"", "name = \"../j\""));
        let err = Scenario::from_toml(&input).unwrap_err();
        assert!(err.to_string().contains("job name"), "{err}");
    }

    #[test]
    fn non_bare_node_ids_survive_the_round_trip() {
        use actuary_units::Money;
        let mut lib = TechLibrary::paper_defaults().unwrap();
        // An id that is not a bare TOML key (contains a dot) must be quoted
        // by the writer and reparsed identically.
        lib.insert_node(
            actuary_tech::ProcessNode::builder("8.5nm")
                .defect_density(0.1)
                .wafer_price(Money::from_usd(5_000.0).unwrap())
                .k_module(Money::from_usd(300_000.0).unwrap())
                .k_chip(Money::from_usd(180_000.0).unwrap())
                .mask_set(Money::from_musd(5.0).unwrap())
                .build()
                .unwrap(),
        );
        let toml = library_to_scenario("weird", &lib);
        let s = Scenario::from_toml(&format!(
            "{toml}\n[[yield]]\nname = \"y\"\ntechs = [\"8.5nm\"]\nareas_mm2 = [100]\n"
        ))
        .unwrap();
        assert_eq!(s.library, lib);
    }

    #[test]
    fn library_round_trips_through_scenario_form() {
        let lib = TechLibrary::paper_defaults().unwrap();
        let toml = library_to_scenario("roundtrip", &lib);
        let s = Scenario::from_toml(&format!(
            "{toml}\n[[yield]]\nname = \"y\"\ntechs = [\"7nm\"]\nareas_mm2 = [100]\n"
        ))
        .unwrap();
        assert_eq!(s.library, lib);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    proptest! {
        /// The parser and schema never panic, whatever the input.
        #[test]
        fn parser_never_panics(bytes in proptest::collection::vec(0u8..=255u8, 0..200usize)) {
            let input = String::from_utf8_lossy(&bytes);
            let _ = crate::Scenario::from_toml(&input);
        }

        /// Printable, structured-looking input doesn't panic either.
        #[test]
        fn structured_fuzz_never_panics(
            bytes in proptest::collection::vec(32u8..127u8, 0..40usize),
            which in 0u8..4u8,
        ) {
            let payload: String = bytes.iter().map(|&b| b as char).collect();
            let input = match which {
                0 => format!("{payload} = 1\n"),
                1 => format!("a = {payload}\n"),
                2 => format!("[{payload}]\nx = 1\n"),
                _ => format!("name = \"t\"\n[[portfolio]]\n{payload}\n"),
            };
            let _ = crate::Scenario::from_toml(&input);
        }
    }
}
