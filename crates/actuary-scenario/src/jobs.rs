//! Scenario jobs: `[[portfolio]]` / `[[yield]]` / `[[sweep]]` tables and
//! the `[explore]` table, lowered into `actuary-arch` portfolios and an
//! `actuary-dse` [`PortfolioSpace`], plus the runner that executes them
//! through the existing engines and emits every result as a named
//! streaming [`Artifact`].

use std::collections::BTreeSet;
use std::fmt;

use actuary_arch::reuse::{FsmcSpec, OcmeSpec, ScmsSpec};
use actuary_arch::{ArchError, Chip, Module, Portfolio, System};
use actuary_dse::optimizer::candidate_core;
use actuary_dse::portfolio::{
    explore_portfolio, explore_portfolio_shared, parse_fsmc_situation, PortfolioResult,
    PortfolioSpace, ReuseScheme, SharedCoreCache,
};
use actuary_dse::refine::{
    explore_portfolio_refined_observed, ExploreMode, RefineObserver, RefineOptions,
};
use actuary_dse::sweep::{sweep_area, sweep_quantity, Sweep};
use actuary_model::{re_cost, AssemblyFlow, DiePlacement};
use actuary_tech::{IntegrationKind, NodeId, TechLibrary};
use actuary_units::{Area, Artifact, Quantity};

use crate::error::ScenarioError;
use crate::schema::{elem_f64, elem_str, elem_u32, elem_u64, Spanned, View};
use crate::tech::{library_to_scenario, lower_library, parse_kind};
use crate::toml::{parse, Pos, Table};

/// A fully lowered scenario: a technology library plus the jobs to run.
#[derive(Debug)]
pub struct Scenario {
    /// Scenario name (used for output file naming).
    pub name: String,
    /// Optional free-form description.
    pub description: Option<String>,
    /// The technology library (presets plus overlays).
    pub library: TechLibrary,
    /// The jobs, in file order per kind (portfolio, then yield, then
    /// explore).
    pub jobs: Vec<Job>,
}

/// One executable unit of a scenario.
#[derive(Debug)]
pub enum Job {
    /// Cost a portfolio and report one row per member system.
    Cost(CostJob),
    /// Tabulate die yield and cost-per-area over an area grid (Figure 2's
    /// workload).
    Yield(YieldJob),
    /// Sweep per-unit RE cost over an area grid, one series per
    /// integration kind (Figure 4's workload).
    Sweep(SweepJob),
    /// Run a multi-axis grid exploration.
    Explore(ExploreJob),
}

impl Job {
    /// The job's name.
    pub fn name(&self) -> &str {
        match self {
            Job::Cost(j) => &j.name,
            Job::Yield(j) => &j.name,
            Job::Sweep(j) => &j.name,
            Job::Explore(j) => &j.name,
        }
    }
}

/// A portfolio-costing job.
#[derive(Debug)]
pub struct CostJob {
    /// Job name (unique within the scenario).
    pub name: String,
    /// Assembly flow the portfolio is costed under.
    pub flow: AssemblyFlow,
    /// The portfolio to cost.
    pub portfolio: Portfolio,
}

/// One technology of a yield job.
#[derive(Debug)]
pub enum YieldTech {
    /// A process node id.
    Node(String),
    /// The interposer process of a packaging technology (`info` / `2.5d`).
    Interposer(IntegrationKind),
}

impl fmt::Display for YieldTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YieldTech::Node(id) => f.write_str(id),
            YieldTech::Interposer(kind) => write!(f, "{kind}-interposer"),
        }
    }
}

/// A yield/cost-per-area tabulation job.
#[derive(Debug)]
pub struct YieldJob {
    /// Job name.
    pub name: String,
    /// The technologies to tabulate.
    pub techs: Vec<YieldTech>,
    /// The area grid in mm².
    pub areas_mm2: Vec<f64>,
}

/// One selectable output surface of an explore job (the `outputs` key):
/// which [`Artifact`]s the job emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreOutput {
    /// The full per-cell grid (the default).
    Grid,
    /// The per-scheme winner tables (the cheapest configuration of every
    /// operating point).
    Winners,
    /// The per-scheme Pareto fronts over (per-unit cost, chiplet count).
    Pareto,
    /// The per-scheme Pareto fronts over (program total, per-unit cost).
    ParetoProgram,
}

impl ExploreOutput {
    /// Every output, in emission order.
    pub const ALL: [ExploreOutput; 4] = [
        ExploreOutput::Grid,
        ExploreOutput::Winners,
        ExploreOutput::Pareto,
        ExploreOutput::ParetoProgram,
    ];

    /// The stable label used in scenario files and artifact names.
    pub fn label(self) -> &'static str {
        match self {
            ExploreOutput::Grid => "grid",
            ExploreOutput::Winners => "winners",
            ExploreOutput::Pareto => "pareto",
            ExploreOutput::ParetoProgram => "pareto_program",
        }
    }
}

impl fmt::Display for ExploreOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExploreOutput {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "grid" => Ok(ExploreOutput::Grid),
            "winners" => Ok(ExploreOutput::Winners),
            "pareto" => Ok(ExploreOutput::Pareto),
            "pareto_program" | "pareto-program" => Ok(ExploreOutput::ParetoProgram),
            other => Err(format!(
                "unknown output {other:?} (grid|winners|pareto|pareto_program)"
            )),
        }
    }
}

/// A grid-exploration job.
#[derive(Debug)]
pub struct ExploreJob {
    /// Job name.
    pub name: String,
    /// The exploration space.
    pub space: PortfolioSpace,
    /// How the grid is walked: exhaustively (the default) or coarse-to-fine
    /// (the `mode = "refine"` key).
    pub mode: ExploreMode,
    /// Coarse sampling stride along the quantity axis for `mode =
    /// "refine"` (the `quantity_stride` key); `0` lets the engine pick
    /// from the axis length.
    pub quantity_stride: usize,
    /// Which surfaces the job emits, in file order (default: the grid).
    pub outputs: Vec<ExploreOutput>,
}

/// The swept axis of a `[[sweep]]` job.
#[derive(Debug)]
pub enum SweepAxis {
    /// Per-unit RE cost vs total module area (the `areas_mm2` key — the
    /// paper's Figure 4 panels).
    Area(Vec<f64>),
    /// Per-unit *total* cost (RE plus amortized NRE) vs production
    /// quantity at a fixed module area (the `quantities` + `area_mm2`
    /// keys — the §4.2 crossover study, where NRE amortization decides
    /// the turning point).
    Quantity {
        /// The fixed total module area in mm².
        area_mm2: f64,
        /// The swept production quantities.
        quantities: Vec<u64>,
    },
}

/// A sweep job: cost curves over one swept axis, one series per
/// integration kind, declaratively.
#[derive(Debug)]
pub struct SweepJob {
    /// Job name.
    pub name: String,
    /// Process node of every series.
    pub node: String,
    /// Chiplet count of the multi-chip series (SoC series ignore it, as in
    /// the figures).
    pub chiplets: u32,
    /// One series per integration kind, in file order.
    pub integrations: Vec<IntegrationKind>,
    /// The swept axis (`areas_mm2`, or `quantities` with a fixed
    /// `area_mm2`).
    pub axis: SweepAxis,
    /// Assembly flow of every series.
    pub flow: AssemblyFlow,
}

/// One row of a cost job's output: a member system's per-unit breakdown in
/// raw dollars.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Job name.
    pub job: String,
    /// System name within the portfolio.
    pub system: String,
    /// Production quantity of the system.
    pub quantity: u64,
    /// Per-unit RE.
    pub re_usd: f64,
    /// Per-unit RE spent on packaging.
    pub re_packaging_usd: f64,
    /// Per-unit amortized module NRE.
    pub nre_modules_usd: f64,
    /// Per-unit amortized chip NRE.
    pub nre_chips_usd: f64,
    /// Per-unit amortized package NRE.
    pub nre_packages_usd: f64,
    /// Per-unit amortized D2D NRE.
    pub nre_d2d_usd: f64,
    /// Per-unit total (RE + amortized NRE).
    pub per_unit_usd: f64,
}

/// One row of a yield job's output.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldRow {
    /// Job name.
    pub job: String,
    /// Technology label.
    pub tech: String,
    /// Die area in mm².
    pub area_mm2: f64,
    /// Die yield per Eq. (1).
    pub yield_frac: f64,
    /// Raw (unyielded) die cost.
    pub raw_die_usd: f64,
    /// Cost per good die.
    pub yielded_die_usd: f64,
    /// Cost per good mm², normalized to the raw-wafer cost per usable mm²
    /// (Figure 2's y-axis).
    pub cost_per_area_norm: f64,
}

/// An executed explore job.
#[derive(Debug)]
pub struct ExploreRun {
    /// Job name.
    pub name: String,
    /// The surfaces the job selected (drives [`ScenarioRun::artifacts`]).
    pub outputs: Vec<ExploreOutput>,
    /// The grid result.
    pub result: PortfolioResult,
}

/// An executed sweep job.
#[derive(Debug)]
pub struct SweepRun {
    /// Job name.
    pub name: String,
    /// The sampled sweep.
    pub sweep: Sweep,
}

/// Everything a scenario run produced.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The scenario's name.
    pub name: String,
    /// All cost rows, in job order then portfolio order.
    pub cost_rows: Vec<CostRow>,
    /// All yield rows, in job order.
    pub yield_rows: Vec<YieldRow>,
    /// All explore results, in job order.
    pub explores: Vec<ExploreRun>,
    /// All sweep results, in job order.
    pub sweeps: Vec<SweepRun>,
}

impl ScenarioRun {
    /// The run's results as a stream of named [`Artifact`]s, in emission
    /// order: the cost rows (if any), the yield rows (if any), every
    /// explore job's selected surfaces, every sweep. Artifact names are
    /// the output file stems — a consumer writes
    /// `<scenario>-<artifact>.csv` per entry, streams them over HTTP, or
    /// concatenates them for stdout; nothing is materialized until a sink
    /// asks.
    pub fn artifacts(&self) -> Vec<Artifact<'_>> {
        let mut out = Vec::new();
        if !self.cost_rows.is_empty() {
            out.push(self.costs_artifact());
        }
        if !self.yield_rows.is_empty() {
            out.push(self.yields_artifact());
        }
        for explore in &self.explores {
            for output in &explore.outputs {
                let artifact = match output {
                    ExploreOutput::Grid => explore.result.grid_artifact(),
                    ExploreOutput::Winners => explore.result.winners_artifact(),
                    ExploreOutput::Pareto => explore.result.pareto_artifact(),
                    ExploreOutput::ParetoProgram => explore.result.pareto_program_artifact(),
                };
                out.push(artifact.named(format!("{}-{}", explore.name, output.label())));
            }
        }
        for s in &self.sweeps {
            out.push(s.sweep.artifact(format!("{}-sweep", s.name)));
        }
        out
    }

    /// The cost rows as an [`Artifact`] named `"costs"`, one row per
    /// member system in job order.
    pub fn costs_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "costs",
            "costs",
            &[
                "job",
                "system",
                "quantity",
                "re_usd",
                "re_packaging_usd",
                "nre_modules_usd",
                "nre_chips_usd",
                "nre_packages_usd",
                "nre_d2d_usd",
                "per_unit_usd",
            ],
            move |emit| {
                for r in &self.cost_rows {
                    emit(&[
                        r.job.clone(),
                        r.system.clone(),
                        r.quantity.to_string(),
                        format!("{:.6}", r.re_usd),
                        format!("{:.6}", r.re_packaging_usd),
                        format!("{:.6}", r.nre_modules_usd),
                        format!("{:.6}", r.nre_chips_usd),
                        format!("{:.6}", r.nre_packages_usd),
                        format!("{:.6}", r.nre_d2d_usd),
                        format!("{:.6}", r.per_unit_usd),
                    ])?;
                }
                Ok(())
            },
        )
    }

    /// The yield rows as an [`Artifact`] named `"yields"`, one row per
    /// (technology, area) in job order.
    pub fn yields_artifact(&self) -> Artifact<'_> {
        Artifact::new(
            "yields",
            "yields",
            &[
                "job",
                "tech",
                "area_mm2",
                "yield",
                "raw_die_usd",
                "yielded_die_usd",
                "norm_cost_per_area",
            ],
            move |emit| {
                for r in &self.yield_rows {
                    emit(&[
                        r.job.clone(),
                        r.tech.clone(),
                        format!("{}", r.area_mm2),
                        format!("{:.9}", r.yield_frac),
                        format!("{:.6}", r.raw_die_usd),
                        format!("{:.6}", r.yielded_die_usd),
                        format!("{:.9}", r.cost_per_area_norm),
                    ])?;
                }
                Ok(())
            },
        )
    }
}

impl Scenario {
    /// Parses and lowers a scenario document.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] for malformed TOML and
    /// [`ScenarioError::Schema`] for schema violations — both name the
    /// offending line and column.
    pub fn from_toml(input: &str) -> Result<Scenario, ScenarioError> {
        let doc = parse(input)?;
        Scenario::from_doc(&doc)
    }

    /// Lowers an already-parsed scenario document — the entry point for
    /// callers that need the parsed tree for other purposes too, like the
    /// server, which content-addresses requests by
    /// [`crate::canon::digest_document`] over the same `doc` it lowers.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Schema`] for schema violations, naming the
    /// offending line and column.
    pub fn from_doc(doc: &Table) -> Result<Scenario, ScenarioError> {
        let mut root = View::new(doc, "the scenario root");
        let name = check_file_name(root.req_str("name")?, "scenario name")?;
        let description = root.opt_str("description")?.map(|s| s.value.to_string());
        let library = lower_library(&mut root)?;

        let mut jobs = Vec::new();
        let mut names = BTreeSet::new();
        for table in root.opt_tables("portfolio")? {
            let job = lower_portfolio_job(table, &library)?;
            check_unique(&mut names, &job.name, table.pos)?;
            jobs.push(Job::Cost(job));
        }
        for table in root.opt_tables("yield")? {
            let job = lower_yield_job(table, &library)?;
            check_unique(&mut names, &job.name, table.pos)?;
            jobs.push(Job::Yield(job));
        }
        for table in root.opt_tables("sweep")? {
            let job = lower_sweep_job(table, &library)?;
            check_unique(&mut names, &job.name, table.pos)?;
            jobs.push(Job::Sweep(job));
        }
        for table in root.opt_tables("explore")? {
            let job = lower_explore_job(table, &library)?;
            check_unique(&mut names, &job.name, table.pos)?;
            jobs.push(Job::Explore(job));
        }
        root.deny_unknown()?;
        if jobs.is_empty() {
            return Err(ScenarioError::schema(
                doc.pos,
                "the scenario defines no jobs (add a [[portfolio]], [[yield]], [[sweep]] or \
                 [explore] table)",
            ));
        }
        Ok(Scenario {
            name,
            description,
            library,
            jobs,
        })
    }

    /// Serializes a library to scenario form; see
    /// [`library_to_scenario`].
    pub fn library_toml(name: &str, lib: &TechLibrary) -> String {
        library_to_scenario(name, lib)
    }

    /// Executes every job. `threads = 0` lets explore jobs use all
    /// hardware threads.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Engine`] naming the failing job.
    pub fn run(&self, threads: usize) -> Result<ScenarioRun, ScenarioError> {
        self.run_impl(threads, None)
    }

    /// [`Scenario::run`] with explore-job cores reused *across runs*
    /// through `cache`. `tag` must fingerprint the technology library this
    /// scenario lowered — use [`crate::canon::library_digest`] over the
    /// same document — so scenarios with different library overrides never
    /// share cores. Output is byte-identical to [`Scenario::run`].
    ///
    /// # Errors
    ///
    /// See [`Scenario::run`].
    pub fn run_shared(
        &self,
        threads: usize,
        cache: &SharedCoreCache,
        tag: [u8; 32],
    ) -> Result<ScenarioRun, ScenarioError> {
        self.run_impl(threads, Some((cache, tag)))
    }

    fn run_impl(
        &self,
        threads: usize,
        shared: Option<(&SharedCoreCache, [u8; 32])>,
    ) -> Result<ScenarioRun, ScenarioError> {
        let mut run = ScenarioRun {
            name: self.name.clone(),
            cost_rows: Vec::new(),
            yield_rows: Vec::new(),
            explores: Vec::new(),
            sweeps: Vec::new(),
        };
        let engine = |job: &str, e: &dyn fmt::Display| ScenarioError::Engine {
            context: job.to_string(),
            message: e.to_string(),
        };
        for job in &self.jobs {
            match job {
                Job::Cost(j) => {
                    let _span = actuary_obs::span!("scenario.cost");
                    let cost = j
                        .portfolio
                        .cost(&self.library, j.flow)
                        .map_err(|e| engine(&j.name, &e))?;
                    for sc in cost.systems() {
                        let nre = sc.nre_per_unit();
                        run.cost_rows.push(CostRow {
                            job: j.name.clone(),
                            system: sc.name().to_string(),
                            quantity: sc.quantity().count(),
                            re_usd: sc.re().total().usd(),
                            re_packaging_usd: sc.re().packaging_total().usd(),
                            nre_modules_usd: nre.modules.usd(),
                            nre_chips_usd: nre.chips.usd(),
                            nre_packages_usd: nre.packages.usd(),
                            nre_d2d_usd: nre.d2d.usd(),
                            per_unit_usd: sc.per_unit_total().usd(),
                        });
                    }
                }
                Job::Yield(j) => {
                    let _span = actuary_obs::span!("scenario.yield");
                    run_yield_job(&self.library, j, &mut run.yield_rows)
                        .map_err(|e| engine(&j.name, &e))?;
                }
                Job::Sweep(j) => {
                    let _span = actuary_obs::span!("scenario.sweep");
                    let sweep = run_sweep_job(&self.library, j).map_err(|e| engine(&j.name, &e))?;
                    run.sweeps.push(SweepRun {
                        name: j.name.clone(),
                        sweep,
                    });
                }
                Job::Explore(j) => {
                    let result = run_explore_job(&self.library, threads, shared, j, None)
                        .map_err(|e| engine(&j.name, &e))?;
                    run.explores.push(ExploreRun {
                        name: j.name.clone(),
                        outputs: j.outputs.clone(),
                        result,
                    });
                }
            }
        }
        Ok(run)
    }

    /// [`Scenario::run`] with incremental delivery: every artifact is
    /// handed to `sink` as soon as it is complete, and refine-mode explore
    /// jobs that emit the grid stream it *segment by segment* as
    /// refinement phases finish — the coarse segment goes out while
    /// bisection is still running — instead of holding the table back
    /// until the whole scenario returns.
    ///
    /// Delivery order: the cost table, the yield table, then each explore
    /// job (a streamed grid's segments first, then the job's remaining
    /// surfaces in selected order), then the sweeps. Within a streamed
    /// grid every segment is internally grid-ordered and every cell
    /// appears in exactly one segment, so re-sorting the concatenated
    /// rows by grid coordinates reproduces the batch grid byte for byte.
    ///
    /// The full [`ScenarioRun`] is still returned, so callers can cache
    /// or re-render it.
    ///
    /// # Errors
    ///
    /// See [`Scenario::run`]; additionally returns
    /// [`ScenarioError::Engine`] naming the job whose delivery the sink
    /// declined.
    pub fn run_streamed(
        &self,
        threads: usize,
        sink: &mut dyn StreamSink,
    ) -> Result<ScenarioRun, ScenarioError> {
        self.run_streamed_impl(threads, None, sink)
    }

    /// [`Scenario::run_streamed`] with explore-job cores reused across
    /// runs through `cache`; see [`Scenario::run_shared`] for the `tag`
    /// contract.
    ///
    /// # Errors
    ///
    /// See [`Scenario::run_streamed`].
    pub fn run_streamed_shared(
        &self,
        threads: usize,
        cache: &SharedCoreCache,
        tag: [u8; 32],
        sink: &mut dyn StreamSink,
    ) -> Result<ScenarioRun, ScenarioError> {
        self.run_streamed_impl(threads, Some((cache, tag)), sink)
    }

    fn run_streamed_impl(
        &self,
        threads: usize,
        shared: Option<(&SharedCoreCache, [u8; 32])>,
        sink: &mut dyn StreamSink,
    ) -> Result<ScenarioRun, ScenarioError> {
        let engine = |job: &str, e: &dyn fmt::Display| ScenarioError::Engine {
            context: job.to_string(),
            message: e.to_string(),
        };
        let abort = |job: &str| ScenarioError::Engine {
            context: job.to_string(),
            message: "the stream sink declined to continue".to_string(),
        };
        // Non-explore jobs first (the lowering already groups them ahead
        // of [explore]), so the cost and yield tables are complete — and
        // on the wire — before the first long-running grid starts.
        let mut run = ScenarioRun {
            name: self.name.clone(),
            cost_rows: Vec::new(),
            yield_rows: Vec::new(),
            explores: Vec::new(),
            sweeps: Vec::new(),
        };
        for job in &self.jobs {
            match job {
                Job::Cost(j) => {
                    let _span = actuary_obs::span!("scenario.cost");
                    let cost = j
                        .portfolio
                        .cost(&self.library, j.flow)
                        .map_err(|e| engine(&j.name, &e))?;
                    for sc in cost.systems() {
                        let nre = sc.nre_per_unit();
                        run.cost_rows.push(CostRow {
                            job: j.name.clone(),
                            system: sc.name().to_string(),
                            quantity: sc.quantity().count(),
                            re_usd: sc.re().total().usd(),
                            re_packaging_usd: sc.re().packaging_total().usd(),
                            nre_modules_usd: nre.modules.usd(),
                            nre_chips_usd: nre.chips.usd(),
                            nre_packages_usd: nre.packages.usd(),
                            nre_d2d_usd: nre.d2d.usd(),
                            per_unit_usd: sc.per_unit_total().usd(),
                        });
                    }
                }
                Job::Yield(j) => {
                    let _span = actuary_obs::span!("scenario.yield");
                    run_yield_job(&self.library, j, &mut run.yield_rows)
                        .map_err(|e| engine(&j.name, &e))?;
                }
                Job::Sweep(j) => {
                    let _span = actuary_obs::span!("scenario.sweep");
                    let sweep = run_sweep_job(&self.library, j).map_err(|e| engine(&j.name, &e))?;
                    run.sweeps.push(SweepRun {
                        name: j.name.clone(),
                        sweep,
                    });
                }
                Job::Explore(_) => {}
            }
        }
        if !run.cost_rows.is_empty() && !sink.segment(run.costs_artifact(), false) {
            return Err(abort("costs"));
        }
        if !run.yield_rows.is_empty() && !sink.segment(run.yields_artifact(), false) {
            return Err(abort("yields"));
        }
        for job in &self.jobs {
            let Job::Explore(j) = job else {
                continue;
            };
            let streams_grid =
                j.mode == ExploreMode::Refine && j.outputs.contains(&ExploreOutput::Grid);
            let result = if streams_grid {
                let grid_name = format!("{}-grid", j.name);
                let mut first = true;
                let mut delivered = true;
                let mut observer = |_phase, snapshot: &PortfolioResult, fresh: &[usize]| {
                    let segment = snapshot
                        .grid_rows_artifact(fresh.to_vec())
                        .named(grid_name.clone());
                    delivered = sink.segment(segment, !first);
                    first = false;
                    delivered
                };
                let result =
                    run_explore_job(&self.library, threads, shared, j, Some(&mut observer));
                if !delivered {
                    return Err(abort(&j.name));
                }
                let result = result.map_err(|e| engine(&j.name, &e))?;
                // The evaluated cells all went out with the phases above;
                // the pruned/incompatible residual completes the table.
                if !sink.segment(result.grid_unstored_artifact().named(grid_name), true) {
                    return Err(abort(&j.name));
                }
                result
            } else {
                run_explore_job(&self.library, threads, shared, j, None)
                    .map_err(|e| engine(&j.name, &e))?
            };
            for output in &j.outputs {
                if streams_grid && *output == ExploreOutput::Grid {
                    continue;
                }
                let artifact = match output {
                    ExploreOutput::Grid => result.grid_artifact(),
                    ExploreOutput::Winners => result.winners_artifact(),
                    ExploreOutput::Pareto => result.pareto_artifact(),
                    ExploreOutput::ParetoProgram => result.pareto_program_artifact(),
                };
                if !sink.segment(
                    artifact.named(format!("{}-{}", j.name, output.label())),
                    false,
                ) {
                    return Err(abort(&j.name));
                }
            }
            run.explores.push(ExploreRun {
                name: j.name.clone(),
                outputs: j.outputs.clone(),
                result,
            });
        }
        for s in &run.sweeps {
            if !sink.segment(s.sweep.artifact(format!("{}-sweep", s.name)), false) {
                return Err(abort(&s.name));
            }
        }
        Ok(run)
    }
}

/// Runs one explore job through the engine the job's mode selects,
/// threading the optional shared core cache and (for refine mode) the
/// optional phase observer — the single dispatch [`Scenario::run`] and
/// [`Scenario::run_streamed`] both go through.
fn run_explore_job(
    library: &TechLibrary,
    threads: usize,
    shared: Option<(&SharedCoreCache, [u8; 32])>,
    j: &ExploreJob,
    observer: Option<&mut RefineObserver<'_>>,
) -> Result<PortfolioResult, ArchError> {
    let mut span = actuary_obs::span!("scenario.explore");
    span.record("cells", j.space.len() as u64);
    match j.mode {
        ExploreMode::Exhaustive => match shared {
            None => explore_portfolio(library, &j.space, threads),
            Some((cache, tag)) => explore_portfolio_shared(library, &j.space, threads, cache, tag),
        },
        ExploreMode::Refine => {
            let options = RefineOptions {
                area_stride: 0,
                quantity_stride: j.quantity_stride,
            };
            explore_portfolio_refined_observed(
                library, &j.space, threads, options, shared, observer,
            )
        }
    }
}

/// The incremental consumer [`Scenario::run_streamed`] delivers to: one
/// call per artifact segment, in emission order. A segment with
/// `continuation = false` opens a new artifact (its serialization carries
/// the header or metadata line); `continuation = true` extends the
/// previously opened artifact of the same name with more rows (serialize
/// it rows-only, e.g. [`Artifact::write_csv_rows_to`]). Returning `false`
/// abandons the run.
pub trait StreamSink {
    /// Receives one artifact segment; see the trait docs for the
    /// continuation contract.
    fn segment(&mut self, artifact: Artifact<'_>, continuation: bool) -> bool;
}

/// Validates a scenario or job name. Names become output file names
/// (`<scenario>-<job>-grid.csv`), so they are restricted to a safe
/// character set — a `name = "../evil"` must not escape `--out-dir`.
fn check_file_name(s: Spanned<&str>, what: &str) -> Result<String, ScenarioError> {
    let ok = !s.value.is_empty()
        && s.value
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if !ok {
        return Err(ScenarioError::schema(
            s.pos,
            format!(
                "{what} {:?} must be non-empty and use only letters, digits, `-`, `_` and \
                 `.` (it names output files)",
                s.value
            ),
        ));
    }
    Ok(s.value.to_string())
}

/// Validates a `quantities` axis: strictly increasing, diagnosed by axis
/// name and offending value. Both the sweep and explore quantity axes
/// feed machinery that walks them as *ordered* axes — amortization
/// crossover curves, coarse-to-fine refinement — so an unordered or
/// duplicated list is always a mistake, caught at the schema layer where
/// the diagnostic can point at the element.
fn check_increasing_quantities(list: Vec<(u64, Pos)>) -> Result<Vec<u64>, ScenarioError> {
    for pair in list.windows(2) {
        let ((prev, _), (next, pos)) = (pair[0], pair[1]);
        if next <= prev {
            return Err(ScenarioError::schema(
                pos,
                format!(
                    "the `quantities` axis must be strictly increasing ({next} follows {prev})"
                ),
            ));
        }
    }
    Ok(list.into_iter().map(|(q, _)| q).collect())
}

fn check_unique(names: &mut BTreeSet<String>, name: &str, pos: Pos) -> Result<(), ScenarioError> {
    if !names.insert(name.to_string()) {
        return Err(ScenarioError::schema(
            pos,
            format!("duplicate job name `{name}`"),
        ));
    }
    Ok(())
}

/// Validates a node reference against the library, pointing at the value.
fn check_node(lib: &TechLibrary, id: Spanned<&str>) -> Result<NodeId, ScenarioError> {
    lib.node(id.value)
        .map_err(|e| ScenarioError::schema(id.pos, e.to_string()))?;
    Ok(NodeId::new(id.value))
}

fn parse_flow(s: Spanned<&str>) -> Result<AssemblyFlow, ScenarioError> {
    // The grammar is owned by actuary-model's FromStr, shared with the CLI.
    s.value
        .parse()
        .map_err(|message: String| ScenarioError::schema(s.pos, message))
}

fn area_mm2(v: Spanned<f64>) -> Result<Area, ScenarioError> {
    Area::from_mm2(v.value).map_err(|e| ScenarioError::schema(v.pos, e.to_string()))
}

/// Lowers one `[[portfolio]]` table into a [`CostJob`].
fn lower_portfolio_job(table: &Table, lib: &TechLibrary) -> Result<CostJob, ScenarioError> {
    let mut view = View::new(table, "[[portfolio]]");
    let name = check_file_name(view.req_str("name")?, "job name")?;
    let scheme = view.req_str("scheme")?;
    let flow = match view.opt_str("flow")? {
        Some(s) => parse_flow(s)?,
        None => AssemblyFlow::ChipLast,
    };
    let soc_baseline = match view.opt_str("baseline")? {
        None => false,
        Some(s) => match s.value {
            "reuse" | "multi-chip" => false,
            "soc" | "monolithic" => true,
            other => {
                return Err(ScenarioError::schema(
                    s.pos,
                    format!("unknown baseline {other:?} (reuse|soc)"),
                ))
            }
        },
    };
    let portfolio = match scheme.value {
        "scms" => {
            let node = check_node(lib, view.req_str("node")?)?;
            let spec = ScmsSpec {
                chiplet_module_area: area_mm2(view.req_f64("chiplet_module_area_mm2")?)?,
                node,
                multiplicities: view
                    .req_array("multiplicities", |v, p| elem_u32(v, p, "a multiplicity"))?,
                integration: {
                    let s = view.req_str("integration")?;
                    parse_kind(s.value, s.pos)?
                },
                quantity_each: Quantity::new(view.req_u64("quantity")?.value),
                package_reuse: view.opt_bool("package_reuse")?.is_some_and(|s| s.value),
            };
            view.deny_unknown()?;
            build_reuse_portfolio(&name, || {
                if soc_baseline {
                    spec.soc_portfolio()
                } else {
                    spec.portfolio()
                }
            })?
        }
        "ocme" => {
            let node = check_node(lib, view.req_str("node")?)?;
            let center_node = match view.opt_str("center_node")? {
                None => None,
                Some(s) => Some(check_node(lib, s)?),
            };
            let spec = OcmeSpec {
                socket_module_area: area_mm2(view.req_f64("socket_module_area_mm2")?)?,
                node,
                center_node,
                integration: {
                    let s = view.req_str("integration")?;
                    parse_kind(s.value, s.pos)?
                },
                quantity_each: Quantity::new(view.req_u64("quantity")?.value),
                package_reuse: view.opt_bool("package_reuse")?.is_some_and(|s| s.value),
            };
            view.deny_unknown()?;
            build_reuse_portfolio(&name, || {
                if soc_baseline {
                    spec.soc_portfolio()
                } else {
                    spec.portfolio()
                }
            })?
        }
        "fsmc" => {
            let node = check_node(lib, view.req_str("node")?)?;
            let spec = FsmcSpec {
                sockets: view.req_u32("sockets")?.value,
                chiplet_types: view.req_u32("chiplet_types")?.value,
                socket_module_area: area_mm2(view.req_f64("socket_module_area_mm2")?)?,
                node,
                integration: {
                    let s = view.req_str("integration")?;
                    parse_kind(s.value, s.pos)?
                },
                quantity_each: Quantity::new(view.req_u64("quantity")?.value),
            };
            view.deny_unknown()?;
            build_reuse_portfolio(&name, || {
                if soc_baseline {
                    spec.soc_portfolio()
                } else {
                    spec.portfolio()
                }
            })?
        }
        "custom" => {
            let systems = view.opt_tables("system")?;
            view.deny_unknown()?;
            if systems.is_empty() {
                return Err(ScenarioError::schema(
                    table.pos,
                    format!("custom portfolio `{name}` needs at least one [[portfolio.system]]"),
                ));
            }
            if soc_baseline {
                return Err(ScenarioError::schema(
                    table.pos,
                    "custom portfolios have no generated SoC baseline; describe it explicitly"
                        .to_string(),
                ));
            }
            let mut built = Vec::with_capacity(systems.len());
            for system in systems {
                built.push(lower_system(system, lib)?);
            }
            Portfolio::new(built)
        }
        other => {
            return Err(ScenarioError::schema(
                scheme.pos,
                format!("unknown scheme {other:?} (scms|ocme|fsmc|custom)"),
            ))
        }
    };
    Ok(CostJob {
        name,
        flow,
        portfolio,
    })
}

/// Builds a reuse-scheme portfolio, mapping spec errors to schema errors
/// with the job's name.
fn build_reuse_portfolio(
    name: &str,
    build: impl FnOnce() -> Result<Portfolio, actuary_arch::ArchError>,
) -> Result<Portfolio, ScenarioError> {
    build().map_err(|e| ScenarioError::Engine {
        context: name.to_string(),
        message: e.to_string(),
    })
}

/// Lowers one `[[portfolio.system]]` table.
fn lower_system(table: &Table, lib: &TechLibrary) -> Result<System, ScenarioError> {
    let mut view = View::new(table, "[[portfolio.system]]");
    let name = view.req_str("name")?.value.to_string();
    let integration = {
        let s = view.req_str("integration")?;
        parse_kind(s.value, s.pos)?
    };
    let quantity = view.req_u64("quantity")?.value;
    let package_design = view.opt_str("package_design")?.map(|s| s.value.to_string());
    let chips = view.opt_tables("chip")?;
    view.deny_unknown()?;
    if chips.is_empty() {
        return Err(ScenarioError::schema(
            table.pos,
            format!("system `{name}` needs at least one [[portfolio.system.chip]]"),
        ));
    }
    let mut builder = System::builder(&name, integration).quantity(Quantity::new(quantity));
    if let Some(design) = package_design {
        builder = builder.package_design(design);
    }
    for chip_table in chips {
        let (chip, count) = lower_chip(chip_table, lib)?;
        builder = builder.chip(chip, count);
    }
    builder.build().map_err(|e| ScenarioError::Schema {
        pos: table.pos,
        message: e.to_string(),
    })
}

/// Lowers one `[[portfolio.system.chip]]` table.
fn lower_chip(table: &Table, lib: &TechLibrary) -> Result<(Chip, u32), ScenarioError> {
    let mut view = View::new(table, "[[portfolio.system.chip]]");
    let name = view.req_str("name")?.value.to_string();
    let node = check_node(lib, view.req_str("node")?)?;
    let count = view.opt_u32("count")?.map_or(1, |s| s.value);
    let monolithic = view.opt_bool("monolithic")?.is_some_and(|s| s.value);
    let modules = view.opt_tables("module")?;
    view.deny_unknown()?;
    if modules.is_empty() {
        return Err(ScenarioError::schema(
            table.pos,
            format!("chip `{name}` needs at least one [[portfolio.system.chip.module]]"),
        ));
    }
    let mut built = Vec::with_capacity(modules.len());
    for module_table in modules {
        let mut m = View::new(module_table, "[[portfolio.system.chip.module]]");
        let module_name = m.req_str("name")?.value.to_string();
        let area = area_mm2(m.req_f64("area_mm2")?)?;
        let module_node = match m.opt_str("node")? {
            Some(s) => check_node(lib, s)?,
            None => node.clone(),
        };
        m.deny_unknown()?;
        built.push(Module::new(module_name, module_node, area));
    }
    let chip = if monolithic {
        Chip::monolithic(name, node, built)
    } else {
        Chip::chiplet(name, node, built)
    };
    Ok((chip, count))
}

/// Lowers one `[[yield]]` table.
fn lower_yield_job(table: &Table, lib: &TechLibrary) -> Result<YieldJob, ScenarioError> {
    let mut view = View::new(table, "[[yield]]");
    let name = check_file_name(view.req_str("name")?, "job name")?;
    let techs = view.req_array("techs", |v, p| {
        let s = elem_str(v, p, "a technology")?;
        match s.value.to_ascii_lowercase().as_str() {
            "info" | "rdl" => Ok(YieldTech::Interposer(IntegrationKind::Info)),
            "2.5d" | "si" | "si-interposer" => {
                Ok(YieldTech::Interposer(IntegrationKind::TwoPointFiveD))
            }
            _ => {
                check_node(lib, s)?;
                Ok(YieldTech::Node(s.value.to_string()))
            }
        }
    })?;
    let areas_mm2 = view.req_array("areas_mm2", |v, p| elem_f64(v, p, "an area"))?;
    view.deny_unknown()?;
    if techs.is_empty() || areas_mm2.is_empty() {
        return Err(ScenarioError::schema(
            table.pos,
            format!("yield job `{name}` needs at least one technology and one area"),
        ));
    }
    Ok(YieldJob {
        name,
        techs,
        areas_mm2,
    })
}

/// Executes a yield job (the Figure 2 computation, scenario-driven).
fn run_yield_job(
    lib: &TechLibrary,
    job: &YieldJob,
    rows: &mut Vec<YieldRow>,
) -> Result<(), Box<dyn std::error::Error>> {
    use actuary_yield::{NegativeBinomial, YieldModel};
    for tech in &job.techs {
        let (label, defect, cluster, price, wafer) = match tech {
            YieldTech::Node(id) => {
                let node = lib.node(id)?;
                (
                    tech.to_string(),
                    node.defect_density(),
                    node.cluster(),
                    node.wafer_price(),
                    node.wafer(),
                )
            }
            YieldTech::Interposer(kind) => {
                let p = lib.packaging(*kind)?;
                let ip = p
                    .interposer()
                    .ok_or_else(|| format!("{kind} packaging defines no interposer process"))?;
                (
                    tech.to_string(),
                    ip.defect_density(),
                    ip.cluster(),
                    ip.wafer_price(),
                    ip.wafer(),
                )
            }
        };
        let model = NegativeBinomial::new(cluster)?;
        let per_mm2 = wafer.cost_per_usable_mm2(price);
        for &mm2 in &job.areas_mm2 {
            let area = Area::from_mm2(mm2)?;
            let y = model.die_yield(defect, area);
            let raw = wafer.raw_die_cost(price, area)?;
            let yielded = raw * y.reciprocal()?;
            rows.push(YieldRow {
                job: job.name.clone(),
                tech: label.clone(),
                area_mm2: mm2,
                yield_frac: y.value(),
                raw_die_usd: raw.usd(),
                yielded_die_usd: yielded.usd(),
                cost_per_area_norm: (yielded.usd() / mm2) / per_mm2.usd(),
            });
        }
    }
    Ok(())
}

/// Lowers one `[[sweep]]` table into a [`SweepJob`].
fn lower_sweep_job(table: &Table, lib: &TechLibrary) -> Result<SweepJob, ScenarioError> {
    let mut view = View::new(table, "[[sweep]]");
    let name = check_file_name(view.req_str("name")?, "job name")?;
    let node = view.req_str("node")?;
    check_node(lib, node)?;
    let chiplets = view.req_u32("chiplets")?;
    // Each integration becomes a series column named after it, so
    // duplicates would emit ambiguous CSV columns — reject them like
    // duplicate `outputs`.
    let mut integrations: Vec<IntegrationKind> = Vec::new();
    for (kind, pos) in view.req_array("integrations", |v, p| {
        let s = elem_str(v, p, "an integration")?;
        Ok((parse_kind(s.value, s.pos)?, s.pos))
    })? {
        if integrations.contains(&kind) {
            return Err(ScenarioError::schema(
                pos,
                format!("duplicate integration `{kind}`"),
            ));
        }
        integrations.push(kind);
    }
    let areas_mm2 = view.opt_array("areas_mm2", |v, p| {
        let mm2 = elem_f64(v, p, "an area")?;
        Area::from_mm2(mm2).map_err(|e| ScenarioError::schema(p, e.to_string()))?;
        Ok(mm2)
    })?;
    let quantities = view
        .opt_array("quantities", |v, p| Ok((elem_u64(v, p, "a quantity")?, p)))?
        .map(check_increasing_quantities)
        .transpose()?;
    let fixed_area = view.opt_f64("area_mm2")?;
    let axis = match (areas_mm2, quantities) {
        (Some(areas), None) => {
            if let Some(a) = fixed_area {
                return Err(ScenarioError::schema(
                    a.pos,
                    "`area_mm2` only pairs with a `quantities` sweep (an `areas_mm2` sweep \
                     already sweeps the area)",
                ));
            }
            if areas.is_empty() {
                return Err(ScenarioError::schema(
                    table.pos,
                    format!("sweep job `{name}` needs at least one area"),
                ));
            }
            SweepAxis::Area(areas)
        }
        (None, Some(quantities)) => {
            let area = fixed_area.ok_or_else(|| {
                ScenarioError::schema(
                    table.pos,
                    format!("quantity sweep `{name}` needs the fixed `area_mm2` key"),
                )
            })?;
            Area::from_mm2(area.value)
                .map_err(|e| ScenarioError::schema(area.pos, e.to_string()))?;
            if quantities.is_empty() {
                return Err(ScenarioError::schema(
                    table.pos,
                    format!("sweep job `{name}` needs at least one quantity"),
                ));
            }
            SweepAxis::Quantity {
                area_mm2: area.value,
                quantities,
            }
        }
        (Some(_), Some(_)) | (None, None) => {
            return Err(ScenarioError::schema(
                table.pos,
                format!(
                    "sweep job `{name}` needs exactly one swept axis: `areas_mm2` or \
                     `quantities` (with a fixed `area_mm2`)"
                ),
            ));
        }
    };
    let flow = match view.opt_str("flow")? {
        Some(s) => parse_flow(s)?,
        None => AssemblyFlow::ChipLast,
    };
    view.deny_unknown()?;
    if integrations.is_empty() {
        return Err(ScenarioError::schema(
            table.pos,
            format!("sweep job `{name}` needs at least one integration"),
        ));
    }
    if chiplets.value < 2 && integrations.iter().any(|k| k.is_multi_chip()) {
        return Err(ScenarioError::schema(
            chiplets.pos,
            "multi-chip sweep series need at least 2 chiplets (a single die has no D2D \
             interface)",
        ));
    }
    Ok(SweepJob {
        name,
        node: node.value.to_string(),
        chiplets: chiplets.value,
        integrations,
        axis,
        flow,
    })
}

/// Executes a sweep job. An area sweep is the Figure 4 computation —
/// per-unit RE cost of every integration kind over the area grid,
/// multi-chip series splitting the module area across `chiplets`
/// D2D-inflated dies. A quantity sweep is the §4.2 crossover workload —
/// per-unit *total* cost (RE plus NRE amortized at each quantity) of every
/// integration kind at the fixed area, each series evaluating its
/// quantity-independent [`candidate_core`] once and re-amortizing it per
/// point.
#[allow(clippy::type_complexity)] // the series types are the sweep functions' own signatures
fn run_sweep_job(lib: &TechLibrary, job: &SweepJob) -> Result<Sweep, ArchError> {
    let node = lib.node(&job.node).map_err(ArchError::Tech)?;
    match &job.axis {
        SweepAxis::Area(areas_mm2) => {
            let mut series: Vec<(String, Box<dyn FnMut(Area) -> Result<f64, ArchError> + '_>)> =
                Vec::with_capacity(job.integrations.len());
            for &kind in &job.integrations {
                let packaging = lib.packaging(kind).map_err(ArchError::Tech)?;
                let (chiplets, flow) = (job.chiplets, job.flow);
                series.push((
                    kind.to_string(),
                    Box::new(move |area: Area| {
                        let placements = if kind.is_multi_chip() {
                            let die = node.d2d().inflate_module_area(area / f64::from(chiplets))?;
                            vec![DiePlacement::new(node, die, chiplets)]
                        } else {
                            vec![DiePlacement::new(node, area, 1)]
                        };
                        Ok(re_cost(&placements, packaging, flow)?.total().usd())
                    }),
                ));
            }
            sweep_area(areas_mm2, series)
        }
        SweepAxis::Quantity {
            area_mm2,
            quantities,
        } => {
            let area = Area::from_mm2(*area_mm2)?;
            let mut series: Vec<(
                String,
                Box<dyn FnMut(Quantity) -> Result<f64, ArchError> + '_>,
            )> = Vec::with_capacity(job.integrations.len());
            for &kind in &job.integrations {
                let chiplets = if kind.is_multi_chip() {
                    job.chiplets
                } else {
                    1
                };
                let core = candidate_core(lib, &job.node, area, kind, chiplets, job.flow)?;
                series.push((
                    kind.to_string(),
                    Box::new(move |q: Quantity| Ok(core.at_quantity(q).per_unit.usd())),
                ));
            }
            sweep_quantity(quantities, series)
        }
    }
}

/// Lowers the `[explore]` table into an [`ExploreJob`].
fn lower_explore_job(table: &Table, lib: &TechLibrary) -> Result<ExploreJob, ScenarioError> {
    let mut view = View::new(table, "[explore]");
    let name = match view.opt_str("name")? {
        Some(s) => check_file_name(s, "job name")?,
        None => "explore".to_string(),
    };
    let mut space = PortfolioSpace {
        flows: vec![AssemblyFlow::ChipLast],
        schemes: vec![ReuseScheme::None],
        ..PortfolioSpace::default()
    };
    if let Some(nodes) = view.opt_array("nodes", |v, p| {
        let s = elem_str(v, p, "a node id")?;
        check_node(lib, s)?;
        Ok(s.value.to_string())
    })? {
        space.nodes = nodes;
    } else {
        // The default axis references preset nodes; restrict it to the ones
        // the scenario's library actually has.
        space.nodes.retain(|n| lib.node(n).is_ok());
        if space.nodes.is_empty() {
            return Err(ScenarioError::schema(
                table.pos,
                "the scenario library has none of the default exploration nodes; \
                 give [explore] an explicit `nodes` list",
            ));
        }
    }
    if let Some(areas) = view.opt_array("areas_mm2", |v, p| elem_f64(v, p, "an area"))? {
        space.areas_mm2 = areas;
    }
    if let Some(q) = view.opt_array("quantities", |v, p| Ok((elem_u64(v, p, "a quantity")?, p)))? {
        space.quantities = check_increasing_quantities(q)?;
    }
    if let Some(kinds) = view.opt_array("integrations", |v, p| {
        let s = elem_str(v, p, "an integration")?;
        parse_kind(s.value, s.pos)
    })? {
        space.integrations = kinds;
    }
    if let Some(chiplets) = view.opt_array("chiplets", |v, p| elem_u32(v, p, "a chiplet count"))? {
        space.chiplet_counts = chiplets;
    }
    if let Some(flows) = view.opt_array("flows", |v, p| parse_flow(elem_str(v, p, "a flow")?))? {
        space.flows = flows;
    }
    if let Some(schemes) = view.opt_array("schemes", |v, p| {
        let s = elem_str(v, p, "a scheme")?;
        // The grammar is owned by actuary-dse's FromStr, shared with the CLI.
        s.value
            .parse::<ReuseScheme>()
            .map_err(|message| ScenarioError::schema(s.pos, message))
    })? {
        space.schemes = schemes;
    }
    if let Some(m) = view.opt_array("scms_multiplicities", |v, p| {
        elem_u32(v, p, "a multiplicity")
    })? {
        space.scms_multiplicities = m;
    }
    if let Some(situations) = view.opt_array("fsmc_situations", |v, p| {
        let s = elem_str(v, p, "an FSMC situation")?;
        // The KxN grammar is owned by actuary-dse, shared with the CLI.
        parse_fsmc_situation(s.value).map_err(|message| ScenarioError::schema(p, message))
    })? {
        space.fsmc_situations = situations;
    }
    if let Some(centers) = view.opt_array("ocme_center_nodes", |v, p| {
        let s = elem_str(v, p, "a centre node")?;
        if s.value.eq_ignore_ascii_case("none") {
            Ok(None)
        } else {
            check_node(lib, s)?;
            Ok(Some(s.value.to_string()))
        }
    })? {
        space.ocme_center_nodes = centers;
    }
    if let Some(b) = view.opt_bool("package_reuse")? {
        space.package_reuse = b.value;
    }
    let mode = match view.opt_str("mode")? {
        None => ExploreMode::Exhaustive,
        Some(s) => s
            .value
            // The grammar is owned by actuary-dse's FromStr, shared with
            // the CLI's --refine flag.
            .parse::<ExploreMode>()
            .map_err(|message| ScenarioError::schema(s.pos, message))?,
    };
    let quantity_stride = match view.opt_u64("quantity_stride")? {
        None => 0,
        Some(s) => {
            if mode != ExploreMode::Refine {
                return Err(ScenarioError::schema(
                    s.pos,
                    "`quantity_stride` requires `mode = \"refine\"` (exhaustive walks visit \
                     every quantity anyway)",
                ));
            }
            if s.value == 0 {
                return Err(ScenarioError::schema(
                    s.pos,
                    "`quantity_stride` must be at least 1 (omit it to let the engine pick)",
                ));
            }
            usize::try_from(s.value).map_err(|_| {
                ScenarioError::schema(s.pos, "`quantity_stride` exceeds the platform word size")
            })?
        }
    };
    let outputs = match view.opt_array("outputs", |v, p| {
        let s = elem_str(v, p, "an output")?;
        // The grammar is owned by this crate's FromStr, shared with docs.
        s.value
            .parse::<ExploreOutput>()
            .map(|o| (o, s.pos))
            .map_err(|message| ScenarioError::schema(s.pos, message))
    })? {
        None => vec![ExploreOutput::Grid],
        Some(list) => {
            if list.is_empty() {
                return Err(ScenarioError::schema(
                    table.pos,
                    "`outputs` needs at least one entry (grid|winners|pareto|pareto_program)",
                ));
            }
            let mut outputs = Vec::with_capacity(list.len());
            for (output, pos) in list {
                if outputs.contains(&output) {
                    return Err(ScenarioError::schema(
                        pos,
                        format!("duplicate output `{output}`"),
                    ));
                }
                outputs.push(output);
            }
            outputs
        }
    };
    view.deny_unknown()?;
    Ok(ExploreJob {
        name,
        space,
        mode,
        quantity_stride,
        outputs,
    })
}
