//! Content addressing for scenario documents: a canonical digest of the
//! *parsed* TOML tree, not the request bytes.
//!
//! `actuary serve` keys its result cache on [`ScenarioDigest`], so two
//! requests whose documents differ only in formatting — whitespace,
//! comments, key order, `1_000` vs `1000`, `"a"` vs `'a'` — address the
//! same cached run. The digest walks the parse tree ([`crate::toml`])
//! rather than any lowered struct, which gives the cache its safety
//! property for free: every key a future schema adds is part of the
//! encoding automatically, so forgetting to update a hash implementation
//! can only *under*-merge (a spurious miss), never over-merge (serving
//! the wrong cached bytes).
//!
//! The canonical encoding is injective over parse trees: every value is
//! type-tagged and length-prefixed, table entries are sorted by key
//! (duplicates are a parse error, so sorting loses nothing), array and
//! array-of-tables order is preserved (it is semantic), and source
//! positions are excluded. The hash is SHA-256 (implemented here on `std`
//! alone — the build environment has no registry access), so a shared
//! cache cannot be poisoned by crafted collisions.

use std::fmt;

use crate::toml::{Table, Value};

/// The SHA-256 digest of a scenario document's canonical encoding.
///
/// Ordered and hashable so it can key caches directly; [`fmt::Display`]
/// renders lowercase hex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScenarioDigest([u8; 32]);

impl ScenarioDigest {
    /// The raw digest bytes.
    pub fn bytes(&self) -> [u8; 32] {
        self.0
    }
}

impl fmt::Display for ScenarioDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for byte in self.0 {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

/// Digests a parsed document (typically [`crate::toml::parse`]'s root
/// table). Formatting never changes the digest; any semantic difference
/// does.
///
/// # Examples
///
/// ```
/// use actuary_scenario::canon::digest_document;
/// use actuary_scenario::toml::parse;
///
/// let a = digest_document(&parse("x = 1_000\ny = \"s\"\n").unwrap());
/// let b = digest_document(&parse("# same doc\ny = 's'\nx = 1000\n").unwrap());
/// let c = digest_document(&parse("x = 1001\ny = \"s\"\n").unwrap());
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn digest_document(doc: &Table) -> ScenarioDigest {
    digest_excluding(doc, &[])
}

/// Digests a parsed document with the named *top-level* entries excluded.
///
/// This is how the serving layer derives the cross-request core-cache tag:
/// excluding the job tables and the display-only `name`/`description`
/// leaves exactly the context that configures the tech library, so
/// scenarios that share a library (but run different jobs) share evaluated
/// cores. Exclusion is top-level only and opt-out — an unknown future key
/// stays *in* the digest, which errs toward cache misses, never wrong
/// hits.
pub fn digest_excluding(doc: &Table, exclude_top_level: &[&str]) -> ScenarioDigest {
    let mut hasher = sha256::Hasher::new();
    encode_table(&mut hasher, doc, exclude_top_level);
    ScenarioDigest(hasher.finish())
}

/// The top-level scenario keys that do not configure the tech library:
/// the job tables plus the display-only document identity. Everything
/// else (node tables, packaging, defaults — and any future library key)
/// enters [`library_digest`].
pub const NON_LIBRARY_KEYS: &[&str] = &[
    "name",
    "description",
    "portfolio",
    "yield",
    "sweep",
    "explore",
];

/// Digests the library-defining context of a document: everything except
/// [`NON_LIBRARY_KEYS`]. Used as the tag under which evaluated
/// `PortfolioCore`s may be shared across requests.
pub fn library_digest(doc: &Table) -> ScenarioDigest {
    digest_excluding(doc, NON_LIBRARY_KEYS)
}

// Type tags of the canonical encoding. Each encoded value is its tag
// byte followed by a fixed-width or length-prefixed payload, so distinct
// trees cannot collide by concatenation.
const TAG_STR: u8 = b'S';
const TAG_INT: u8 = b'I';
const TAG_FLOAT: u8 = b'F';
const TAG_BOOL: u8 = b'B';
const TAG_ARRAY: u8 = b'A';
const TAG_TABLE: u8 = b'T';
const TAG_TABLES: u8 = b'V';

fn encode_len(hasher: &mut sha256::Hasher, len: usize) {
    hasher.update(&(len as u64).to_le_bytes());
}

fn encode_table(hasher: &mut sha256::Hasher, table: &Table, exclude: &[&str]) {
    // Sort by key: `a=1` then `b=2` and the reverse are the same table
    // (duplicate keys are a parse error, so keys are unique).
    let mut entries: Vec<_> = table
        .entries()
        .iter()
        .filter(|e| !exclude.contains(&e.key.as_str()))
        .collect();
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    hasher.update(&[TAG_TABLE]);
    encode_len(hasher, entries.len());
    for entry in entries {
        encode_len(hasher, entry.key.len());
        hasher.update(entry.key.as_bytes());
        encode_value(hasher, &entry.value);
    }
}

fn encode_value(hasher: &mut sha256::Hasher, value: &Value) {
    match value {
        Value::Str(s) => {
            hasher.update(&[TAG_STR]);
            encode_len(hasher, s.len());
            hasher.update(s.as_bytes());
        }
        Value::Int(i) => {
            hasher.update(&[TAG_INT]);
            hasher.update(&i.to_le_bytes());
        }
        // Bit pattern, not text: `1e3` and `1000.0` parse to the same
        // float and must digest identically. (`-0.0` differs from `0.0`
        // by design — under-merging is the safe direction.)
        Value::Float(f) => {
            hasher.update(&[TAG_FLOAT]);
            hasher.update(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            hasher.update(&[TAG_BOOL, u8::from(*b)]);
        }
        // Element order is semantic (axes, member lists): preserved.
        Value::Array(items) => {
            hasher.update(&[TAG_ARRAY]);
            encode_len(hasher, items.len());
            for (item, _pos) in items {
                encode_value(hasher, item);
            }
        }
        Value::Table(t) => encode_table(hasher, t, &[]),
        Value::Tables(tables) => {
            hasher.update(&[TAG_TABLES]);
            encode_len(hasher, tables.len());
            for t in tables {
                encode_table(hasher, t, &[]);
            }
        }
    }
}

/// A minimal SHA-256 (FIPS 180-4) on `std` alone. The scenario crate
/// parses untrusted input end to end, so like everything on this path the
/// implementation is panic-free; the test module pins the FIPS vectors.
mod sha256 {
    /// Streaming SHA-256 state.
    pub struct Hasher {
        state: [u32; 8],
        /// Unprocessed tail of the message, always < 64 bytes after
        /// `update` returns.
        buffer: Vec<u8>,
        /// Total message length in bytes.
        length: u64,
    }

    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];

    impl Hasher {
        pub fn new() -> Self {
            Hasher {
                state: [
                    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c,
                    0x1f83d9ab, 0x5be0cd19,
                ],
                buffer: Vec::with_capacity(64),
                length: 0,
            }
        }

        pub fn update(&mut self, data: &[u8]) {
            self.length = self.length.wrapping_add(data.len() as u64);
            self.buffer.extend_from_slice(data);
            let mut offset = 0;
            while self.buffer.len() - offset >= 64 {
                let mut block = [0u8; 64];
                block.copy_from_slice(&self.buffer[offset..offset + 64]);
                self.compress(&block);
                offset += 64;
            }
            self.buffer.drain(..offset);
        }

        pub fn finish(mut self) -> [u8; 32] {
            let bit_length = self.length.wrapping_mul(8);
            self.buffer.push(0x80);
            while self.buffer.len() % 64 != 56 {
                self.buffer.push(0);
            }
            let mut tail = std::mem::take(&mut self.buffer);
            tail.extend_from_slice(&bit_length.to_be_bytes());
            let mut chunks = tail.chunks_exact(64);
            for chunk in &mut chunks {
                let mut block = [0u8; 64];
                block.copy_from_slice(chunk);
                self.compress(&block);
            }
            let mut out = [0u8; 32];
            for (slot, word) in out.chunks_exact_mut(4).zip(self.state) {
                slot.copy_from_slice(&word.to_be_bytes());
            }
            out
        }

        fn compress(&mut self, block: &[u8; 64]) {
            let mut w = [0u32; 64];
            for (i, chunk) in block.chunks_exact(4).enumerate() {
                // chunks_exact(4) yields 4-byte slices; the fallback arm
                // is unreachable but keeps this path panic-free.
                w[i] = match chunk {
                    [a, b, c, d] => u32::from_be_bytes([*a, *b, *c, *d]),
                    _ => 0,
                };
            }
            for i in 16..64 {
                let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
                let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
                w[i] = w[i - 16]
                    .wrapping_add(s0)
                    .wrapping_add(w[i - 7])
                    .wrapping_add(s1);
            }
            let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
            for i in 0..64 {
                let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
                let ch = (e & f) ^ (!e & g);
                let t1 = h
                    .wrapping_add(s1)
                    .wrapping_add(ch)
                    .wrapping_add(K[i])
                    .wrapping_add(w[i]);
                let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
                let maj = (a & b) ^ (a & c) ^ (b & c);
                let t2 = s0.wrapping_add(maj);
                h = g;
                g = f;
                f = e;
                e = d.wrapping_add(t1);
                d = c;
                c = b;
                b = a;
                a = t1.wrapping_add(t2);
            }
            let worked = [a, b, c, d, e, f, g, h];
            for (slot, word) in self.state.iter_mut().zip(worked) {
                *slot = slot.wrapping_add(word);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn hex(bytes: &[u8]) -> String {
            bytes.iter().map(|b| format!("{b:02x}")).collect()
        }

        fn digest(data: &[u8]) -> String {
            let mut h = Hasher::new();
            h.update(data);
            hex(&h.finish())
        }

        #[test]
        fn fips_180_4_vectors() {
            assert_eq!(
                digest(b""),
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
            );
            assert_eq!(
                digest(b"abc"),
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
            );
            assert_eq!(
                digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
            );
            // One million 'a's: exercises many compress rounds and the
            // length counter.
            let million = vec![b'a'; 1_000_000];
            assert_eq!(
                digest(&million),
                "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
            );
        }

        #[test]
        fn streaming_matches_one_shot() {
            let mut h = Hasher::new();
            // Splits that straddle the 64-byte block boundary.
            h.update(b"abcdbcdecdefdefgefghfghighijhijkijkl");
            h.update(b"");
            h.update(b"jklmklmnlmnomnopnopq");
            assert_eq!(
                hex(&h.finish()),
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml::parse;

    fn digest(input: &str) -> ScenarioDigest {
        digest_document(&parse(input).expect(input))
    }

    #[test]
    fn formatting_never_changes_the_digest() {
        let canonical = digest("name = \"x\"\n[t]\na = 1000\nb = 2.0\n");
        for same in [
            // Comments, blank lines, spacing.
            "# c\nname = \"x\"\n\n[t]\n  a   = 1000\nb = 2.0 # t\n",
            // Key order within a table.
            "name = \"x\"\n[t]\nb = 2.0\na = 1000\n",
            // Integer separators, float spelling, string quoting.
            "name = 'x'\n[t]\na = 1_000\nb = 2e0\n",
        ] {
            assert_eq!(digest(same), canonical, "{same:?}");
        }
    }

    #[test]
    fn semantic_differences_change_the_digest() {
        let base = digest("a = 1\nb = [1, 2]\n");
        for different in [
            "a = 2\nb = [1, 2]\n",        // value
            "a = \"1\"\nb = [1, 2]\n",    // type (int vs string)
            "a = 1.0\nb = [1, 2]\n",      // type (int vs float)
            "a = 1\nb = [2, 1]\n",        // array order is semantic
            "a = 1\nb = [1, 2, 3]\n",     // array length
            "c = 1\nb = [1, 2]\n",        // key name
            "a = 1\nb = [1, 2]\nc = 0\n", // extra key
        ] {
            assert_ne!(digest(different), base, "{different:?}");
        }
    }

    #[test]
    fn nesting_is_unambiguous() {
        // `[t] a=1` vs a top-level `t.a`-shaped string — distinct trees
        // must never collide by concatenation tricks.
        assert_ne!(digest("[t]\na = 1\n"), digest("t = \"a1\"\n"));
        assert_ne!(digest("[[t]]\na = 1\n"), digest("[t]\na = 1\n"));
        assert_ne!(digest("[t]\n"), digest("[u]\n"));
    }

    #[test]
    fn array_of_tables_order_is_semantic() {
        let ab = digest("[[j]]\nname = \"a\"\n[[j]]\nname = \"b\"\n");
        let ba = digest("[[j]]\nname = \"b\"\n[[j]]\nname = \"a\"\n");
        assert_ne!(ab, ba);
    }

    #[test]
    fn library_digest_ignores_jobs_and_identity() {
        let doc_a = parse(concat!(
            "name = \"a\"\n",
            "description = \"first\"\n",
            "[nodes.x]\n",
            "wafer_price_usd = 1.0\n",
            "[[yield]]\n",
            "name = \"y\"\n",
        ))
        .unwrap();
        let doc_b = parse(concat!(
            "name = \"b\"\n",
            "[nodes.x]\n",
            "wafer_price_usd = 1.0\n",
            "[explore]\n",
            "nodes = [\"x\"]\n",
        ))
        .unwrap();
        assert_eq!(library_digest(&doc_a), library_digest(&doc_b));
        assert_ne!(digest_document(&doc_a), digest_document(&doc_b));

        // A changed library key changes the tag.
        let doc_c = parse("name = \"a\"\n[nodes.x]\nwafer_price_usd = 2.0\n").unwrap();
        assert_ne!(library_digest(&doc_a), library_digest(&doc_c));
    }

    #[test]
    fn exclusion_is_top_level_only() {
        // A nested `name` key is NOT display identity; it must stay in
        // the library digest.
        let a = parse("[nodes.x]\nname = \"n1\"\n").unwrap();
        let b = parse("[nodes.x]\nname = \"n2\"\n").unwrap();
        assert_ne!(library_digest(&a), library_digest(&b));
    }

    #[test]
    fn digest_displays_as_hex() {
        let d = digest("a = 1\n");
        let hex = d.to_string();
        assert_eq!(hex.len(), 64);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(d.bytes().len(), 32);
    }
}
